"""Experiment 6 (section 5.3): loading and consolidation costs.

Measures Turtle loading with and without collection consolidation, the
post-hoc consolidation pass, and RDF Data Cube consolidation, recording
the graph-size reduction each achieves.

Expected shape (paper): consolidation shrinks the graph from O(elements)
to O(1) triples per array (the 13-to-1 reduction of the 2x2 example
generalizes) and pays for itself immediately in query time (Experiment 5).
"""

import pytest

from repro import SSDM
from repro.loaders.collections import consolidate_collections
from repro.loaders.datacube import consolidate_data_cube

MATRICES = 20
SIDE = 8


def _matrices_turtle():
    lines = ["@prefix ex: <http://e/> ."]
    for m in range(MATRICES):
        rows = " ".join(
            "(%s)" % " ".join(str(m + r * SIDE + c) for c in range(SIDE))
            for r in range(SIDE)
        )
        lines.append("ex:m%d ex:val (%s) ." % (m, rows))
    return "\n".join(lines)


def _datacube_turtle(years=8, regions=8):
    lines = [
        "@prefix ex: <http://e/> .",
        "@prefix qb: <http://purl.org/linked-data/cube#> .",
        "ex:ds a qb:DataSet ; qb:structure ex:dsd .",
        "ex:dsd qb:component [ qb:dimension ex:year ] , "
        "[ qb:dimension ex:region ] , [ qb:measure ex:amount ] .",
    ]
    for y in range(years):
        for r in range(regions):
            lines.append(
                'ex:o%d_%d a qb:Observation ; qb:dataSet ex:ds ; '
                'ex:year %d ; ex:region "r%02d" ; ex:amount %d.5 .'
                % (y, r, 2000 + y, r, y * regions + r)
            )
    return "\n".join(lines)


def test_load_consolidated(benchmark):
    text = _matrices_turtle()

    def load():
        ssdm = SSDM()
        ssdm.load_turtle_text(text, consolidate=True)
        return len(ssdm.graph)

    triples = benchmark(load)
    assert triples == MATRICES
    benchmark.extra_info["triples_after"] = triples


def test_load_unconsolidated(benchmark):
    text = _matrices_turtle()

    def load():
        ssdm = SSDM()
        ssdm.load_turtle_text(text, consolidate=False)
        return len(ssdm.graph)

    triples = benchmark(load)
    # each SIDE x SIDE matrix costs 2*(SIDE + SIDE*SIDE) + 1 list triples
    assert triples == MATRICES * (2 * (SIDE + SIDE * SIDE) + 1)
    benchmark.extra_info["triples_after"] = triples


def test_posthoc_consolidation(benchmark):
    text = _matrices_turtle()

    def setup():
        ssdm = SSDM()
        ssdm.load_turtle_text(text, consolidate=False)
        return (ssdm,), {}

    def consolidate(ssdm):
        return consolidate_collections(ssdm.graph)

    stats = benchmark.pedantic(
        consolidate, setup=setup, rounds=5, iterations=1
    )
    assert stats["arrays"] == MATRICES
    benchmark.extra_info.update(stats)


def test_datacube_consolidation(benchmark):
    text = _datacube_turtle()

    def setup():
        ssdm = SSDM()
        ssdm.load_turtle_text(text)
        return (ssdm,), {}

    def consolidate(ssdm):
        return consolidate_data_cube(ssdm)

    stats = benchmark.pedantic(
        consolidate, setup=setup, rounds=5, iterations=1
    )
    assert stats["datasets"] == 1
    benchmark.extra_info.update(stats)
