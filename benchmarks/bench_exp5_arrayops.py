"""Experiment 5 (ICDE'12 motivation): consolidated arrays vs. pure-RDF
collection traversal.

The same numeric data is loaded twice: consolidated into NumericArray
values, and as standard rdf:first/rdf:rest linked lists.  Element access
and full aggregation then run both ways — the array way with SciSPARQL
subscripts/aggregates, the graph way with property paths over list cells.

Expected shape (paper): array operations win by orders of magnitude, and
the gap grows linearly (element access) to super-linearly (aggregation)
with array size — the core motivation for RDF with Arrays.
"""

import pytest

from repro import SSDM

SIZES = (8, 32, 128)


def _vector_turtle(n):
    numbers = " ".join(str(i) for i in range(1, n + 1))
    return "@prefix ex: <http://e/> . ex:v ex:val (%s) ." % numbers


@pytest.fixture(scope="module", params=SIZES)
def pair(request):
    n = request.param
    consolidated = SSDM()
    consolidated.load_turtle_text(_vector_turtle(n))
    as_graph = SSDM()
    as_graph.load_turtle_text(_vector_turtle(n), consolidate=False)
    return n, consolidated, as_graph


def test_element_access_array(benchmark, pair):
    n, consolidated, _ = pair
    query = ("PREFIX ex: <http://e/> SELECT ?a[%d] "
             "WHERE { ex:v ex:val ?a }" % n)
    result = benchmark(consolidated.execute, query)
    assert result.rows == [(n,)]
    benchmark.extra_info.update({"size": n, "representation": "array"})


def test_element_access_collection(benchmark, pair):
    n, _, as_graph = pair
    # walk (n-1) rdf:rest links, then rdf:first — what plain SPARQL needs
    path = "/".join(["rdf:rest"] * (n - 1) + ["rdf:first"])
    query = ("PREFIX ex: <http://e/> SELECT ?e "
             "WHERE { ex:v ex:val ?l . ?l %s ?e }" % path)
    result = benchmark(as_graph.execute, query)
    assert result.rows == [(n,)]
    benchmark.extra_info.update({"size": n, "representation": "collection"})


def test_sum_array(benchmark, pair):
    n, consolidated, _ = pair
    query = ("PREFIX ex: <http://e/> SELECT (array_sum(?a) AS ?s) "
             "WHERE { ex:v ex:val ?a }")
    result = benchmark(consolidated.execute, query)
    assert result.rows == [(n * (n + 1) / 2,)]
    benchmark.extra_info.update({"size": n, "representation": "array"})


def test_sum_collection(benchmark, pair):
    n, _, as_graph = pair
    query = ("PREFIX ex: <http://e/> SELECT (SUM(?e) AS ?s) "
             "WHERE { ex:v ex:val ?l . ?l rdf:rest*/rdf:first ?e }")
    result = benchmark(as_graph.execute, query)
    assert result.rows == [(n * (n + 1) // 2,)]
    benchmark.extra_info.update({"size": n, "representation": "collection"})


def test_graph_size_ratio(pair):
    """Not timed: the triple-count reduction consolidation achieves."""
    n, consolidated, as_graph = pair
    assert len(consolidated.graph) == 1
    assert len(as_graph.graph) == 2 * n + 1
