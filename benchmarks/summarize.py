"""Summarize a pytest-benchmark JSON file into the EXPERIMENTS.md tables.

Usage:
    pytest benchmarks/ --benchmark-only --benchmark-json=bench_results.json
    python benchmarks/summarize.py bench_results.json
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def load(path):
    with open(path) as handle:
        raw = json.load(handle)
    rows = []
    for bench in raw["benchmarks"]:
        rows.append({
            "name": bench["name"],
            "group": bench["name"].split("[")[0],
            "mean_ms": bench["stats"]["mean"] * 1000.0,
            "extra": bench.get("extra_info", {}),
        })
    return rows


def table(rows, columns, sort_keys):
    rows = sorted(rows, key=lambda r: tuple(
        str(r["extra"].get(k, r.get(k, ""))) for k in sort_keys
    ))
    header = " | ".join(columns)
    line = " | ".join("---" for _ in columns)
    out = ["| %s |" % header, "| %s |" % line]
    for row in rows:
        cells = []
        for column in columns:
            if column == "mean_ms":
                cells.append("%.2f" % row["mean_ms"])
            else:
                value = row["extra"].get(column, row.get(column, ""))
                if isinstance(value, float):
                    value = "%.1f" % value
                cells.append(str(value))
        out.append("| %s |" % " | ".join(cells))
    return "\n".join(out)


def main(path):
    rows = load(path)
    groups = defaultdict(list)
    for row in rows:
        groups[row["group"]].append(row)

    sections = [
        ("Experiment 1 — retrieval strategies (§6.3.2)",
         "test_retrieval",
         ["backend", "pattern", "strategy", "mean_ms",
          "requests_per_run", "chunks_per_run"],
         ["backend", "pattern", "strategy"]),
        ("Experiment 2 — buffer size (§6.3.3)",
         "test_buffer_size",
         ["pattern", "strategy", "buffer_size", "mean_ms",
          "requests_per_run"],
         ["pattern", "strategy", "buffer_size"]),
        ("Experiment 3 — chunk size (§6.3.4)",
         "test_chunk_size",
         ["pattern", "chunk_bytes", "mean_ms", "requests_per_run",
          "bytes_per_run"],
         ["pattern", "chunk_bytes"]),
        ("Experiment 4 — BISTAB queries, resident (§6.4.5)",
         "test_bistab_resident",
         ["query", "storage", "mean_ms", "rows"], ["query"]),
        ("Experiment 4 — BISTAB queries, SQL back-end (§6.4.5)",
         "test_bistab_sql_backend",
         ["query", "storage", "mean_ms", "rows"], ["query"]),
        ("Experiment 4 — BISTAB queries, SQL triples + arrays (§6.2.1)",
         "test_bistab_sql_triple_store",
         ["query", "storage", "mean_ms", "rows"], ["query"]),
        ("Experiment 5 — element access: array vs collection",
         "test_element_access_array",
         ["size", "representation", "mean_ms"], ["size"]),
        ("Experiment 5 — element access, collection traversal",
         "test_element_access_collection",
         ["size", "representation", "mean_ms"], ["size"]),
        ("Experiment 5 — aggregation: array",
         "test_sum_array", ["size", "representation", "mean_ms"],
         ["size"]),
        ("Experiment 5 — aggregation: collection",
         "test_sum_collection", ["size", "representation", "mean_ms"],
         ["size"]),
        ("Experiment 6 — loading & consolidation (§5.3)",
         None, None, None),
        ("Experiment 7 — workbench transfers (ch. 7)",
         None, None, None),
    ]

    for title, group, columns, sort_keys in sections:
        if group is None:
            continue
        if group not in groups:
            continue
        print("### %s\n" % title)
        print(table(groups[group], columns, sort_keys))
        print()

    for title, names in (
        ("Experiment 6 — loading & consolidation (§5.3)",
         ["test_load_consolidated", "test_load_unconsolidated",
          "test_posthoc_consolidation", "test_datacube_consolidation"]),
        ("Experiment 7 — workbench transfers (ch. 7)",
         ["test_store_and_annotate", "test_find_by_metadata",
          "test_fetch_whole_array_over_wire",
          "test_fetch_whole_array_prefetch_over_wire",
          "test_fetch_window_over_wire",
          "test_server_side_reduction_over_wire"]),
        ("Ablations",
         ["test_join_order_optimized", "test_join_order_textual",
          "test_repeated_views_cache", "test_spd_min_run",
          "test_map_vectorizable_closure",
          "test_map_interpreted_closure"]),
    ):
        collected = []
        for name in names:
            collected.extend(groups.get(name, []))
        if not collected:
            continue
        print("### %s\n" % title)
        print("| benchmark | mean_ms | details |")
        print("| --- | --- | --- |")
        for row in sorted(collected, key=lambda r: r["name"]):
            details = ", ".join(
                "%s=%s" % (k, ("%.1f" % v) if isinstance(v, float) else v)
                for k, v in sorted(row["extra"].items())
            )
            print("| %s | %.2f | %s |" % (
                row["name"], row["mean_ms"], details
            ))
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_results.json")
