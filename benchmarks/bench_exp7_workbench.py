"""Experiment 7 (chapter 7): the workbench (Matlab-analogue) workflow.

Measures the client-side round trips of the Matlab-integration scenario
over a real TCP connection: annotating and storing a result, locating it
by metadata, fetching the full array, fetching a window, and asking the
server for a reduction.

Expected shape (paper): server-side reduction and window selection cut
transfer (and time) roughly proportionally to selectivity — the point of
pushing SciSPARQL array expressions to the server instead of shipping
whole .mat arrays to the workbench.
"""

import numpy as np
import pytest

from repro import SSDM, NumericArray, SqlArrayStore, URI
from repro.client import SSDMClient, SSDMServer, WorkbenchClient

ELEMENTS = 20_000


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    directory = tmp_path_factory.mktemp("wb")
    ssdm = SSDM()
    workbench = WorkbenchClient(ssdm, str(directory))
    data = np.linspace(0.0, 1.0, ELEMENTS)
    uri = workbench.store_result(
        "bigrun", data, {"temperature": 300.0, "method": "mc"}
    )
    server = SSDMServer(ssdm).start()
    yield server, workbench, uri, data
    server.stop()


def _client(server):
    return SSDMClient("127.0.0.1", server.server_address[1])


def test_store_and_annotate(benchmark, tmp_path):
    ssdm = SSDM()
    workbench = WorkbenchClient(ssdm, str(tmp_path))
    data = np.linspace(0.0, 1.0, ELEMENTS)
    counter = [0]

    def store():
        counter[0] += 1
        return workbench.store_result(
            "run%d" % counter[0], data, {"temperature": 300.0}
        )

    benchmark(store)


def test_find_by_metadata(benchmark, stack):
    _, workbench, uri, _ = stack
    hits = benchmark(workbench.find, {"temperature": 300.0})
    assert uri in hits


def test_fetch_whole_array_over_wire(benchmark, stack):
    server, _, uri, data = stack
    client = _client(server)
    query = ("PREFIX wb: <http://udbl.uu.se/workbench#> "
             "SELECT ?a WHERE { <%s> wb:data ?a }" % uri.value)
    result = benchmark(client.query, query)
    rounds = max(benchmark.stats.stats.rounds, 1)
    bytes_per_call = client.bytes_received / (rounds + 1)
    client.close()
    assert len(result.rows) == 1
    benchmark.extra_info.update({
        "mode": "fetch-whole", "bytes_per_call": round(bytes_per_call),
        "elements": ELEMENTS,
    })


@pytest.fixture(scope="module")
def prefetch_stack():
    """A server whose arrays live in SQL behind the PREFETCH strategy."""
    store = SqlArrayStore(chunk_bytes=2048, default_strategy="prefetch")
    ssdm = SSDM(array_store=store, externalize_threshold=64)
    data = np.linspace(0.0, 1.0, ELEMENTS)
    uri = URI("http://udbl.uu.se/run/prefetched")
    ssdm.add(uri, URI("http://udbl.uu.se/workbench#data"),
             NumericArray(data))
    server = SSDMServer(ssdm).start()
    yield server, uri, data
    server.stop()


def test_fetch_whole_array_prefetch_over_wire(benchmark, prefetch_stack):
    """Whole-array fetch where the server resolves through the pipeline:
    the SQL chunk reads overlap, and the shared buffer pool keeps the
    working set resident between requests."""
    server, uri, data = prefetch_stack
    client = _client(server)
    query = ("PREFIX wb: <http://udbl.uu.se/workbench#> "
             "SELECT ?a WHERE { <%s> wb:data ?a }" % uri.value)
    result = benchmark(client.query, query)
    rounds = max(benchmark.stats.stats.rounds, 1)
    bytes_per_call = client.bytes_received / (rounds + 1)
    client.close()
    assert len(result.rows) == 1
    assert result.rows[0][0].element_count == ELEMENTS
    benchmark.extra_info.update({
        "mode": "fetch-whole-prefetch",
        "bytes_per_call": round(bytes_per_call),
        "elements": ELEMENTS,
    })


def test_fetch_window_over_wire(benchmark, stack):
    server, _, uri, data = stack
    client = _client(server)
    query = ("PREFIX wb: <http://udbl.uu.se/workbench#> "
             "SELECT (?a[1:100] AS ?w) WHERE { <%s> wb:data ?a }"
             % uri.value)
    result = benchmark(client.query, query)
    rounds = max(benchmark.stats.stats.rounds, 1)
    bytes_per_call = client.bytes_received / (rounds + 1)
    client.close()
    assert len(result.rows) == 1
    benchmark.extra_info.update({
        "mode": "fetch-window", "bytes_per_call": round(bytes_per_call),
        "elements": 100,
    })


def test_server_side_reduction_over_wire(benchmark, stack):
    server, _, uri, data = stack
    client = _client(server)
    query = ("PREFIX wb: <http://udbl.uu.se/workbench#> "
             "SELECT (array_avg(?a) AS ?m) WHERE { <%s> wb:data ?a }"
             % uri.value)
    result = benchmark(client.query, query)
    rounds = max(benchmark.stats.stats.rounds, 1)
    bytes_per_call = client.bytes_received / (rounds + 1)
    client.close()
    assert result.rows[0][0] == pytest.approx(data.mean())
    benchmark.extra_info.update({
        "mode": "reduce", "bytes_per_call": round(bytes_per_call),
        "elements": 1,
    })
