"""Experiment 1 (section 6.3.2): comparing the retrieval strategies.

For every back-end (file, SQL; memory as the zero-transport baseline),
every strategy (SINGLE, BUFFER, SPD), and every access pattern of the
mini-benchmark, measure the time to resolve a fixed batch of array views
and record the back-end round trips and chunks transferred.

Expected shape (paper): SPD <= BUFFER << SINGLE on regular patterns
(row / column / stride / block / whole); the gap closes on 'element' and
'random', where no arithmetic chunk sequences exist.
"""

import pytest

from repro.storage import APRResolver, Strategy
from repro.bench.querygen import run_pattern

from benchmarks.conftest import QUERIES_PER_RUN, fresh_generator

PATTERNS = ("element", "row", "column", "stride", "block", "random",
            "whole")


@pytest.mark.parametrize("populated_store", ["memory", "file", "sql"],
                         indirect=True)
@pytest.mark.parametrize("strategy", list(Strategy),
                         ids=lambda s: s.value)
@pytest.mark.parametrize("pattern", PATTERNS)
def test_retrieval(benchmark, populated_store, strategy, pattern):
    store, proxies = populated_store
    resolver = APRResolver(store, strategy=strategy, buffer_size=64)

    def run():
        generator = fresh_generator(proxies)
        return run_pattern(resolver, generator, pattern, QUERIES_PER_RUN)

    store.stats.reset()
    elements = benchmark(run)
    rounds_executed = max(benchmark.stats.stats.rounds, 1)
    stats = store.stats.snapshot()
    benchmark.extra_info.update({
        "pattern": pattern,
        "strategy": strategy.value,
        "backend": type(store).__name__,
        "elements_per_run": elements,
        "requests_per_run": stats["requests"] / rounds_executed,
        "chunks_per_run": stats["chunks_fetched"] / rounds_executed,
    })
