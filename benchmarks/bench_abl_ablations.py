"""Ablation benchmarks for SSDM's design choices.

- **Cost-based triple-pattern ordering** (§5.4.5): the same query
  evaluated with the optimizer's greedy selectivity ordering vs. the
  textual pattern order, on a graph where the textual order is bad.
- **Chunk cache** (§6.2): repeated overlapping views with and without
  the LRU chunk cache.
- **SPD minimum run length**: how the min_run threshold trades range
  requests against singleton batches on a semi-regular pattern.
- **Vectorised closures**: array_map with a closure body the engine can
  compile to numpy vs. one it must interpret per element.
"""

import numpy as np
import pytest

from repro import SSDM, MemoryArrayStore, NumericArray, SqlArrayStore
from repro.algebra.optimizer import optimize
from repro.algebra.rewriter import rewrite
from repro.algebra.translator import translate
from repro.storage import APRResolver, ChunkCache, Strategy


# -- optimizer ablation -------------------------------------------------------

def _skewed_ssdm():
    """1000 'common' triples, 5 'rare' ones; the query names common
    first, so textual order scans 1000 candidates."""
    ssdm = SSDM()
    lines = ["@prefix ex: <http://e/> ."]
    for i in range(1000):
        lines.append("ex:s%d ex:common %d ." % (i, i))
    for i in range(5):
        lines.append("ex:s%d ex:rare %d ." % (i, i))
    ssdm.load_turtle_text("\n".join(lines))
    return ssdm


QUERY = """PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:common ?v . ?s ex:rare ?w }"""


@pytest.fixture(scope="module")
def skewed():
    return _skewed_ssdm()


def test_join_order_optimized(benchmark, skewed):
    def run():
        return len(skewed.execute(QUERY).rows)
    rows = benchmark(run)
    assert rows == 5
    benchmark.extra_info["ordering"] = "cost-based"


def test_join_order_textual(benchmark, skewed):
    parsed = skewed.parse(QUERY)
    plan, columns = translate(parsed)
    plan = rewrite(plan)          # no optimize(): textual pattern order

    def run():
        return sum(1 for _ in skewed.engine.run(plan))
    rows = benchmark(run)
    assert rows == 5
    benchmark.extra_info["ordering"] = "textual"


# -- chunk cache ablation ---------------------------------------------------------

@pytest.fixture(scope="module")
def cached_store():
    store = SqlArrayStore(chunk_bytes=2048)
    data = np.arange(256 * 256, dtype=np.float64).reshape(256, 256)
    proxy = store.put(NumericArray(data))
    return store, proxy


@pytest.mark.parametrize("with_cache", [True, False],
                         ids=["cache", "no-cache"])
def test_repeated_views_cache(benchmark, cached_store, with_cache):
    store, proxy = cached_store
    cache = ChunkCache(max_bytes=64 * 1024 * 1024) if with_cache else None
    resolver = APRResolver(store, strategy=Strategy.SPD, cache=cache)
    views = [proxy.subscript([row]) for row in range(0, 64)]

    def run():
        total = 0
        for _ in range(3):                 # overlapping repetition
            for view in views:
                total += resolver.resolve([view])[0].element_count
        return total

    store.stats.reset()
    benchmark(run)
    rounds_executed = max(benchmark.stats.stats.rounds, 1)
    benchmark.extra_info.update({
        "cache": with_cache,
        "requests_per_run": store.stats.requests / rounds_executed,
    })


# -- SPD min_run ablation -------------------------------------------------------------

@pytest.mark.parametrize("min_run", [2, 3, 5, 9])
def test_spd_min_run(benchmark, cached_store, min_run):
    store, proxy = cached_store
    resolver = APRResolver(store, strategy=Strategy.SPD, min_run=min_run)
    # semi-regular: short arithmetic bursts separated by jumps
    view = proxy.subscript([None, 0])

    def run():
        return resolver.resolve([view])[0].element_count

    store.stats.reset()
    benchmark(run)
    rounds_executed = max(benchmark.stats.stats.rounds, 1)
    benchmark.extra_info.update({
        "min_run": min_run,
        "requests_per_run": store.stats.requests / rounds_executed,
    })


# -- closure vectorisation ablation ------------------------------------------------------

@pytest.fixture(scope="module")
def map_ssdm():
    ssdm = SSDM()
    values = " ".join(str(i) for i in range(5000))
    ssdm.load_turtle_text(
        "@prefix ex: <http://e/> . ex:v ex:val (%s) ." % values
    )
    return ssdm


def test_map_vectorizable_closure(benchmark, map_ssdm):
    # pure arithmetic body: compiled to a numpy expression
    query = """PREFIX ex: <http://e/>
        SELECT (array_sum(array_map(FN(?x) ?x * 2 + 1, ?a)) AS ?s)
        WHERE { ex:v ex:val ?a }"""
    result = benchmark(map_ssdm.execute, query)
    assert result.rows[0][0] == sum(i * 2 + 1 for i in range(5000))
    benchmark.extra_info["closure"] = "vectorized"


def test_map_interpreted_closure(benchmark, map_ssdm):
    # the IF() body defeats vectorisation: per-element interpretation
    query = """PREFIX ex: <http://e/>
        SELECT (array_sum(array_map(FN(?x) IF(?x > -1, ?x * 2 + 1, 0),
                                    ?a)) AS ?s)
        WHERE { ex:v ex:val ?a }"""
    result = benchmark(map_ssdm.execute, query)
    assert result.rows[0][0] == sum(i * 2 + 1 for i in range(5000))
    benchmark.extra_info["closure"] = "interpreted"
