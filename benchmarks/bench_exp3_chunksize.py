"""Experiment 3 (section 6.3.4): varying the chunk size.

Stores the same arrays under chunk sizes from 256 B to 64 KiB in the SQL
back-end and resolves sparse (element), linear (row), and bulk (whole)
access patterns with the SPD strategy.

Expected shape (paper): total cost is U-shaped in chunk size for sparse
access — tiny chunks pay per-chunk overhead (many rows / round trips),
huge chunks ship mostly unused data; bulk transfers keep improving with
chunk size until per-request overhead is amortized.
"""

import pytest

from repro.storage import APRResolver, Strategy
from repro.bench import make_benchmark_store
from repro.bench.querygen import run_pattern

from benchmarks.conftest import (
    ARRAYS, QUERIES_PER_RUN, SHAPE, fresh_generator, make_store,
)

CHUNK_SIZES = (256, 1024, 4096, 16384, 65536)


@pytest.fixture
def sized_store(request, tmp_path):
    chunk_bytes = request.param
    store = make_store("sql", tmp_path, chunk_bytes=chunk_bytes)
    proxies = make_benchmark_store(
        store, arrays=ARRAYS, shape=SHAPE, seed=7
    )
    return store, proxies, chunk_bytes


@pytest.mark.parametrize("sized_store", CHUNK_SIZES, indirect=True,
                         ids=lambda c: "%dB" % c)
@pytest.mark.parametrize("pattern", ("element", "row", "whole"))
def test_chunk_size(benchmark, sized_store, pattern):
    store, proxies, chunk_bytes = sized_store
    resolver = APRResolver(store, strategy=Strategy.SPD, buffer_size=64)

    def run():
        generator = fresh_generator(proxies)
        return run_pattern(resolver, generator, pattern, QUERIES_PER_RUN)

    store.stats.reset()
    benchmark(run)
    rounds_executed = max(benchmark.stats.stats.rounds, 1)
    stats = store.stats.snapshot()
    benchmark.extra_info.update({
        "pattern": pattern,
        "chunk_bytes": chunk_bytes,
        "requests_per_run": stats["requests"] / rounds_executed,
        "bytes_per_run": stats["bytes_fetched"] / rounds_executed,
    })
