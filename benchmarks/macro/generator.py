"""Seeded, deterministic SP²Bench-style dataset generator.

Produces a scale-free publication graph — journals, persons, and
articles with titles, years, creators, citations, optional abstracts
and see-also links — blended with SciSPARQL numeric arrays (every Nth
article carries a chunk-aligned measurement matrix), following the
query-shape mix SP²Bench defines: long citation chains, star-shaped
article descriptions, OPTIONAL-heavy attributes, and DISTINCT /
ORDER-BY-heavy value distributions.

Two scale-free mechanisms drive the skew (both plain Yule processes so
a single ``random.Random(seed)`` makes the whole dataset reproducible):

- **author popularity** — each authorship either re-samples the pool of
  previous authorships (preferential attachment) or introduces a new
  author;
- **citation in-degree** — citations point at *earlier* articles (the
  graph is acyclic, so chain queries terminate), preferring already-
  cited ones, which yields both hub papers and long chains.

Determinism contract: ``lines(scale, seed)`` emits the same byte
sequence for the same ``(scale, seed, GENERATOR_VERSION)`` — the
trajectory gate and the determinism tests pin this.  The same lines
feed both the N-Triples-style dump and the ``INSERT DATA`` batches, so
what the WAL journals is exactly what the dump shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Bump whenever the emitted dataset changes for a given (scale, seed),
#: so the BENCH_macro.json fingerprint gate compares like with like.
GENERATOR_VERSION = 1

BENCH = "http://sp2b.example.org/bench/"
RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
DC_TITLE = "http://purl.org/dc/elements/1.1/title"
DC_CREATOR = "http://purl.org/dc/elements/1.1/creator"
DCT_ISSUED = "http://purl.org/dc/terms/issued"
DCT_REFERENCES = "http://purl.org/dc/terms/references"
FOAF_NAME = "http://xmlns.com/foaf/0.1/name"
RDFS_SEEALSO = "http://www.w3.org/2000/01/rdf-schema#seeAlso"

CLASS_ARTICLE = BENCH + "Article"
CLASS_JOURNAL = BENCH + "Journal"
CLASS_PERSON = BENCH + "Person"
P_JOURNAL = BENCH + "journal"
P_ABSTRACT = BENCH + "abstract"
P_DATA = BENCH + "data"

YEAR_LO, YEAR_HI = 1990, 2015


@dataclass(frozen=True)
class MacroScale:
    """One named dataset size (triple counts are approximate)."""

    name: str
    articles: int
    persons: int
    journals: int
    #: every Nth article carries a bench:data array
    array_every: int = 10
    #: chunk-aligned measurement matrix dimensions (64 elements = the
    #: default externalization threshold, so arrays stay resident
    #: in-memory but exercise the full array literal/consolidation path)
    array_shape: tuple = (8, 8)


#: tiny ~1.5k triples (unit tests / harness smoke), smoke ~50k triples
#: (the CI gate, loads in a few seconds), full ~1M triples (the real
#: scoreboard behind ``make bench-macro``).
SCALES = {
    "tiny": MacroScale("tiny", articles=120, persons=60, journals=5),
    "smoke": MacroScale("smoke", articles=4600, persons=1400,
                        journals=25),
    "full": MacroScale("full", articles=95000, persons=28000,
                       journals=200),
}

DEFAULT_SEED = 42
DEFAULT_BATCH = 800


def journal_uri(index):
    return "%sjournal/J%d" % (BENCH, index)


def article_uri(index):
    return "%sarticle/A%d" % (BENCH, index)


def person_uri(index):
    return "%sperson/P%d" % (BENCH, index)


def _escape(text):
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _uri(value):
    return "<%s>" % value


def _line(subject, predicate, obj):
    return "%s %s %s ." % (_uri(subject), _uri(predicate), obj)


def _array_literal(rng, shape, low=0, high=99):
    rows = []
    for _ in range(shape[0]):
        rows.append("(%s)" % " ".join(
            str(rng.randint(low, high)) for _ in range(shape[1])
        ))
    return "(%s)" % " ".join(rows)


def lines(scale, seed=DEFAULT_SEED):
    """Yield the dataset as triple statements, one per line.

    Objects are rendered in SciSPARQL data syntax: ``<uri>``, bare
    integers, quoted strings, or nested-collection array literals
    (which the loader consolidates into :class:`NumericArray`).  The
    byte sequence is a pure function of ``(scale, seed)``.
    """
    if isinstance(scale, str):
        scale = SCALES[scale]
    rng = random.Random(seed)

    for j in range(1, scale.journals + 1):
        journal = journal_uri(j)
        yield _line(journal, RDF_TYPE, _uri(CLASS_JOURNAL))
        yield _line(journal, DC_TITLE,
                    '"Journal %d of applied measurement"' % j)
        yield _line(journal, DCT_ISSUED, str(rng.randint(YEAR_LO, YEAR_HI)))

    for p in range(1, scale.persons + 1):
        person = person_uri(p)
        yield _line(person, RDF_TYPE, _uri(CLASS_PERSON))
        yield _line(person, FOAF_NAME, '"Author %d"' % p)

    # Zipf-ish journal popularity: weight 1/k for the k-th journal
    journal_ids = list(range(1, scale.journals + 1))
    journal_weights = [1.0 / k for k in journal_ids]

    author_pool = []        # one entry per past authorship
    citation_pool = []      # one entry per past citation + per article

    for a in range(1, scale.articles + 1):
        article = article_uri(a)
        year = rng.randint(YEAR_LO, YEAR_HI)
        yield _line(article, RDF_TYPE, _uri(CLASS_ARTICLE))
        yield _line(article, DC_TITLE,
                    '"Article %d on phenomenon %d"' % (a, rng.randint(1, 500)))
        yield _line(article, DCT_ISSUED, str(year))
        journal = rng.choices(journal_ids, weights=journal_weights)[0]
        yield _line(article, P_JOURNAL, _uri(journal_uri(journal)))

        authors = set()
        for _ in range(rng.choice((1, 1, 2, 2, 3, 4))):
            if author_pool and rng.random() < 0.6:
                author = rng.choice(author_pool)
            else:
                author = rng.randint(1, scale.persons)
            if author in authors:
                continue
            authors.add(author)
            author_pool.append(author)
            yield _line(article, DC_CREATOR, _uri(person_uri(author)))

        cited = set()
        for _ in range(min(rng.choice((0, 1, 2, 3, 3, 4, 5)), a - 1)):
            if citation_pool and rng.random() < 0.5:
                target = rng.choice(citation_pool)
            else:
                target = rng.randint(1, a - 1)
            if target in cited or target >= a:
                continue
            cited.add(target)
            citation_pool.append(target)
            yield _line(article, DCT_REFERENCES, _uri(article_uri(target)))
        citation_pool.append(a)

        if rng.random() < 0.3:
            yield _line(article, RDFS_SEEALSO,
                        _uri("http://example.org/see/A%d" % a))
        if rng.random() < 0.6:
            yield _line(article, P_ABSTRACT,
                        '"%s"' % _escape(
                            "Abstract of article %d: findings on series %d."
                            % (a, rng.randint(1, 999))
                        ))
        if a % scale.array_every == 0:
            yield _line(article, P_DATA,
                        _array_literal(rng, scale.array_shape))


def ntriples_text(scale, seed=DEFAULT_SEED):
    """The whole dataset as one deterministic text blob."""
    return "\n".join(lines(scale, seed)) + "\n"


def insert_batches(scale, seed=DEFAULT_SEED, batch_size=DEFAULT_BATCH):
    """Yield ``INSERT DATA`` statements of ``batch_size`` triples each.

    Streaming these through :meth:`SSDM.execute` drives the real update
    path — parser, dictionary interning, WAL append — rather than
    poking triples straight into the graph.
    """
    batch = []
    for statement in lines(scale, seed):
        batch.append(statement)
        if len(batch) >= batch_size:
            yield "INSERT DATA {\n%s\n}" % "\n".join(batch)
            batch = []
    if batch:
        yield "INSERT DATA {\n%s\n}" % "\n".join(batch)


def load(ssdm, scale, seed=DEFAULT_SEED, batch_size=DEFAULT_BATCH):
    """Stream the dataset into ``ssdm``; returns the triple count."""
    total = 0
    for statement in insert_batches(scale, seed, batch_size):
        total += ssdm.execute(statement)
    return total
