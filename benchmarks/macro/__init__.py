"""SP²Bench-scale macro benchmark: synthetic workload + query mix.

The micro benchmarks (``bench_exp*``) measure single subsystems; this
package is the *scoreboard* — a seeded, deterministic scale-free
publication graph blended with SciSPARQL array data
(:mod:`benchmarks.macro.generator`), a ~12-query mix covering the
SP²Bench shapes plus array slicing (:mod:`benchmarks.macro.queries`),
and a runner (:mod:`benchmarks.macro.run`) that loads the dataset
through the full WAL/dictionary update path, checks per-query
correctness fingerprints against the ``HashIndexGraph`` oracle, and
appends a trajectory point to ``BENCH_macro.json``.

Entry points::

    make bench-macro-smoke   # ~50k triples, seconds; the CI gate
    make bench-macro         # ~1M triples, the full scoreboard
    python scripts/load_harness.py ...   # open-loop latency under load
"""
