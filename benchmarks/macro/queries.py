"""The macro query mix: 12 named queries + correctness fingerprints.

The shapes follow SP²Bench — long citation chains, star-shaped article
lookups, OPTIONAL-heavy attribute queries, DISTINCT- and ORDER-BY-heavy
modifiers, aggregates — blended with the source paper's SciSPARQL array
workloads (subscripted array access in the SELECT list).

Each query gets a *fingerprint*: the row count plus an order-insensitive
64-bit hash of the canonicalized rows.  Fingerprints are compared
against the ``HashIndexGraph`` oracle (the legacy per-row interpreter
path) at small scale and against the last committed trajectory point in
CI, so a performance PR that silently changes results fails the gate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

PREFIXES = (
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
    "PREFIX dc: <http://purl.org/dc/elements/1.1/> "
    "PREFIX dcterms: <http://purl.org/dc/terms/> "
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
    "PREFIX bench: <http://sp2b.example.org/bench/> "
)


@dataclass(frozen=True)
class MacroQuery:
    name: str
    #: which SP²Bench/SciSPARQL shape this exercises (documentation +
    #: reporting; the harness samples queries by name)
    shape: str
    body: str

    @property
    def text(self):
        return PREFIXES + self.body


QUERIES = [
    MacroQuery(
        "q01_journal_star", "star",
        "SELECT ?j ?title ?yr WHERE { "
        "?j rdf:type bench:Journal . ?j dc:title ?title . "
        "?j dcterms:issued ?yr }",
    ),
    MacroQuery(
        "q02_article_star_optional", "star+optional",
        "SELECT ?a ?title ?journal ?abs WHERE { "
        "?a rdf:type bench:Article . ?a dcterms:issued 2001 . "
        "?a dc:title ?title . ?a bench:journal ?journal . "
        "OPTIONAL { ?a bench:abstract ?abs } }",
    ),
    MacroQuery(
        "q03_chain2", "chain",
        "SELECT ?a ?c WHERE { "
        "?a dcterms:issued 2005 . ?a dcterms:references ?b . "
        "?b dcterms:references ?c }",
    ),
    MacroQuery(
        "q04_chain4_distinct", "chain+distinct",
        "SELECT DISTINCT ?a ?e WHERE { "
        "?a dcterms:issued 2010 . ?a dcterms:references ?b . "
        "?b dcterms:references ?c . ?c dcterms:references ?d . "
        "?d dcterms:references ?e }",
    ),
    MacroQuery(
        "q05_optional_heavy", "optional",
        "SELECT ?a ?see ?abs WHERE { "
        "?a rdf:type bench:Article . ?a dcterms:issued 2003 . "
        "OPTIONAL { ?a rdfs:seeAlso ?see } "
        "OPTIONAL { ?a bench:abstract ?abs } }",
    ),
    MacroQuery(
        "q06_journal_authors", "join",
        "SELECT ?a ?name WHERE { "
        "?a bench:journal <http://sp2b.example.org/bench/journal/J1> . "
        "?a dc:creator ?p . ?p foaf:name ?name }",
    ),
    MacroQuery(
        "q07_distinct_creators", "distinct",
        "SELECT DISTINCT ?p WHERE { ?a dc:creator ?p }",
    ),
    MacroQuery(
        "q08_top_recent", "orderby+limit",
        "SELECT ?a ?yr WHERE { "
        "?a rdf:type bench:Article . ?a dcterms:issued ?yr } "
        "ORDER BY DESC(?yr) ?a LIMIT 20",
    ),
    MacroQuery(
        "q09_names_ordered", "orderby+limit",
        "SELECT ?name WHERE { ?p foaf:name ?name } "
        "ORDER BY ?name LIMIT 50",
    ),
    MacroQuery(
        "q10_count_per_year", "aggregate",
        "SELECT ?yr (COUNT(?a) AS ?n) WHERE { "
        "?a rdf:type bench:Article . ?a dcterms:issued ?yr } "
        "GROUP BY ?yr",
    ),
    MacroQuery(
        "q11_array_slice", "array",
        "SELECT ?s ?d[2,1] WHERE { "
        "?s bench:data ?d . ?s dcterms:issued 2007 }",
    ),
    MacroQuery(
        "q12_union_titles", "union",
        "SELECT ?t WHERE { "
        "{ ?j rdf:type bench:Journal . ?j dc:title ?t } UNION "
        "{ ?a dcterms:issued 2000 . ?a dc:title ?t } }",
    ),
]

QUERY_BY_NAME = {query.name: query for query in QUERIES}


# -- fingerprints ---------------------------------------------------------------


def _canonical(value):
    """A stable textual form of one result cell, across both stores."""
    from repro.arrays.nma import NumericArray
    from repro.arrays.proxy import ArrayProxy
    from repro.rdf.term import BlankNode, Literal, URI

    if value is None:
        return "~unbound~"
    if isinstance(value, bool):
        return "b:true" if value else "b:false"
    if isinstance(value, int):
        return "i:%d" % value
    if isinstance(value, float):
        return "f:%r" % value
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, URI):
        return "<%s>" % value.value
    if isinstance(value, BlankNode):
        # labels differ between stores; only presence is fingerprinted
        return "_:bnode"
    if isinstance(value, Literal):
        return "l:%s@%s^^%s" % (
            value.lexical_form(), value.lang or "",
            getattr(value.datatype, "value", ""),
        )
    if isinstance(value, ArrayProxy):
        value = value.resolve()
    if isinstance(value, NumericArray):
        return "a:%r" % (value.to_nested_lists(),)
    return "r:%r" % (value,)


def fingerprint(result):
    """(row_count, order-insensitive 64-bit hash) of a QueryResult.

    Rows are canonicalized and hashed individually; the per-row hashes
    are *summed* mod 2^64, so the fingerprint ignores row order (the
    two stores iterate in different orders) but is sensitive to row
    multiplicity and every cell value.
    """
    accumulator = 0
    for row in result.rows:
        digest = hashlib.sha256(
            "\x1f".join(_canonical(value) for value in row).encode("utf-8")
        ).digest()
        accumulator = (accumulator + int.from_bytes(digest[:8], "big")) \
            % (1 << 64)
    return {"rows": len(result.rows), "hash": "%016x" % accumulator}
