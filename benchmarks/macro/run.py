"""Macro benchmark runner: load, query mix, fingerprints, trajectory.

Loads the generated dataset into an SSDM through the full update path
(parser → dictionary interning → WAL append → permutation indexes),
runs the 12-query mix, and appends one *trajectory point* to
``BENCH_macro.json``:

    {"schema": 1, "points": [{scale, seed, generator_version, triples,
      load_seconds, triples_per_second, queries: {name: {rows, hash,
      best_ms, mean_ms}}, harness: null-or-report}, ...]}

Correctness gates (both exit 1 on failure):

- ``--check-oracle`` re-loads the dataset into the legacy
  ``HashIndexGraph`` store (per-row interpreter, no ID space) and
  requires identical per-query fingerprints — the two independent
  engine paths must agree;
- the *trajectory gate* (always on when ``--output`` holds an earlier
  point with the same scale/seed/generator version) requires the new
  fingerprints to match the committed ones — a perf PR that changes
  results fails CI even when it is faster.

Latency numbers are recorded for trend inspection but never gated on
absolute value (CI machines vary); ``benchmarks/check_regression.py``
remains the micro-benchmark latency gate.

Usage (see ``make bench-macro`` / ``make bench-macro-smoke``):

    python benchmarks/macro/run.py --scale smoke --check-oracle \
        --output BENCH_macro.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
))
for entry in (REPO_ROOT, os.path.join(REPO_ROOT, "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.macro import generator as gen          # noqa: E402
from benchmarks.macro.queries import QUERIES, fingerprint  # noqa: E402

TRAJECTORY_SCHEMA = 1


def load_dataset(ssdm, scale, seed, batch_size=gen.DEFAULT_BATCH):
    """Stream-load the dataset; returns (triples, seconds)."""
    started = time.perf_counter()
    triples = gen.load(ssdm, scale, seed, batch_size)
    return triples, time.perf_counter() - started


def run_query_mix(ssdm, repeat=3):
    """{query name: {rows, hash, best_ms, mean_ms}} over the mix."""
    results = {}
    for query in QUERIES:
        timings = []
        outcome = None
        for _ in range(max(1, repeat)):
            started = time.perf_counter()
            outcome = ssdm.execute(query.text)
            timings.append(time.perf_counter() - started)
        print_ = fingerprint(outcome)
        results[query.name] = {
            "rows": print_["rows"],
            "hash": print_["hash"],
            "shape": query.shape,
            "best_ms": round(min(timings) * 1000, 3),
            "mean_ms": round(sum(timings) / len(timings) * 1000, 3),
        }
    return results


def check_oracle(scale, seed, expected, out=None):
    """Fingerprint the mix on the HashIndexGraph store; returns
    the list of mismatching query names."""
    from repro.rdf.hashgraph import HashIndexGraph
    from repro.ssdm import SSDM

    out = out if out is not None else sys.stdout
    oracle = SSDM.with_triple_store(HashIndexGraph())
    gen.load(oracle, scale, seed)
    mismatches = []
    for query in QUERIES:
        got = fingerprint(oracle.execute(query.text))
        want = expected[query.name]
        if got["rows"] != want["rows"] or got["hash"] != want["hash"]:
            mismatches.append(query.name)
            out.write(
                "  ORACLE MISMATCH %s: indexed %d rows/%s vs hash-graph "
                "%d rows/%s\n" % (
                    query.name, want["rows"], want["hash"],
                    got["rows"], got["hash"],
                )
            )
    return mismatches


def load_trajectory(path):
    if not os.path.exists(path):
        return {"schema": TRAJECTORY_SCHEMA, "points": []}
    with open(path) as handle:
        trajectory = json.load(handle)
    trajectory.setdefault("schema", TRAJECTORY_SCHEMA)
    trajectory.setdefault("points", [])
    return trajectory


def save_trajectory(path, trajectory):
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_trajectory(trajectory, point, out=None):
    """Compare ``point`` against the latest comparable committed point;
    returns mismatching query names (empty = pass or nothing to
    compare)."""
    out = out if out is not None else sys.stdout
    comparable = [
        previous for previous in trajectory["points"]
        if previous.get("scale") == point["scale"]
        and previous.get("seed") == point["seed"]
        and previous.get("generator_version") == point["generator_version"]
    ]
    if not comparable:
        return []
    baseline = comparable[-1]
    mismatches = []
    for name, entry in point["queries"].items():
        committed = baseline["queries"].get(name)
        if committed is None:
            continue             # new query: not gated yet
        if (entry["rows"], entry["hash"]) != (
            committed["rows"], committed["hash"]
        ):
            mismatches.append(name)
            out.write(
                "  TRAJECTORY MISMATCH %s: committed %d rows/%s, "
                "got %d rows/%s\n" % (
                    name, committed["rows"], committed["hash"],
                    entry["rows"], entry["hash"],
                )
            )
    return mismatches


def run_macro(scale_name, seed=gen.DEFAULT_SEED, repeat=3, wal_dir=None,
              batch_size=gen.DEFAULT_BATCH, out=None):
    """Execute one macro run; returns the trajectory point."""
    from repro.ssdm import SSDM

    out = out if out is not None else sys.stdout
    scale = gen.SCALES[scale_name]
    cleanup = None
    if wal_dir is None:
        holder = tempfile.TemporaryDirectory(prefix="macro-wal-")
        wal_dir, cleanup = holder.name, holder
    ssdm = SSDM.open(wal_dir)
    try:
        triples, seconds = load_dataset(ssdm, scale, seed, batch_size)
        out.write(
            "loaded %d triples (%s scale) in %.2fs (%d triples/s, "
            "wal seq %s)\n" % (
                triples, scale.name, seconds,
                triples / seconds if seconds else 0,
                ssdm.journal.last_seq if ssdm.journal else "-",
            )
        )
        queries = run_query_mix(ssdm, repeat=repeat)
        for name in sorted(queries):
            entry = queries[name]
            out.write(
                "  %-28s %6d rows  best %8.2fms  mean %8.2fms  [%s]\n"
                % (name, entry["rows"], entry["best_ms"],
                   entry["mean_ms"], entry["hash"])
            )
        return {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "scale": scale.name,
            "seed": seed,
            "generator_version": gen.GENERATOR_VERSION,
            "triples": triples,
            "load_seconds": round(seconds, 3),
            "triples_per_second": int(triples / seconds) if seconds else 0,
            "queries": queries,
            "harness": None,
        }
    finally:
        ssdm.close()
        if cleanup is not None:
            cleanup.cleanup()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="SP2Bench-scale macro benchmark runner"
    )
    parser.add_argument("--scale", choices=sorted(gen.SCALES),
                        default="smoke")
    parser.add_argument("--seed", type=int, default=gen.DEFAULT_SEED)
    parser.add_argument("--repeat", type=int, default=3,
                        help="executions per query (best/mean reported)")
    parser.add_argument("--batch-size", type=int, default=gen.DEFAULT_BATCH,
                        help="triples per INSERT DATA statement")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="trajectory JSON to append to "
                             "(e.g. BENCH_macro.json)")
    parser.add_argument("--check-oracle", action="store_true",
                        help="verify fingerprints against the "
                             "HashIndexGraph oracle (small scales)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record the point without failing on "
                             "fingerprint drift vs the trajectory")
    parser.add_argument("--dump-ntriples", metavar="PATH",
                        help="also write the generated dataset text")
    args = parser.parse_args(argv)

    if args.dump_ntriples:
        with open(args.dump_ntriples, "w") as handle:
            handle.write(gen.ntriples_text(args.scale, args.seed))

    point = run_macro(args.scale, seed=args.seed, repeat=args.repeat,
                      batch_size=args.batch_size)

    failed = False
    if args.check_oracle:
        mismatches = check_oracle(args.scale, args.seed, point["queries"])
        if mismatches:
            failed = True
        else:
            sys.stdout.write(
                "oracle check: all %d fingerprints match the "
                "HashIndexGraph store\n" % len(point["queries"])
            )

    if args.output:
        trajectory = load_trajectory(args.output)
        drift = check_trajectory(trajectory, point)
        if drift and not args.no_gate:
            failed = True
        elif not drift:
            sys.stdout.write(
                "trajectory gate: fingerprints match the committed "
                "point\n" if trajectory["points"] else
                "trajectory gate: first point recorded\n"
            )
        trajectory["points"].append(point)
        save_trajectory(args.output, trajectory)
        sys.stdout.write("trajectory point appended to %s\n" % args.output)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
