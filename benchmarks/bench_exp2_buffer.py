"""Experiment 2 (section 6.3.3): varying the buffer size.

Sweeps the number of chunk ids batched per request on the SQL back-end,
on a regular (column) and an irregular (random) access pattern, under
both the plain BUFFER strategy and PREFETCH (whose leftover singles are
batched by the same parameter while its pipeline overlaps the requests).

Expected shape (paper): time and round trips drop steeply as the buffer
grows from 1, then plateau once most of a query's chunks fit in one
batch; growing the buffer further buys nothing.  PREFETCH flattens the
curve: once the working set is pooled, buffer size stops mattering.
"""

import pytest

from repro.storage import APRResolver, Strategy
from repro.bench.querygen import run_pattern

from benchmarks.conftest import QUERIES_PER_RUN, fresh_generator

BUFFER_SIZES = (1, 4, 16, 64, 256, 1024)


@pytest.mark.parametrize("populated_store", ["sql"], indirect=True)
@pytest.mark.parametrize("strategy",
                         (Strategy.BUFFER, Strategy.PREFETCH),
                         ids=lambda s: s.value)
@pytest.mark.parametrize("buffer_size", BUFFER_SIZES)
@pytest.mark.parametrize("pattern", ("column", "random"))
def test_buffer_size(benchmark, populated_store, strategy, buffer_size,
                     pattern):
    store, proxies = populated_store
    resolver = APRResolver(
        store, strategy=strategy, buffer_size=buffer_size
    )

    def run():
        generator = fresh_generator(proxies)
        return run_pattern(resolver, generator, pattern, QUERIES_PER_RUN)

    store.stats.reset()
    benchmark(run)
    rounds_executed = max(benchmark.stats.stats.rounds, 1)
    stats = store.stats.snapshot()
    benchmark.extra_info.update({
        "pattern": pattern,
        "strategy": strategy.value,
        "buffer_size": buffer_size,
        "requests_per_run": stats["requests"] / rounds_executed,
    })
