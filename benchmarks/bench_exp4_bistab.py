"""Experiment 4 (sections 6.4.4-6.4.5): BISTAB application queries.

Runs the four published application queries over the regenerated BISTAB
dataset, with trajectories resident in memory and externalized to the SQL
back-end.

Expected shape (paper): the metadata-only query (Q1) is unaffected by the
storage choice; array-touching queries (Q2-Q4) pay a back-end penalty
that stays moderate because filtering/aggregation happens server-side on
lazily-selected windows rather than on whole shipped arrays.
"""

import pytest

from repro import SSDM, SqlArrayStore
from repro.apps import bistab
from repro.storage import SqlTripleGraph

TASKS = 12
REALIZATIONS = 3
SAMPLES = 512


def _build(mode):
    if mode == "sql-arrays":
        store = SqlArrayStore(chunk_bytes=2048)
        ssdm = SSDM(array_store=store, externalize_threshold=64)
    elif mode == "sql-triples":
        ssdm = SSDM.with_triple_store(
            SqlTripleGraph(chunk_bytes=2048, externalize_threshold=64)
        )
    else:
        ssdm = SSDM()
    bistab.generate_dataset(
        ssdm, tasks=TASKS, realizations=REALIZATIONS, samples=SAMPLES
    )
    return ssdm


@pytest.fixture(scope="module")
def resident_ssdm():
    return _build("memory")


@pytest.fixture(scope="module")
def external_sql_ssdm():
    return _build("sql-arrays")


@pytest.fixture(scope="module")
def sql_triples_ssdm():
    return _build("sql-triples")


@pytest.mark.parametrize("query_id", [q[0] for q in bistab.QUERIES])
def test_bistab_resident(benchmark, resident_ssdm, query_id):
    text = dict((q[0], q[2]) for q in bistab.QUERIES)[query_id]
    result = benchmark(resident_ssdm.execute, text)
    benchmark.extra_info.update({
        "query": query_id, "storage": "memory", "rows": len(result.rows),
    })
    assert len(result.rows) > 0


@pytest.mark.parametrize("query_id", [q[0] for q in bistab.QUERIES])
def test_bistab_sql_backend(benchmark, external_sql_ssdm, query_id):
    text = dict((q[0], q[2]) for q in bistab.QUERIES)[query_id]
    result = benchmark(external_sql_ssdm.execute, text)
    benchmark.extra_info.update({
        "query": query_id, "storage": "sql", "rows": len(result.rows),
    })
    assert len(result.rows) > 0


@pytest.mark.parametrize("query_id", [q[0] for q in bistab.QUERIES])
def test_bistab_sql_triple_store(benchmark, sql_triples_ssdm, query_id):
    """The full back-end scenario: triples AND chunks in the RDBMS."""
    text = dict((q[0], q[2]) for q in bistab.QUERIES)[query_id]
    result = benchmark(sql_triples_ssdm.execute, text)
    benchmark.extra_info.update({
        "query": query_id, "storage": "sql-triples",
        "rows": len(result.rows),
    })
    assert len(result.rows) > 0


def test_bistab_load_time(benchmark):
    """Data loading cost (section 6.4.3), resident storage."""
    def load():
        ssdm = SSDM()
        bistab.generate_dataset(
            ssdm, tasks=4, realizations=2, samples=SAMPLES
        )
        return len(ssdm.graph)
    triples = benchmark(load)
    benchmark.extra_info["triples"] = triples
