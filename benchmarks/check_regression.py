"""Benchmark regression gate: fresh results vs the committed baseline.

Compares a freshly produced pytest-benchmark JSON file against the
repository's committed ``bench_results.json`` and fails when any watched
benchmark's mean regressed by more than the threshold (default 25%).

Watched are the experiments most sensitive to the retrieval pipeline —
Experiment 1 (retrieval strategies) and Experiment 7 (workbench
transfers over the wire) — plus Experiment 8 (ID-space BGP evaluation,
whose speedup-target variants additionally assert the >= 5x floor over
the hash-index baseline at run time).  Benchmarks present on only one
side — new strategies, renamed tests — are reported but never fail the
gate.

Also gated here: query-tracing overhead.  The observability layer
promises near-zero cost, so the gate replays an Experiment-1 retrieval
workload with tracing on and off and fails when the traced run is more
than 5% slower (``--overhead-threshold``).

Usage (see ``make bench`` / ``make bench-check``):

    pytest benchmarks -q --benchmark-only \
        --benchmark-json=bench_results_new.json
    python benchmarks/check_regression.py bench_results_new.json

or as a pytest target:

    BENCH_RESULTS=bench_results_new.json \
        pytest benchmarks/check_regression.py -m bench_check
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import pytest

#: Parametrized groups gated on every variant present in both files.
WATCHED_GROUPS = ("test_retrieval", "test_bgp", "test_bgp_speedup_target")
#: Individual benchmarks gated by exact name.
WATCHED_NAMES = (
    "test_store_and_annotate",
    "test_find_by_metadata",
    "test_fetch_whole_array_over_wire",
    "test_fetch_window_over_wire",
    "test_server_side_reduction_over_wire",
)
DEFAULT_THRESHOLD = 0.25
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench_results.json",
)


def load_means(path):
    """{benchmark name: mean seconds} from a pytest-benchmark JSON."""
    with open(path) as handle:
        raw = json.load(handle)
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in raw["benchmarks"]
    }


def watched(name):
    return name in WATCHED_NAMES or name.split("[")[0] in WATCHED_GROUPS


def compare(fresh_means, baseline_means, threshold=DEFAULT_THRESHOLD):
    """Returns (regressions, compared, only_fresh) over watched names.

    ``regressions`` lists (name, baseline_mean, fresh_mean, ratio) for
    every benchmark whose fresh mean exceeds baseline * (1+threshold).
    """
    regressions = []
    compared = 0
    only_fresh = []
    for name, fresh_mean in sorted(fresh_means.items()):
        if not watched(name):
            continue
        baseline_mean = baseline_means.get(name)
        if baseline_mean is None:
            only_fresh.append(name)
            continue
        compared += 1
        if fresh_mean > baseline_mean * (1.0 + threshold):
            regressions.append((
                name, baseline_mean, fresh_mean,
                fresh_mean / baseline_mean,
            ))
    return regressions, compared, only_fresh


def run_gate(fresh_path, baseline_path, threshold, out=sys.stdout):
    fresh_means = load_means(fresh_path)
    baseline_means = load_means(baseline_path)
    regressions, compared, only_fresh = compare(
        fresh_means, baseline_means, threshold
    )
    out.write(
        "compared %d watched benchmarks (threshold %.0f%%)\n"
        % (compared, threshold * 100)
    )
    for name in only_fresh:
        out.write("  new (no baseline, not gated): %s\n" % name)
    for name, base, fresh, ratio in regressions:
        out.write(
            "  REGRESSION %s: %.2fms -> %.2fms (%.2fx)\n"
            % (name, base * 1000, fresh * 1000, ratio)
        )
    if not regressions:
        out.write("no regressions\n")
    return regressions


#: Maximum fractional slowdown tracing may add to the exp1 workload.
OVERHEAD_THRESHOLD = 0.05
#: Interleaved off/on repetitions; best-of-N damps scheduler noise.
OVERHEAD_REPEATS = 7


def measure_tracing_overhead(repeats=OVERHEAD_REPEATS):
    """(off_seconds, on_seconds) for one exp1-style retrieval run.

    Replays the Experiment 1 access-pattern sweep against a memory
    store, alternating untraced and traced (inside ``trace_query``)
    runs, and returns the best time of each mode — best-of-N because
    the *minimum* is what the instrumentation cannot talk its way
    under, while means soak up unrelated scheduler noise.
    """
    import time

    repo_root = os.path.dirname(DEFAULT_BASELINE)
    sys.path.insert(0, os.path.join(repo_root, "src"))
    # running as `python benchmarks/check_regression.py` puts only the
    # benchmarks/ directory on sys.path; the conftest imports below
    # resolve through the package, so the repo root must be there too
    if repo_root not in sys.path:
        sys.path.insert(0, repo_root)
    from repro import MemoryArrayStore, observability as obs
    from repro.bench import QueryGenerator, make_benchmark_store
    from repro.bench.querygen import run_pattern
    from repro.storage import APRResolver, Strategy

    from benchmarks.conftest import (
        ARRAYS, CHUNK_BYTES, QUERIES_PER_RUN, SHAPE,
    )

    from benchmarks.bench_exp1_retrieval import PATTERNS

    store = MemoryArrayStore(chunk_bytes=CHUNK_BYTES)
    proxies = make_benchmark_store(store, arrays=ARRAYS, shape=SHAPE,
                                   seed=7)
    resolver = APRResolver(store, strategy=Strategy.SPD, buffer_size=64)

    def run():
        generator = QueryGenerator(proxies, seed=11, stride=8, block=16,
                                   random_points=32)
        for pattern in PATTERNS:
            run_pattern(resolver, generator, pattern, QUERIES_PER_RUN)

    def once(traced):
        # both modes run through trace_query — "tracing off" in
        # production still passes the disabled branch, so only the
        # span-tree cost is under test
        started = time.perf_counter()
        with obs.trace_query("bench: exp1 retrieval sweep"):
            run()
        return time.perf_counter() - started

    previous = obs.set_tracing(True)
    best = {False: None, True: None}
    try:
        # warm imports, store, chunk caches, and both code paths
        obs.set_tracing(False)
        once(False)
        obs.set_tracing(True)
        once(True)
        for _ in range(repeats):
            for traced in (False, True):
                obs.set_tracing(traced)
                elapsed = once(traced)
                if best[traced] is None or elapsed < best[traced]:
                    best[traced] = elapsed
    finally:
        obs.set_tracing(previous)
    return best[False], best[True]


def run_overhead_gate(threshold=OVERHEAD_THRESHOLD, out=sys.stdout):
    """Returns the fractional overhead when it breaches ``threshold``,
    else None."""
    off, on = measure_tracing_overhead()
    overhead = (on / off) - 1.0
    out.write(
        "tracing overhead on exp1: off=%.3fms on=%.3fms (%+.1f%%, "
        "threshold %.0f%%)\n"
        % (off * 1000, on * 1000, overhead * 100, threshold * 100)
    )
    if overhead > threshold:
        out.write("  OVERHEAD REGRESSION: tracing costs more than "
                  "%.0f%%\n" % (threshold * 100))
        return overhead
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly produced benchmark JSON")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--overhead-threshold", type=float,
                        default=OVERHEAD_THRESHOLD,
                        help="allowed tracing overhead (default 0.05)")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="only compare against the baseline JSON")
    args = parser.parse_args(argv)
    regressions = run_gate(args.fresh, args.baseline, args.threshold)
    overhead = None
    if not args.skip_overhead:
        overhead = run_overhead_gate(args.overhead_threshold)
    return 1 if (regressions or overhead is not None) else 0


@pytest.mark.bench_check
def test_tracing_overhead_under_threshold():
    """Pytest entry point for the tracing-overhead gate."""
    assert run_overhead_gate() is None


@pytest.mark.bench_check
def test_no_regression():
    """Pytest entry point for the gate (opt-in via -m bench_check)."""
    fresh = os.environ.get("BENCH_RESULTS", "bench_results_new.json")
    if not os.path.exists(fresh):
        pytest.skip("no fresh benchmark results at %r" % fresh)
    regressions = run_gate(fresh, DEFAULT_BASELINE, DEFAULT_THRESHOLD)
    assert not regressions, "benchmark regressions: %r" % (
        [r[0] for r in regressions],
    )


if __name__ == "__main__":
    sys.exit(main())
