"""Experiment 8: BGP evaluation over the ID-space permutation indexes.

Measures basic-graph-pattern queries at the 100k-triple scale on two
engines over identical data:

- ``indexed`` — the default :class:`repro.rdf.Graph`: dictionary-encoded
  terms, three sorted permutation indexes (SPO/POS/OSP), and the
  engine's vectorized merge-join fast path (``repro.engine.idjoin``);
- ``hash`` — the legacy :class:`repro.rdf.HashIndexGraph` behind the
  per-row interpreter (it exposes no ID space, so the engine takes the
  nested-loop path automatically).

Three workload shapes exercise the join patterns that matter:

- **chain** — ``?a p1 ?b . ?b p2 ?c . ?c p3 ?d``: two merge joins over
  long sorted runs, the textbook case for permutation indexes;
- **star** — three properties around a shared subject, with the gated
  query projecting a *subset* of the variables so the projection
  pushdown (``BGP.keep``) skips decoding dead columns (the full-width
  variant is reported alongside but dominated by term decode);
- **mixed** — a chain prefix joined into a star property.

Per-operator ``rows_in`` / ``rows_out`` from the query-trace spans are
attached to ``extra_info`` so the saved benchmark JSON documents the
dataflow each measurement covered.
"""

import time

import pytest

from repro import SSDM, Literal, URI
from repro.rdf import HashIndexGraph

#: Triples per workload shape (ISSUE: >= 100k).
TARGET_TRIPLES = 102_000

EX = "PREFIX ex: <http://ex.org/> "

#: Operator span labels (mirrors repro.engine.eval._OP_LABELS values).
_OPERATOR_LABELS = {
    "bgp", "path", "values", "join", "leftjoin", "minus", "union",
    "filter", "extend", "graph", "aggregate", "project", "distinct",
    "orderby", "slice", "subquery",
}


def _uri(n):
    return URI("http://ex.org/n%d" % n)


def _populate_chain(graph, triples):
    """a -p1-> b -p2-> c -p3-> d chains; ``triples // 3`` links each."""
    p1, p2, p3 = (URI("http://ex.org/p%d" % i) for i in (1, 2, 3))
    chains = triples // 3
    for i in range(chains):
        base = i * 4
        graph.add(_uri(base), p1, _uri(base + 1))
        graph.add(_uri(base + 1), p2, _uri(base + 2))
        graph.add(_uri(base + 2), p3, _uri(base + 3))


def _populate_star(graph, triples):
    """Subjects with q1/q2/q3 literal satellites."""
    q1, q2, q3 = (URI("http://ex.org/q%d" % i) for i in (1, 2, 3))
    subjects = triples // 3
    for i in range(subjects):
        s = _uri(i)
        graph.add(s, q1, Literal(i))
        graph.add(s, q2, Literal(2 * i))
        graph.add(s, q3, Literal(3 * i))


def _populate_mixed(graph, triples):
    """Chain prefix whose middle nodes carry a star property."""
    p1, p2 = URI("http://ex.org/p1"), URI("http://ex.org/p2")
    q1 = URI("http://ex.org/q1")
    groups = triples // 3
    for i in range(groups):
        base = i * 3
        graph.add(_uri(base), p1, _uri(base + 1))
        graph.add(_uri(base + 1), p2, _uri(base + 2))
        graph.add(_uri(base + 1), q1, Literal(i))


_POPULATE = {
    "chain": _populate_chain,
    "star": _populate_star,
    "mixed": _populate_mixed,
}

QUERIES = {
    "chain": EX + ("SELECT ?a ?d WHERE "
                   "{ ?a ex:p1 ?b . ?b ex:p2 ?c . ?c ex:p3 ?d }"),
    # subset projection: the pushdown decodes only ?s and ?v1
    "star": EX + ("SELECT ?s ?v1 WHERE "
                  "{ ?s ex:q1 ?v1 . ?s ex:q2 ?v2 . ?s ex:q3 ?v3 }"),
    "star_full": EX + ("SELECT ?s ?v1 ?v2 ?v3 WHERE "
                       "{ ?s ex:q1 ?v1 . ?s ex:q2 ?v2 . ?s ex:q3 ?v3 }"),
    "mixed": EX + ("SELECT ?a ?v WHERE "
                   "{ ?a ex:p1 ?b . ?b ex:p2 ?c . ?b ex:q1 ?v }"),
}

#: Workload shape -> dataset the query runs against.
_DATASET_OF = {
    "chain": "chain", "star": "star", "star_full": "star",
    "mixed": "mixed",
}

ENGINES = ("indexed", "hash")


def _build(engine, shape):
    if engine == "hash":
        ssdm = SSDM.with_triple_store(HashIndexGraph())
    else:
        ssdm = SSDM()
    _POPULATE[shape](ssdm.graph, TARGET_TRIPLES)
    return ssdm


@pytest.fixture(scope="module")
def corpora():
    """{(engine, dataset): SSDM} with ~100k triples per dataset."""
    built = {}
    for engine in ENGINES:
        for shape in _POPULATE:
            built[(engine, shape)] = _build(engine, shape)
    return built


def operator_rows(trace):
    """[{op, rows_in, rows_out}] from a query trace, pipeline order.

    ``rows_in`` of an operator is the summed ``rows_out`` of its
    operator children — the engine counts what every operator *emits*,
    and the dataflow edges recover what each one consumed.
    """
    table = []

    def walk(span):
        children_out = 0
        for child in span.children:
            children_out += walk(child)
        if span.name not in _OPERATOR_LABELS:
            return children_out
        rows_out = int(span.counters.get("rows_out", 0))
        table.append({
            "op": span.name,
            "rows_in": children_out,
            "rows_out": rows_out,
        })
        return rows_out

    walk(trace.root)
    return table


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("shape", sorted(QUERIES))
def test_bgp(benchmark, corpora, shape, engine):
    ssdm = corpora[(engine, _DATASET_OF[shape])]
    query = QUERIES[shape]
    result = benchmark(ssdm.execute, query)
    assert len(result.rows) > 10_000
    extra = {
        "shape": shape,
        "engine": engine,
        "triples": TARGET_TRIPLES,
        "rows": len(result.rows),
    }
    trace = ssdm.last_trace
    if trace is not None:
        extra["operators"] = operator_rows(trace)
    benchmark.extra_info.update(extra)


def _best_of(fn, repeats=5):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


@pytest.mark.parametrize("shape", ["chain", "star"])
def test_bgp_speedup_target(benchmark, corpora, shape):
    """The acceptance floor: ID-space evaluation at least 5x faster
    than the hash-index baseline on chain and star at 100k+ triples.

    Both sides run in-process back to back (best-of-N each), so the
    ratio is immune to machine speed; the gated shapes are the
    SP2Bench-style ones the tentpole optimizes for.
    """
    indexed = corpora[("indexed", _DATASET_OF[shape])]
    baseline = corpora[("hash", _DATASET_OF[shape])]
    query = QUERIES[shape]
    assert len(indexed.execute(query).rows) == \
        len(baseline.execute(query).rows)
    benchmark(indexed.execute, query)
    fast = benchmark.stats.stats.min
    slow = _best_of(lambda: baseline.execute(query))
    speedup = slow / fast
    benchmark.extra_info.update({
        "shape": shape,
        "engine": "indexed-vs-hash",
        "triples": TARGET_TRIPLES,
        "hash_best_ms": round(slow * 1000.0, 2),
        "indexed_best_ms": round(fast * 1000.0, 2),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 5.0, (
        "%s: ID-space path only %.1fx faster than hash baseline"
        % (shape, speedup)
    )


def test_footprint_report(corpora):
    """Record the dictionary/index memory footprint of each corpus.

    Not a timing benchmark: prints the per-shape index bytes and term
    counts (also surfaced by ``SSDM.stats()['graph']`` and the CI
    footprint step) so the saved run documents the memory side of the
    speed/space trade.
    """
    for shape in _POPULATE:
        ssdm = corpora[("indexed", shape)]
        stats = ssdm.stats()["graph"]
        assert stats["triples"] == len(ssdm.graph)
        assert stats["dictionary"]["terms"] > 0
        assert stats["index_bytes"] > 0
        print(
            "footprint %s: %d triples, %d terms, %.1f MiB indexes, "
            "%.1f bytes/triple"
            % (shape, stats["triples"], stats["dictionary"]["terms"],
               stats["index_bytes"] / (1024.0 * 1024.0),
               stats["index_bytes"] / max(stats["triples"], 1))
        )
