"""Shared benchmark fixtures and reporting helpers.

The benchmarks regenerate every experiment of the paper's evaluation
(dissertation sections 6.3-6.4, chapter 7); see DESIGN.md for the
experiment index and EXPERIMENTS.md for measured-vs-paper shapes.

Back-end traffic counters (round trips, chunks) are attached to each
measurement via ``benchmark.extra_info`` so the tables the paper reports
can be reconstructed from the saved benchmark JSON.
"""

import numpy as np
import pytest

from repro import (
    SSDM, FileArrayStore, MemoryArrayStore, NumericArray, SqlArrayStore,
)
from repro.bench import QueryGenerator, make_benchmark_store

#: Benchmark dataset geometry (kept moderate so the suite stays fast).
ARRAYS = 4
SHAPE = (128, 128)
CHUNK_BYTES = 2048
QUERIES_PER_RUN = 8


def make_store(kind, tmp_path, chunk_bytes=CHUNK_BYTES):
    if kind == "memory":
        return MemoryArrayStore(chunk_bytes=chunk_bytes)
    if kind == "file":
        return FileArrayStore(str(tmp_path / ("files_%d" % chunk_bytes)),
                              chunk_bytes=chunk_bytes)
    if kind == "sql":
        return SqlArrayStore(chunk_bytes=chunk_bytes)
    raise ValueError(kind)


@pytest.fixture
def populated_store(request, tmp_path):
    """A store of the given kind filled with the benchmark arrays."""
    kind = getattr(request, "param", "sql")
    store = make_store(kind, tmp_path)
    proxies = make_benchmark_store(
        store, arrays=ARRAYS, shape=SHAPE, seed=7
    )
    return store, proxies


def fresh_generator(proxies, seed=11):
    return QueryGenerator(proxies, seed=seed, stride=8, block=16,
                          random_points=32)
