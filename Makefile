PY := PYTHONPATH=src python

.PHONY: test bench bench-check

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m pytest benchmarks -q --benchmark-only \
		--benchmark-json=bench_results_new.json

# Gate: fail if exp1/exp7 means regressed >25% vs the committed baseline
bench-check:
	$(PY) benchmarks/check_regression.py bench_results_new.json
