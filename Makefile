PY := PYTHONPATH=src python

.PHONY: test test-robustness test-durability test-replication \
	test-observability test-governor test-mvcc bench bench-check \
	bench-macro bench-macro-smoke load-harness load-harness-overload \
	load-harness-mixed footprint

test: test-robustness test-durability test-replication \
	test-observability test-governor
	$(PY) -m pytest -x -q

# Request-lifecycle suites: deadlines, cancellation, fair locking,
# retry/reconnect, and the fault-injection harness (also run by `test`)
test-robustness:
	$(PY) -m pytest tests/test_lifecycle.py tests/test_server_extras.py -q

# Durability suite: WAL record round-trips, the simulated-crash matrix,
# checksummed reads, and verify/repair quarantine (also run by `test`)
test-durability:
	$(PY) -m pytest tests/test_durability.py -q

# Replication suite: WAL streaming, replica semantics, epoch-fenced
# failover, and the deterministic failover matrix (also run by `test`)
test-replication:
	$(PY) -m pytest tests/test_replication.py -q

# Observability suite: query traces, the metrics registry, the
# slow-query log, and the server metrics/slowlog ops (also run by `test`)
test-observability:
	$(PY) -m pytest tests/test_observability.py -q

# Resource-governor suite: per-query row/byte budgets, the two-lane
# admission queue, pressure-driven degradation, pin hygiene on killed
# queries, and the replica circuit breaker (also run by `test`)
test-governor:
	$(PY) -m pytest tests/test_governor.py -q

# MVCC suite: snapshot isolation vs the hash-graph oracle, the
# publish-then-swap consolidation race, bounded retention and
# SNAPSHOT_GONE, at_seq exact reads, writer/reader non-blocking, and
# the deterministic chaos matrix (also run by `test`)
test-mvcc:
	$(PY) -m pytest tests/test_mvcc.py -q

bench:
	$(PY) -m pytest benchmarks -q --benchmark-only \
		--benchmark-json=bench_results_new.json

# Gate: fail if exp1/exp7/exp8 means regressed >25% vs the baseline
bench-check:
	$(PY) benchmarks/check_regression.py bench_results_new.json

# Macro scoreboard: generate the ~1M-triple SP2Bench-style dataset,
# load it through the WAL/dictionary update path, run the 12-query mix,
# and append a trajectory point (fingerprints gated vs the committed one)
bench-macro:
	$(PY) benchmarks/macro/run.py --scale full --output BENCH_macro.json

# The CI gate: ~50k triples in seconds, fingerprints checked against
# both the HashIndexGraph oracle and the committed BENCH_macro.json
bench-macro-smoke:
	$(PY) benchmarks/macro/run.py --scale smoke --check-oracle \
		--output BENCH_macro.json

# Open-loop load: spawn an in-process server over the smoke dataset and
# drive the query mix at a fixed arrival rate with SLO gates
load-harness:
	$(PY) scripts/load_harness.py --scale smoke --rate 150 \
		--duration 10 --processes 2 --threads 2 \
		--slo-p99-ms 500 --slo-error-rate 0.01

# Overload smoke: arrivals well past a single admission slot with a
# mixed interactive/batch lane split; gates on the *admitted* p99 and
# a bounded error rate — graceful degradation, not collapse
load-harness-overload:
	$(PY) scripts/load_harness.py --scale tiny --rate 400 \
		--duration 5 --threads 8 --batch-fraction 0.5 \
		--max-concurrent 1 --max-queue 2 \
		--slo-admitted-p99-ms 2000 --slo-error-rate 0.05

# MVCC reader-tail gate: a read-only baseline run, then the same load
# with a 10% INSERT DATA update stream; fails when the mixed run's
# reader admitted p99 exceeds 2x the read-only baseline (the ratio
# gate never trips below the 50ms floor, so a microsecond-fast
# baseline cannot make it flaky)
load-harness-mixed:
	$(PY) scripts/load_harness.py --scale tiny --rate 150 \
		--duration 5 --threads 4 --slo-error-rate 0.01 \
		--output harness_read_baseline.json
	$(PY) scripts/load_harness.py --scale tiny --rate 150 \
		--duration 5 --threads 4 --update-fraction 0.1 \
		--baseline harness_read_baseline.json \
		--slo-read-p99-ratio 2.0 --slo-error-rate 0.01

# Report dictionary + permutation-index memory cost at the exp8 scale
# (fails above the per-triple byte budget; see the script's --max-bytes)
footprint:
	$(PY) scripts/report_footprint.py
