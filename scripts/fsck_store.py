#!/usr/bin/env python
"""Integrity check (and optional repair) of an ASEI array store.

Scans every chunk of every array against its recorded checksum and
prints a report; with ``--repair``, damaged chunks are quarantined so
later reads fail fast as *missing* instead of re-fetching bad bytes.

    python scripts/fsck_store.py --file  /path/to/store/dir
    python scripts/fsck_store.py --sql   /path/to/arrays.db --repair
    python scripts/fsck_store.py --wal   /path/to/journal/dir --json

``--wal`` checks a dataset journal instead: it scans the log, reports
how many records are intact, and (with ``--repair``) truncates any
torn tail exactly as ``SSDM.open`` would.

``--json`` prints exactly one machine-readable document on stdout::

    {"ok": false, "kind": "wal", "repaired": false, "report": {...}}

Exit status: 0 = clean, 1 = corruption or a torn WAL tail was found
(even if ``--repair`` fixed it — CI gates on "damage happened"),
2 = usage error.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.storage.durability import WriteAheadLog, DatasetJournal  # noqa: E402
from repro.storage.filestore import FileArrayStore  # noqa: E402
from repro.storage.sqlstore import SqlArrayStore  # noqa: E402


def _emit(kind, report, damaged, repaired, as_json, advice=None):
    if as_json:
        print(json.dumps({
            "ok": not damaged, "kind": kind,
            "repaired": bool(repaired), "report": report,
        }, sort_keys=True))
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
        if damaged and advice:
            print(advice, file=sys.stderr)
    return 1 if damaged else 0


def check_store(store, repair, as_json):
    report = store.repair() if repair else store.verify()
    damaged = bool(report["corrupt"] or report["missing"])
    return _emit(
        "store", report, damaged, repair, as_json,
        advice="damage found; rerun with --repair to quarantine",
    )


def check_wal(directory, repair, as_json):
    path = os.path.join(directory, DatasetJournal.LOG_NAME)
    if not os.path.exists(path):
        print("no %s in %s" % (DatasetJournal.LOG_NAME, directory),
              file=sys.stderr)
        return 2
    wal = WriteAheadLog(path)
    intact = 0
    good_offset = 0
    last_seq = 0
    for seq, _, end in wal.scan():
        intact += 1
        good_offset = end
        last_seq = seq
    torn = os.path.getsize(path) - good_offset
    if torn and repair:
        wal.recover()
    report = {
        "path": path, "records_intact": intact, "last_seq": last_seq,
        "bytes_intact": good_offset, "bytes_torn": torn,
    }
    return _emit(
        "wal", report, bool(torn), repair, as_json,
        advice="torn tail found; rerun with --repair to truncate "
               "(recovery on SSDM.open does the same)",
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--file", metavar="DIR",
                        help="a FileArrayStore directory")
    target.add_argument("--sql", metavar="DB",
                        help="a SqlArrayStore database file")
    target.add_argument("--wal", metavar="DIR",
                        help="a dataset-journal directory")
    parser.add_argument("--repair", action="store_true",
                        help="quarantine damaged chunks / truncate a "
                             "torn WAL tail")
    parser.add_argument("--json", action="store_true",
                        help="one machine-readable JSON document on "
                             "stdout (for CI / ops gating)")
    args = parser.parse_args(argv)

    if args.wal:
        return check_wal(args.wal, args.repair, args.json)
    if args.file:
        if not os.path.isdir(args.file):
            print("not a directory: %s" % args.file, file=sys.stderr)
            return 2
        return check_store(FileArrayStore(args.file), args.repair,
                           args.json)
    if not os.path.exists(args.sql):
        print("no such database: %s" % args.sql, file=sys.stderr)
        return 2
    return check_store(SqlArrayStore(args.sql), args.repair, args.json)


if __name__ == "__main__":
    sys.exit(main())
