#!/usr/bin/env python
"""Launch an SSDM node: a primary, or a read replica tailing one.

Primary (journaled, so it can ship its WAL to replicas):

    python scripts/run_replica.py --data /var/ssdm/p1 --port 8711

Replica tailing that primary:

    python scripts/run_replica.py --data /var/ssdm/r1 --port 8712 \
        --upstream 127.0.0.1:8711

The replica serves reads (writes answer ``READONLY``), applies the
primary's WAL stream continuously, and can be promoted at failover:

    python - <<'PY'
    from repro.client import SSDMClient
    print(SSDMClient("127.0.0.1", 8712).promote())
    PY

Optional array store: ``--store-file DIR`` (FileArrayStore) or
``--store-sql DB`` (SqlArrayStore); the journal references externalized
arrays by store id, so replicas of a store-backed primary should share
or mirror the same store.
"""

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.client.server import SSDMServer  # noqa: E402
from repro.replication import REPLICA, start_replica  # noqa: E402
from repro.ssdm import SSDM  # noqa: E402


def _array_store(args):
    if args.store_file:
        from repro.storage.filestore import FileArrayStore
        return FileArrayStore(args.store_file)
    if args.store_sql:
        from repro.storage.sqlstore import SqlArrayStore
        return SqlArrayStore(args.store_sql)
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--data", required=True, metavar="DIR",
                        help="journal directory (created on demand)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--upstream", metavar="HOST:PORT",
                        help="run as a replica tailing this primary")
    parser.add_argument("--store-file", metavar="DIR",
                        help="FileArrayStore directory for array chunks")
    parser.add_argument("--store-sql", metavar="DB",
                        help="SqlArrayStore database for array chunks")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="server-wide default request timeout")
    args = parser.parse_args(argv)

    store = _array_store(args)
    if args.upstream:
        host, _, port = args.upstream.rpartition(":")
        if not host or not port.isdigit():
            parser.error("--upstream must be HOST:PORT")
        ssdm, server, tail = start_replica(
            args.data, host, int(port), host=args.host, port=args.port,
            array_store=store, default_timeout_ms=args.timeout_ms,
        )
        role = REPLICA
    else:
        ssdm = SSDM.open(args.data, array_store=store)
        server = SSDMServer(
            ssdm, host=args.host, port=args.port,
            default_timeout_ms=args.timeout_ms,
        ).start()
        tail = None
        role = "primary"

    address = server.server_address
    print("ssdm %s listening on %s:%d (data: %s)"
          % (role, address[0], address[1], args.data), flush=True)
    if tail is not None:
        print("tailing %s:%s" % tail.upstream, flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        if tail is not None:
            tail.stop()
        server.stop()
        ssdm.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
