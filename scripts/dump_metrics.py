#!/usr/bin/env python
"""Format an SSDM metrics snapshot as text or JSON.

Reads a metrics registry snapshot — from a running server (``--server
host:port``), from a JSON file (``--file dump.json``, e.g. a saved
``SSDMClient.metrics()`` payload), or from this process's registry after
``--exec`` runs a statement against an in-memory SSDM (handy for
smoke-testing the pipeline) — and renders it:

    python scripts/dump_metrics.py --server 127.0.0.1:4711
    python scripts/dump_metrics.py --server 127.0.0.1:4711 --json
    python scripts/dump_metrics.py --file metrics.json
    python scripts/dump_metrics.py --exec 'SELECT ?s WHERE { ?s ?p ?o }'

Text output prints counters and gauges one per line and histograms as
count/mean/min/max, the estimated p50/p99/p999 quantiles, and their
occupied latency buckets.  ``--json`` prints the raw snapshot as one
machine-readable document.

``--stats`` switches the ``--server`` / ``--file`` source to the full
``stats`` payload (storage, buffer pool, governor, replication, and the
``mvcc`` block: live snapshots, retained versions/bytes, low-water seq,
consolidations, snapshot-gone aborts), rendered as dotted key paths:

    python scripts/dump_metrics.py --server 127.0.0.1:4711 --stats
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)


def render_text(snapshot, out=sys.stdout):
    """Human-readable rendering of one registry snapshot."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        out.write("-- counters --\n")
        for name in sorted(counters):
            out.write("%-40s %d\n" % (name, counters[name]))
    if gauges:
        out.write("-- gauges --\n")
        for name in sorted(gauges):
            out.write("%-40s %s\n" % (name, gauges[name]))
    if histograms:
        out.write("-- histograms --\n")
        for name in sorted(histograms):
            h = histograms[name]
            mean = h.get("mean")
            out.write(
                "%-40s count=%d sum=%.6f mean=%s min=%s max=%s\n" % (
                    name, h.get("count", 0), h.get("sum", 0.0),
                    "-" if mean is None else "%.6f" % mean,
                    "-" if h.get("min") is None else "%.6f" % h["min"],
                    "-" if h.get("max") is None else "%.6f" % h["max"],
                )
            )
            quantiles = [
                "%s=%.6f" % (key, h[key])
                for key in ("p50", "p99", "p999")
                if h.get(key) is not None
            ]
            if quantiles:
                out.write("    %s\n" % "  ".join(quantiles))
            for bucket, count in (h.get("buckets") or {}).items():
                out.write("    %-20s %d\n" % (bucket, count))
    if not counters and not gauges and not histograms:
        out.write("(no metrics recorded)\n")


def render_stats(stats, out=sys.stdout):
    """Render a nested ``stats`` payload as sorted dotted key paths.

    The ``mvcc`` block leads (it is what an operator debugging reader
    latency or retained-version memory looks for first); everything
    else follows alphabetically.
    """
    def flatten(prefix, value, into):
        if isinstance(value, dict):
            for key in value:
                flatten(
                    "%s.%s" % (prefix, key) if prefix else str(key),
                    value[key], into,
                )
        elif isinstance(value, (list, tuple)):
            into.append((prefix, json.dumps(value)))
        else:
            into.append((prefix, value))

    lines = []
    flatten("", stats, lines)
    mvcc = sorted(line for line in lines if line[0].startswith("mvcc"))
    rest = sorted(line for line in lines if not line[0].startswith("mvcc"))
    for name, value in mvcc + rest:
        out.write("%-44s %s\n" % (name, value))


def snapshot_from_server(address, stats=False):
    from repro.client import SSDMClient

    host, _, port = address.rpartition(":")
    client = SSDMClient(host or "127.0.0.1", int(port))
    try:
        return client.stats() if stats else client.metrics()
    finally:
        client.close()


def snapshot_from_exec(statement):
    from repro import SSDM
    from repro.observability import metrics

    SSDM().execute(statement)
    return metrics().snapshot()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="format an SSDM metrics snapshot"
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--server", metavar="HOST:PORT",
        help="fetch the snapshot from a running SSDM server",
    )
    source.add_argument(
        "--file", metavar="PATH",
        help="read a saved JSON snapshot (use '-' for stdin)",
    )
    source.add_argument(
        "--exec", dest="statement", metavar="SCISPARQL",
        help="run one statement on an empty in-memory SSDM and dump "
             "this process's registry",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw snapshot as JSON instead of text",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="dump the full stats payload (storage, governor, mvcc, "
             "replication) instead of the metrics registry",
    )
    args = parser.parse_args(argv)
    if args.stats and args.statement:
        parser.error("--stats applies to --server / --file sources only")
    if args.server:
        snapshot = snapshot_from_server(args.server, stats=args.stats)
    elif args.file:
        handle = sys.stdin if args.file == "-" else open(args.file)
        with handle:
            snapshot = json.load(handle)
        # tolerate a whole stats() payload, not just its metrics block
        if not args.stats and "metrics" in snapshot \
                and "counters" not in snapshot:
            snapshot = snapshot["metrics"]
    else:
        snapshot = snapshot_from_exec(args.statement)
    if args.json:
        print(json.dumps(snapshot, sort_keys=True))
    elif args.stats:
        render_stats(snapshot)
    else:
        render_text(snapshot)
    return 0


if __name__ == "__main__":
    sys.exit(main())
