"""Open-loop load harness for SSDM servers and replica sets.

Drives the macro query mix (:mod:`benchmarks.macro.queries`) against a
running server — or an in-process one it spawns over a freshly
generated dataset — at a **fixed arrival rate**, the open-loop
discipline: request *i* is due at ``start + i/rate`` regardless of how
earlier requests fared, and its latency is measured **from that
scheduled arrival**, not from when the client got around to sending it.
A server that stalls therefore shows the stall in its tail latencies
instead of quietly throttling the load (the coordinated-omission trap
closed-loop harnesses fall into).

Topology: ``--processes P --threads T`` runs P worker processes × T
threads; arrivals are partitioned round-robin across all P×T workers so
the aggregate schedule is exactly ``--rate`` per second.  Every thread
owns a private :class:`ReplicaSetClient` (``SSDMClient`` is one socket
and not thread-safe).  Workers ship their latency
:class:`~repro.observability.Histogram` back as plain ``state()``
dicts; the parent merges them and reports p50/p99/p999 plus an
error-code breakdown, then reads the server's own ``metrics`` and
``slowlog`` ops for the server-side view.

Overload scenarios: ``--batch-fraction`` sends part of the mix in the
``batch`` priority lane, and ``--max-concurrent`` / ``--max-queue``
bound the spawned in-process server so arrivals exceed capacity.  Shed
requests (typed ``OVERLOAD`` with a ``retry_after_ms`` hint) are
accounted separately, and the *admitted* requests get their own latency
histogram — rejections answer in microseconds and must not mask a
blown-out tail.

Mixed read/write workloads: ``--update-fraction F`` turns F of the
arrivals into unique ``INSERT DATA`` writes.  Admitted reads and
writes are reported as separate latency populations, because the claim
MVCC makes is about the *reader* tail under a concurrent write stream:
``--slo-read-p99-ms`` gates it absolutely, and ``--baseline
report.json`` (a saved read-only run) gates it relative to the
read-only p99 — ``--slo-read-p99-ratio`` (default 2.0) times the
baseline, never below ``--baseline-floor-ms`` so a microsecond-fast
baseline cannot make the ratio gate flaky.

SLO gates (for CI): ``--slo-p99-ms``, ``--slo-admitted-p99-ms``,
``--slo-read-p99-ms``, ``--slo-error-rate`` and
``--slo-max-shed-rate``.  Exit codes: 0 = pass, 1 = SLO violated (or
nothing completed), 2 = usage error.

    # spawn a tiny in-process server, 200 req/s for 5s over 2x2 workers
    python scripts/load_harness.py --scale tiny --rate 200 --duration 5 \
        --processes 2 --threads 2 --slo-p99-ms 250 --slo-error-rate 0.01

    # hammer an existing replica set
    python scripts/load_harness.py --endpoints 127.0.0.1:7468,127.0.0.1:7469 \
        --rate 500 --duration 30 --output harness.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import random
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for entry in (REPO_ROOT, os.path.join(REPO_ROOT, "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.macro import generator as gen              # noqa: E402
from benchmarks.macro.queries import QUERIES, QUERY_BY_NAME  # noqa: E402
from repro.observability import Histogram                  # noqa: E402

#: Late-start grace: an arrival more than this many seconds overdue by
#: the time its worker picks it up is still issued (open loop never
#: skips work), but counted separately so a swamped run is visible.
LATE_THRESHOLD = 0.5


def _worker_loop(worker_index, total_workers, endpoints, queries, rate,
                 count, start_at, timeout, seed, batch_fraction=0.0,
                 update_fraction=0.0):
    """One worker thread: issue this worker's slice of the schedule.

    ``batch_fraction`` of the requests are sent in the ``batch``
    priority lane (the rest ``interactive``), exercising the server's
    two-lane admission queue.  ``update_fraction`` of the requests are
    ``INSERT DATA`` writes (unique triples, so every one mutates),
    exercising the MVCC split: readers pin snapshots and must not see
    their tail latency degrade while the write stream runs.  Reads and
    writes get separate admitted-latency histograms, because the SLO
    that matters is the *reader* p99 under a concurrent writer.
    Returns plain data (histogram states + counters) so the same
    function serves threads in-process and processes over a queue.
    """
    from repro.exceptions import SciSparqlError, ServerOverloadedError
    from repro.governor import BATCH, INTERACTIVE
    from repro.replication import ReplicaSetClient

    hist = Histogram()
    admitted_hist = Histogram()
    read_hist = Histogram()
    write_hist = Histogram()
    errors = {}
    issued = ok = late = rows = shed = 0
    writes = write_ok = 0
    hint_ms_sum = 0
    rng = random.Random(seed * 100003 + worker_index)
    client = ReplicaSetClient(endpoints, timeout=timeout)
    try:
        for i in range(worker_index, count, total_workers):
            scheduled = start_at + i / rate
            now = time.monotonic()
            if scheduled > now:
                time.sleep(scheduled - now)
            elif now - scheduled > LATE_THRESHOLD:
                late += 1
            is_update = rng.random() < update_fraction
            issued += 1
            was_shed = False
            if is_update:
                writes += 1
                # a unique triple per request: every write mutates,
                # appends a WAL record, and publishes a new version
                text = (
                    "INSERT DATA { <http://harness/w%d/r%d> "
                    "<http://harness/tick> %d }" % (worker_index, i, i)
                )
                try:
                    client.update(text, timeout_ms=int(timeout * 1000))
                    ok += 1
                    write_ok += 1
                except ServerOverloadedError as error:
                    was_shed = True
                    shed += 1
                    hint_ms_sum += int(
                        getattr(error, "retry_after_ms", None) or 0)
                    errors["OVERLOAD"] = errors.get("OVERLOAD", 0) + 1
                except SciSparqlError as error:
                    code = getattr(error, "code", "INTERNAL")
                    errors[code] = errors.get(code, 0) + 1
                except OSError:
                    errors["CONNECTION"] = errors.get("CONNECTION", 0) + 1
            else:
                query = rng.choice(queries)
                priority = BATCH if rng.random() < batch_fraction \
                    else INTERACTIVE
                try:
                    result = client.query(query.text,
                                          timeout_ms=int(timeout * 1000),
                                          priority=priority)
                    ok += 1
                    rows += len(result.rows)
                except ServerOverloadedError as error:
                    was_shed = True
                    shed += 1
                    hint_ms_sum += int(
                        getattr(error, "retry_after_ms", None) or 0)
                    errors["OVERLOAD"] = errors.get("OVERLOAD", 0) + 1
                except SciSparqlError as error:
                    code = getattr(error, "code", "INTERNAL")
                    errors[code] = errors.get(code, 0) + 1
                except OSError:
                    errors["CONNECTION"] = errors.get("CONNECTION", 0) + 1
            # open-loop latency: from the scheduled arrival, so server
            # stalls surface as queueing delay in the tail
            elapsed = time.monotonic() - scheduled
            hist.observe(elapsed)
            # admitted-only view: shed requests answer fast by design
            # and must not dilute the latency SLO of admitted work
            if not was_shed:
                admitted_hist.observe(elapsed)
                if is_update:
                    write_hist.observe(elapsed)
                else:
                    read_hist.observe(elapsed)
    finally:
        client.close()
    return {
        "hist": hist.state(),
        "admitted_hist": admitted_hist.state(),
        "read_hist": read_hist.state(),
        "write_hist": write_hist.state(),
        "errors": errors,
        "issued": issued,
        "ok": ok,
        "late": late,
        "rows": rows,
        "shed": shed,
        "writes": writes,
        "write_ok": write_ok,
        "hint_ms_sum": hint_ms_sum,
    }


def _process_main(result_queue, thread_indexes, total_workers, endpoints,
                  query_names, rate, count, start_at, timeout, seed,
                  batch_fraction, update_fraction):
    """Worker-process entry: one thread per assigned worker index."""
    queries = [QUERY_BY_NAME[name] for name in query_names]
    results = []
    lock = threading.Lock()

    def run(index):
        outcome = _worker_loop(index, total_workers, endpoints, queries,
                               rate, count, start_at, timeout, seed,
                               batch_fraction, update_fraction)
        with lock:
            results.append(outcome)

    threads = [threading.Thread(target=run, args=(index,))
               for index in thread_indexes]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for outcome in results:
        result_queue.put(outcome)


def run_harness(endpoints, rate, duration, processes=1, threads=2,
                query_names=None, timeout=10.0, seed=gen.DEFAULT_SEED,
                batch_fraction=0.0, update_fraction=0.0, out=None):
    """Run the open-loop schedule; returns the merged report dict."""
    out = out if out is not None else sys.stderr
    query_names = list(query_names or [q.name for q in QUERIES])
    for name in query_names:
        if name not in QUERY_BY_NAME:
            raise ValueError("unknown query %r (choose from %s)" % (
                name, ", ".join(sorted(QUERY_BY_NAME))))
    total_workers = processes * threads
    count = max(1, int(rate * duration))
    out.write(
        "open-loop: %d requests at %g req/s over %d worker(s) "
        "(%d proc x %d threads), mix of %d queries\n" % (
            count, rate, total_workers, processes, threads,
            len(query_names))
    )

    start_at = time.monotonic() + 0.25   # let every worker reach the loop
    wall_start = time.perf_counter()
    outcomes = []
    if processes <= 1:
        _collect = outcomes.append
        lock = threading.Lock()
        queries = [QUERY_BY_NAME[name] for name in query_names]

        def run(index):
            outcome = _worker_loop(index, total_workers, endpoints,
                                   queries, rate, count, start_at,
                                   timeout, seed, batch_fraction,
                                   update_fraction)
            with lock:
                _collect(outcome)

        workers = [threading.Thread(target=run, args=(index,))
                   for index in range(total_workers)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
    else:
        context = multiprocessing.get_context("fork")
        result_queue = context.Queue()
        procs = []
        for p in range(processes):
            indexes = list(range(p * threads, (p + 1) * threads))
            procs.append(context.Process(
                target=_process_main,
                args=(result_queue, indexes, total_workers, endpoints,
                      query_names, rate, count, start_at, timeout, seed,
                      batch_fraction, update_fraction),
            ))
        for proc in procs:
            proc.start()
        for _ in range(total_workers):
            outcomes.append(result_queue.get())
        for proc in procs:
            proc.join()
    wall = time.perf_counter() - wall_start

    merged = Histogram()
    admitted = Histogram()
    reads = Histogram()
    writes_hist = Histogram()
    errors = {}
    issued = ok = late = rows = shed = hint_ms_sum = 0
    writes = write_ok = 0
    for outcome in outcomes:
        merged.merge(Histogram.from_state(outcome["hist"]))
        admitted.merge(Histogram.from_state(outcome["admitted_hist"]))
        reads.merge(Histogram.from_state(outcome["read_hist"]))
        writes_hist.merge(Histogram.from_state(outcome["write_hist"]))
        issued += outcome["issued"]
        ok += outcome["ok"]
        late += outcome["late"]
        rows += outcome["rows"]
        shed += outcome["shed"]
        writes += outcome["writes"]
        write_ok += outcome["write_ok"]
        hint_ms_sum += outcome["hint_ms_sum"]
        for code, n in outcome["errors"].items():
            errors[code] = errors.get(code, 0) + n

    def _ms(value):
        return None if value is None else round(value * 1000, 3)

    return {
        "config": {
            "endpoints": ["%s:%d" % tuple(e) if not isinstance(e, str)
                          else e for e in endpoints],
            "rate": rate,
            "duration": duration,
            "processes": processes,
            "threads": threads,
            "queries": query_names,
            "seed": seed,
            "batch_fraction": batch_fraction,
            "update_fraction": update_fraction,
        },
        "issued": issued,
        "ok": ok,
        "late_starts": late,
        "rows_returned": rows,
        "shed": shed,
        "writes_issued": writes,
        "writes_ok": write_ok,
        "mean_retry_after_ms": round(hint_ms_sum / shed, 1) if shed
        else None,
        "wall_seconds": round(wall, 3),
        "achieved_rate": round(issued / wall, 1) if wall else None,
        "error_rate": round(
            sum(errors.values()) / issued, 6) if issued else None,
        "errors": errors,
        "latency_ms": {
            "count": merged.count,
            "mean": _ms(merged.sum / merged.count) if merged.count else None,
            "p50": _ms(merged.quantile(0.50)),
            "p99": _ms(merged.quantile(0.99)),
            "p999": _ms(merged.quantile(0.999)),
            "max": _ms(merged.max),
        },
        # latency of the requests the server actually admitted (shed
        # requests are rejected in microseconds and would mask a
        # blown-out tail if they shared the histogram)
        "admitted_latency_ms": {
            "count": admitted.count,
            "p50": _ms(admitted.quantile(0.50)),
            "p99": _ms(admitted.quantile(0.99)),
            "max": _ms(admitted.max),
        },
        # admitted reads and writes separately: under MVCC the reader
        # tail must hold while a write stream runs, and averaging the
        # two latency populations would hide a reader regression
        "read_latency_ms": {
            "count": reads.count,
            "p50": _ms(reads.quantile(0.50)),
            "p99": _ms(reads.quantile(0.99)),
            "max": _ms(reads.max),
        },
        "write_latency_ms": {
            "count": writes_hist.count,
            "p50": _ms(writes_hist.quantile(0.50)),
            "p99": _ms(writes_hist.quantile(0.99)),
            "max": _ms(writes_hist.max),
        },
        "histogram": merged.state(),
    }


def server_side_view(endpoint, slowlog_threshold_ms=None):
    """Read the server's own metrics/slowlog after the run."""
    from repro.client.server import SSDMClient

    host, port = endpoint
    client = SSDMClient(host, port)
    try:
        metrics = client.metrics()
        slowlog = client.slowlog(threshold_ms=slowlog_threshold_ms)
    finally:
        client.close()
    counters = metrics.get("counters", {})
    entries = slowlog.get("entries", [])
    view = {
        "queries_total": counters.get("queries_total"),
        "query_errors_total": counters.get("query_errors_total"),
        "slowlog_entries": len(entries),
        "slowest": entries[0] if entries else None,
    }
    for name, payload in metrics.get("histograms", {}).items():
        if name.startswith("query_latency"):
            view[name] = {key: payload.get(key)
                          for key in ("count", "p50", "p99", "p999")}
    return view


def _parse_endpoints(text):
    endpoints = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        host, _, port = chunk.rpartition(":")
        endpoints.append((host or "127.0.0.1", int(port)))
    return endpoints


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Open-loop load harness for SSDM servers"
    )
    parser.add_argument("--endpoints", default=None,
                        help="comma-separated host:port list; omit to "
                             "spawn an in-process server")
    parser.add_argument("--scale", choices=sorted(gen.SCALES),
                        default="tiny",
                        help="dataset for the in-process server")
    parser.add_argument("--seed", type=int, default=gen.DEFAULT_SEED)
    parser.add_argument("--rate", type=float, default=100.0,
                        help="aggregate arrivals per second")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of scheduled load")
    parser.add_argument("--processes", type=int, default=1)
    parser.add_argument("--threads", type=int, default=2,
                        help="worker threads per process")
    parser.add_argument("--mix", default=None,
                        help="comma-separated query names "
                             "(default: all 12)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-request client timeout, seconds")
    parser.add_argument("--batch-fraction", type=float, default=0.0,
                        help="fraction of requests sent in the batch "
                             "priority lane (default 0: all "
                             "interactive)")
    parser.add_argument("--update-fraction", type=float, default=0.0,
                        help="fraction of requests issued as unique "
                             "INSERT DATA writes (default 0: "
                             "read-only)")
    parser.add_argument("--max-concurrent", type=int, default=None,
                        help="admission slots for the spawned "
                             "in-process server (overload scenarios)")
    parser.add_argument("--max-queue", type=int, default=None,
                        help="admission queue depth for the spawned "
                             "in-process server")
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        help="fail (exit 1) when p99 exceeds this")
    parser.add_argument("--slo-admitted-p99-ms", type=float, default=None,
                        help="fail (exit 1) when the p99 of admitted "
                             "(non-shed) requests exceeds this")
    parser.add_argument("--slo-read-p99-ms", type=float, default=None,
                        help="fail (exit 1) when the p99 of admitted "
                             "reads exceeds this (the MVCC reader-tail "
                             "gate under --update-fraction)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="saved JSON report of a read-only run: "
                             "gate this run's read p99 against it")
    parser.add_argument("--slo-read-p99-ratio", type=float, default=2.0,
                        help="fail when read p99 exceeds this multiple "
                             "of the baseline's (default 2.0)")
    parser.add_argument("--baseline-floor-ms", type=float, default=50.0,
                        help="ratio gate never trips below this "
                             "absolute read p99 (default 50ms), so a "
                             "near-zero baseline cannot make it flaky")
    parser.add_argument("--slo-error-rate", type=float, default=None,
                        help="fail (exit 1) when error fraction "
                             "exceeds this")
    parser.add_argument("--slo-max-shed-rate", type=float, default=None,
                        help="fail (exit 1) when the shed fraction "
                             "exceeds this")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the full JSON report here")
    args = parser.parse_args(argv)

    if args.rate <= 0 or args.duration <= 0 or args.processes < 1 \
            or args.threads < 1:
        parser.error("rate/duration must be positive; "
                     "processes/threads at least 1")
    if not 0.0 <= args.batch_fraction <= 1.0:
        parser.error("--batch-fraction must be in [0, 1]")
    if not 0.0 <= args.update_fraction <= 1.0:
        parser.error("--update-fraction must be in [0, 1]")
    query_names = None
    if args.mix:
        query_names = [name.strip() for name in args.mix.split(",")
                       if name.strip()]
        unknown = [n for n in query_names if n not in QUERY_BY_NAME]
        if unknown:
            parser.error("unknown queries in --mix: %s"
                         % ", ".join(unknown))

    server = holder = ssdm = None
    if args.endpoints:
        endpoints = _parse_endpoints(args.endpoints)
        if not endpoints:
            parser.error("--endpoints parsed to an empty list")
    else:
        from repro.client.server import SSDMServer
        from repro.ssdm import SSDM

        holder = tempfile.TemporaryDirectory(prefix="harness-ssdm-")
        ssdm = SSDM.open(holder.name)
        triples = gen.load(ssdm, args.scale, args.seed)
        server_kwargs = {}
        if args.max_concurrent is not None:
            server_kwargs["max_concurrent"] = args.max_concurrent
        if args.max_queue is not None:
            server_kwargs["max_queue"] = args.max_queue
        server = SSDMServer(ssdm, "127.0.0.1", 0, **server_kwargs).start()
        endpoints = [("127.0.0.1", server.server_address[1])]
        sys.stderr.write(
            "in-process server on port %d over %d triples (%s scale)\n"
            % (server.server_address[1], triples, args.scale)
        )

    try:
        report = run_harness(
            endpoints, args.rate, args.duration,
            processes=args.processes, threads=args.threads,
            query_names=query_names, timeout=args.timeout,
            seed=args.seed, batch_fraction=args.batch_fraction,
            update_fraction=args.update_fraction,
        )
        try:
            report["server"] = server_side_view(endpoints[0])
        except Exception as error:   # the run itself already succeeded
            report["server"] = {"error": str(error)}
    finally:
        if server is not None:
            server.stop()
        if ssdm is not None:
            ssdm.close()
        if holder is not None:
            holder.cleanup()

    latency = report["latency_ms"]
    sys.stdout.write(
        "issued %d (ok %d, errors %d, late starts %d) in %.2fs "
        "(%.1f req/s achieved)\n" % (
            report["issued"], report["ok"],
            sum(report["errors"].values()), report["late_starts"],
            report["wall_seconds"], report["achieved_rate"] or 0,
        )
    )
    sys.stdout.write(
        "latency ms: p50=%s p99=%s p999=%s max=%s mean=%s\n" % (
            latency["p50"], latency["p99"], latency["p999"],
            latency["max"], latency["mean"],
        )
    )
    admitted = report["admitted_latency_ms"]
    read = report["read_latency_ms"]
    write = report["write_latency_ms"]
    if report["writes_issued"]:
        sys.stdout.write(
            "mixed workload: %d writes issued (%d ok); read latency "
            "ms: p50=%s p99=%s max=%s; write latency ms: p50=%s "
            "p99=%s max=%s\n" % (
                report["writes_issued"], report["writes_ok"],
                read["p50"], read["p99"], read["max"],
                write["p50"], write["p99"], write["max"],
            )
        )
    if report["shed"]:
        sys.stdout.write(
            "shed %d (mean retry_after %sms); admitted latency ms: "
            "p50=%s p99=%s max=%s\n" % (
                report["shed"], report["mean_retry_after_ms"],
                admitted["p50"], admitted["p99"], admitted["max"],
            )
        )
    if report["errors"]:
        sys.stdout.write("errors by code: %s\n" % json.dumps(
            report["errors"], sort_keys=True))
    server_view = report.get("server") or {}
    if "queries_total" in server_view:
        sys.stdout.write(
            "server: queries_total=%s query_errors_total=%s "
            "slowlog_entries=%s\n" % (
                server_view.get("queries_total"),
                server_view.get("query_errors_total"),
                server_view.get("slowlog_entries"),
            )
        )

    failed = []
    if report["issued"] == 0 or report["ok"] == 0:
        failed.append("no successful requests")
    if args.slo_p99_ms is not None and latency["p99"] is not None \
            and latency["p99"] > args.slo_p99_ms:
        failed.append("p99 %.3fms > SLO %.3fms"
                      % (latency["p99"], args.slo_p99_ms))
    if args.slo_admitted_p99_ms is not None \
            and admitted["p99"] is not None \
            and admitted["p99"] > args.slo_admitted_p99_ms:
        failed.append("admitted p99 %.3fms > SLO %.3fms"
                      % (admitted["p99"], args.slo_admitted_p99_ms))
    if args.slo_read_p99_ms is not None and read["p99"] is not None \
            and read["p99"] > args.slo_read_p99_ms:
        failed.append("read p99 %.3fms > SLO %.3fms"
                      % (read["p99"], args.slo_read_p99_ms))
    baseline_read_p99 = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        baseline_read_p99 = (
            (baseline.get("read_latency_ms") or {}).get("p99")
            or (baseline.get("admitted_latency_ms") or {}).get("p99")
            or (baseline.get("latency_ms") or {}).get("p99")
        )
        if baseline_read_p99 and read["p99"] is not None:
            limit = max(baseline_read_p99 * args.slo_read_p99_ratio,
                        args.baseline_floor_ms)
            if read["p99"] > limit:
                failed.append(
                    "read p99 %.3fms > %.1fx read-only baseline "
                    "%.3fms (limit %.3fms)" % (
                        read["p99"], args.slo_read_p99_ratio,
                        baseline_read_p99, limit))
    if args.slo_error_rate is not None and report["error_rate"] is not None \
            and report["error_rate"] > args.slo_error_rate:
        failed.append("error rate %.4f > SLO %.4f"
                      % (report["error_rate"], args.slo_error_rate))
    if args.slo_max_shed_rate is not None and report["issued"] \
            and report["shed"] / report["issued"] > args.slo_max_shed_rate:
        failed.append("shed rate %.4f > SLO %.4f" % (
            report["shed"] / report["issued"], args.slo_max_shed_rate))
    report["slo"] = {
        "p99_ms": args.slo_p99_ms,
        "admitted_p99_ms": args.slo_admitted_p99_ms,
        "read_p99_ms": args.slo_read_p99_ms,
        "baseline_read_p99_ms": baseline_read_p99,
        "read_p99_ratio": args.slo_read_p99_ratio if args.baseline
        else None,
        "error_rate": args.slo_error_rate,
        "max_shed_rate": args.slo_max_shed_rate,
        "violations": failed,
        "pass": not failed,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        sys.stdout.write("report written to %s\n" % args.output)

    if failed:
        for violation in failed:
            sys.stdout.write("SLO FAIL: %s\n" % violation)
        return 1
    sys.stdout.write("SLO gates: pass\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
