#!/usr/bin/env python
"""Report the dictionary/index memory footprint of the RDF core.

Builds an in-memory graph at a configurable scale (default 100k
triples, the Experiment 8 geometry) and prints what the dictionary
encoding and the three sorted permutation indexes cost in bytes —
the memory side of the ID-space speedup, run as a CI step so footprint
growth shows up in the job log next to the timing gate:

    python scripts/report_footprint.py
    python scripts/report_footprint.py --triples 500000 --json

Exits non-zero when the per-triple index cost exceeds ``--max-bytes``
(default 96: three int64 triple copies plus permutation arrays is
72 bytes; headroom for numpy overhead on small runs).
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro import SSDM, Literal, URI  # noqa: E402


def populate(graph, triples):
    """One third chain links, two thirds star satellites — the mix
    keeps both URI-heavy and literal-heavy terms in the dictionary."""
    p1 = URI("http://ex.org/p1")
    q1, q2 = URI("http://ex.org/q1"), URI("http://ex.org/q2")
    groups = triples // 3
    for i in range(groups):
        s = URI("http://ex.org/n%d" % i)
        graph.add(s, p1, URI("http://ex.org/n%d" % (i + 1)))
        graph.add(s, q1, Literal(i))
        graph.add(s, q2, Literal(float(i)))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--triples", type=int, default=102_000)
    parser.add_argument("--max-bytes", type=float, default=96.0,
                        help="fail above this many index bytes/triple")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    ssdm = SSDM()
    populate(ssdm.graph, args.triples)
    stats = ssdm.stats()["graph"]
    per_triple = stats["index_bytes"] / max(stats["triples"], 1)
    report = {
        "triples": stats["triples"],
        "terms": stats["dictionary"]["terms"],
        "index_bytes": stats["index_bytes"],
        "index_bytes_per_triple": round(per_triple, 2),
        "pending": stats["pending"],
        "flushes": stats["flushes"],
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print("rdf core footprint (%d triples):" % report["triples"])
        print("  dictionary terms:     %d" % report["terms"])
        print("  permutation indexes:  %.2f MiB (%.1f bytes/triple)"
              % (report["index_bytes"] / (1024.0 * 1024.0), per_triple))
        print("  pending delta rows:   %d (after %d merges)"
              % (report["pending"], report["flushes"]))
    if per_triple > args.max_bytes:
        print("FOOTPRINT REGRESSION: %.1f bytes/triple exceeds the "
              "%.1f budget" % (per_triple, args.max_bytes))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
