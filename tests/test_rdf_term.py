"""RDF term model: construction, equality, hashing, serialization."""

import pytest

from repro.exceptions import SciSparqlError
from repro.rdf import URI, BlankNode, Literal, XSD
from repro.rdf.term import Triple, is_term, term_key


class TestURI:
    def test_equality_by_value(self):
        assert URI("http://a") == URI("http://a")
        assert URI("http://a") != URI("http://b")

    def test_hashable(self):
        assert len({URI("http://a"), URI("http://a")}) == 1

    def test_immutable(self):
        with pytest.raises(AttributeError):
            URI("http://a").value = "x"

    def test_n3(self):
        assert URI("http://a").n3() == "<http://a>"

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            URI(42)

    def test_str(self):
        assert str(URI("http://a")) == "http://a"


class TestBlankNode:
    def test_fresh_labels_unique(self):
        assert BlankNode() != BlankNode()

    def test_same_label_equal(self):
        assert BlankNode("x") == BlankNode("x")

    def test_n3(self):
        assert BlankNode("x").n3() == "_:x"

    def test_not_equal_to_uri(self):
        assert BlankNode("x") != URI("x")


class TestLiteral:
    def test_default_datatypes(self):
        assert Literal(1).datatype == XSD.integer
        assert Literal(1.5).datatype == XSD.double
        assert Literal(True).datatype == XSD.boolean
        assert Literal("s").datatype == XSD.string

    def test_bool_is_not_integer(self):
        # bool is an int subclass; the datatype must still be boolean
        assert Literal(True).datatype == XSD.boolean
        assert Literal(True) != Literal(1)

    def test_language_tagged(self):
        lit = Literal("chat", lang="fr")
        assert lit.lang == "fr"
        assert lit.datatype == Literal.LANG_STRING

    def test_lang_requires_string(self):
        with pytest.raises(TypeError):
            Literal(3, lang="en")

    def test_equality_includes_datatype(self):
        assert Literal("1") != Literal(1)

    def test_numeric_check(self):
        assert Literal(3).is_numeric()
        assert Literal(3.5).is_numeric()
        assert not Literal(True).is_numeric()
        assert not Literal("3").is_numeric()

    def test_from_lexical_integer(self):
        lit = Literal.from_lexical("42", XSD.integer)
        assert lit.value == 42 and isinstance(lit.value, int)

    def test_from_lexical_double(self):
        assert Literal.from_lexical("2.5", XSD.double).value == 2.5

    def test_from_lexical_boolean(self):
        assert Literal.from_lexical("true", XSD.boolean).value is True
        assert Literal.from_lexical("0", XSD.boolean).value is False
        with pytest.raises(ValueError):
            Literal.from_lexical("nope", XSD.boolean)

    def test_from_lexical_unknown_datatype_keeps_string(self):
        custom = URI("http://example.org/dt")
        lit = Literal.from_lexical("raw", custom)
        assert lit.value == "raw"
        assert lit.datatype == custom

    def test_n3_plain_string(self):
        assert Literal("hi").n3() == '"hi"'

    def test_n3_escapes(self):
        assert Literal('a"b\n').n3() == '"a\\"b\\n"'

    def test_n3_typed(self):
        assert "^^" in Literal(5).n3()

    def test_n3_lang(self):
        assert Literal("chat", lang="fr").n3() == '"chat"@fr'

    def test_lexical_form_boolean(self):
        assert Literal(True).lexical_form() == "true"


class TestTermKey:
    def test_order_across_kinds(self):
        unbound = term_key(None)
        blank = term_key(BlankNode("a"))
        uri = term_key(URI("http://a"))
        lit = term_key(Literal(1))
        assert unbound < blank < uri < lit

    def test_numeric_order_ignores_type(self):
        assert term_key(Literal(1)) < term_key(Literal(1.5))
        assert term_key(Literal(2)) == term_key(Literal(2.0))

    def test_strings_after_numbers(self):
        assert term_key(Literal(999)) < term_key(Literal("a"))


class TestTriple:
    def test_named_fields(self):
        t = Triple(URI("s"), URI("p"), Literal(1))
        assert t.subject == URI("s")
        assert t.property == URI("p")
        assert t.value == Literal(1)

    def test_n3(self):
        t = Triple(URI("s"), URI("p"), Literal("x"))
        assert t.n3() == '<s> <p> "x" .'


def test_is_term_accepts_arrays():
    from repro.arrays import NumericArray
    assert is_term(NumericArray([1, 2]))
    assert is_term(URI("x"))
    assert not is_term(42)
    assert not is_term("plain string")
