"""CSV loaders: numeric arrays and spreadsheet-style rows."""

import pytest

from repro import SSDM, BlankNode, Literal, NumericArray, URI
from repro.exceptions import SciSparqlError
from repro.loaders.csvdata import load_csv_array, load_csv_rows


class TestCsvArray:
    def test_matrix(self, ssdm):
        array = load_csv_array(
            ssdm, "1,2,3\n4,5,6\n", URI("http://e/m"), URI("http://e/val")
        )
        assert array.shape == (2, 3)
        r = ssdm.execute(
            "SELECT ?a[2,3] WHERE { <http://e/m> <http://e/val> ?a }"
        )
        assert r.rows == [(6.0,)]

    def test_single_row_becomes_vector(self, ssdm):
        array = load_csv_array(
            ssdm, "1,2,3\n", URI("http://e/v"), URI("http://e/val")
        )
        assert array.shape == (3,)

    def test_from_file(self, ssdm, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.5,2.5\n3.5,4.5\n")
        array = load_csv_array(
            ssdm, str(path), URI("http://e/f"), URI("http://e/val")
        )
        assert array.to_nested_lists() == [[1.5, 2.5], [3.5, 4.5]]

    def test_non_numeric_rejected(self, ssdm):
        with pytest.raises(SciSparqlError):
            load_csv_array(ssdm, "1,x\n", URI("http://e/m"),
                           URI("http://e/val"))

    def test_ragged_rejected(self, ssdm):
        with pytest.raises(SciSparqlError):
            load_csv_array(ssdm, "1,2\n3\n", URI("http://e/m"),
                           URI("http://e/val"))

    def test_empty_rejected(self, ssdm):
        with pytest.raises(SciSparqlError):
            load_csv_array(ssdm, "\n", URI("http://e/m"),
                           URI("http://e/val"))

    def test_externalized_when_configured(self, external_ssdm):
        from repro.arrays import ArrayProxy
        load_csv_array(
            external_ssdm, ",".join(str(i) for i in range(50)) + "\n",
            URI("http://e/big"), URI("http://e/val"),
        )
        value = external_ssdm.graph.value(
            URI("http://e/big"), URI("http://e/val")
        )
        assert isinstance(value, ArrayProxy)


CSV_ROWS = """id,name,temperature,ok
1,alpha,293.5,true
2,beta,77.4,false
3,gamma,,true
"""


class TestCsvRows:
    def test_row_subjects_from_key(self, ssdm):
        count = load_csv_rows(
            ssdm, CSV_ROWS, "http://e/", key_column="id"
        )
        assert count == 11            # 12 cells minus one empty
        assert ssdm.graph.value(
            URI("http://e/row/2"), URI("http://e/name")
        ) == Literal("beta")

    def test_typed_cells(self, ssdm):
        load_csv_rows(ssdm, CSV_ROWS, "http://e/", key_column="id")
        assert ssdm.graph.value(
            URI("http://e/row/1"), URI("http://e/temperature")
        ) == Literal(293.5)
        assert ssdm.graph.value(
            URI("http://e/row/1"), URI("http://e/ok")
        ) == Literal(True)
        assert ssdm.graph.value(
            URI("http://e/row/1"), URI("http://e/id")
        ) == Literal(1)

    def test_empty_cells_skipped(self, ssdm):
        load_csv_rows(ssdm, CSV_ROWS, "http://e/", key_column="id")
        assert ssdm.graph.value(
            URI("http://e/row/3"), URI("http://e/temperature")
        ) is None

    def test_blank_rows_without_key(self, ssdm):
        load_csv_rows(ssdm, CSV_ROWS, "http://e/")
        subjects = set(ssdm.graph.subjects())
        assert all(isinstance(s, BlankNode) for s in subjects)
        assert len(subjects) == 3

    def test_row_class(self, ssdm):
        from repro.rdf.namespace import RDF
        load_csv_rows(
            ssdm, CSV_ROWS, "http://e/", key_column="id",
            row_class=URI("http://e/Measurement"),
        )
        assert ssdm.graph.count(
            None, RDF.type, URI("http://e/Measurement")
        ) == 3

    def test_queryable(self, ssdm):
        load_csv_rows(ssdm, CSV_ROWS, "http://e/", key_column="id")
        r = ssdm.execute("""
            PREFIX e: <http://e/>
            SELECT ?name WHERE { ?row e:temperature ?t ; e:name ?name
                FILTER(?t > 100) }""")
        assert r.rows == [("alpha",)]

    def test_unknown_key_column(self, ssdm):
        with pytest.raises(SciSparqlError):
            load_csv_rows(ssdm, CSV_ROWS, "http://e/",
                          key_column="nope")

    def test_empty_document(self, ssdm):
        with pytest.raises(SciSparqlError):
            load_csv_rows(ssdm, "", "http://e/")
