"""Edge cases of the Sequence Pattern Detector (SPD).

Boundary run lengths, non-increasing streams, duplicates, the
order-preservation invariant the APR layer depends on, and the
``predict`` extrapolation the prefetch pipeline uses.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.spd import (
    RANGE, SINGLE, SequencePatternDetector, detect_patterns,
)


def expand(emissions):
    """Flatten emissions back into the chunk-id stream they encode."""
    out = []
    for emission in emissions:
        if emission[0] == RANGE:
            _, first, last, step = emission
            out.extend(range(first, last + 1, step))
        else:
            out.append(emission[1])
    return out


class TestMinRunBoundary:
    def test_run_of_exactly_min_run_becomes_a_range(self):
        assert detect_patterns([0, 1, 2], min_run=3) == [(RANGE, 0, 2, 1)]

    def test_run_one_short_of_min_run_stays_singles(self):
        assert detect_patterns([0, 1], min_run=3) == [
            (SINGLE, 0), (SINGLE, 1)
        ]

    def test_boundary_respects_custom_min_run(self):
        assert detect_patterns([5, 10], min_run=2) == [(RANGE, 5, 10, 5)]
        assert detect_patterns([5], min_run=2) == [(SINGLE, 5)]

    def test_run_at_boundary_then_tail(self):
        assert detect_patterns([0, 2, 4, 9], min_run=3) == [
            (RANGE, 0, 4, 2), (SINGLE, 9)
        ]


class TestDescending:
    def test_descending_sequence_never_forms_ranges(self):
        emissions = detect_patterns([9, 7, 5, 3, 1], min_run=3)
        assert emissions == [(SINGLE, cid) for cid in (9, 7, 5, 3, 1)]

    def test_descending_then_ascending_recovers(self):
        emissions = detect_patterns([5, 4, 10, 11, 12], min_run=3)
        assert (RANGE, 10, 12, 1) in emissions
        assert expand(emissions) == [5, 4, 10, 11, 12]


class TestDuplicates:
    def test_duplicate_ids_emit_as_singles(self):
        emissions = detect_patterns([3, 3, 3], min_run=3)
        assert emissions == [(SINGLE, 3)] * 3

    def test_duplicate_breaks_a_run_but_keeps_every_id(self):
        emissions = detect_patterns([0, 1, 2, 2, 3], min_run=3)
        assert expand(emissions) == [0, 1, 2, 2, 3]


@settings(max_examples=200, deadline=None)
@given(
    ids=st.lists(st.integers(min_value=0, max_value=200), max_size=60),
    min_run=st.integers(min_value=2, max_value=5),
)
def test_emissions_reconstruct_the_input_stream(ids, min_run):
    """Every chunk id appears exactly once, in feed order — the
    invariant that makes SPD-planned fetches complete and orderable."""
    assert expand(detect_patterns(ids, min_run=min_run)) == ids


class TestPredict:
    def test_no_prediction_before_a_confirmed_run(self):
        spd = SequencePatternDetector(min_run=3)
        for cid in (0, 1):
            spd.feed(cid)
        assert spd.predict(4) == []

    def test_extrapolates_a_confirmed_run(self):
        spd = SequencePatternDetector(min_run=3)
        for cid in (0, 2, 4):
            spd.feed(cid)
        assert spd.predict(3) == [6, 8, 10]

    def test_zero_count_and_flushed_state_predict_nothing(self):
        spd = SequencePatternDetector(min_run=3)
        for cid in (0, 1, 2):
            spd.feed(cid)
        assert spd.predict(0) == []
        spd.flush()
        assert spd.predict(4) == []

    def test_prediction_does_not_disturb_emissions(self):
        spd = SequencePatternDetector(min_run=3)
        emissions = []
        for cid in (0, 1, 2, 3):
            emissions.extend(spd.feed(cid))
        spd.predict(8)
        emissions.extend(spd.flush())
        assert emissions == [(RANGE, 0, 3, 1)]
