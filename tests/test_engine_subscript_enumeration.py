"""Variables bound to array subscripts (dissertation section 4.1.2):
an unbound subscript variable enumerates the valid 1-based indexes."""

import pytest

from repro import SSDM

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture
def data(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:v ex:val (10 20 30) .
        ex:m ex:val ((1 2) (3 4)) .
    """)
    return ssdm


class TestEnumeration:
    def test_vector_enumeration(self, data):
        r = data.execute(EXP + """
            SELECT ?i (?a[?i] AS ?e) WHERE { ex:v ex:val ?a }
            ORDER BY ?i""")
        assert r.rows == [(1, 10), (2, 20), (3, 30)]

    def test_matrix_enumeration(self, data):
        r = data.execute(EXP + """
            SELECT ?i ?j (?a[?i,?j] AS ?e) WHERE { ex:m ex:val ?a }
            ORDER BY ?i ?j""")
        assert r.rows == [(1, 1, 1), (1, 2, 2), (2, 1, 3), (2, 2, 4)]

    def test_repeated_variable_is_diagonal(self, data):
        r = data.execute(EXP + """
            SELECT ?i (?a[?i,?i] AS ?d) WHERE { ex:m ex:val ?a }
            ORDER BY ?i""")
        assert r.rows == [(1, 1), (2, 4)]

    def test_filter_over_enumerated(self, data):
        r = data.execute(EXP + """
            SELECT ?i WHERE { ex:v ex:val ?a
                BIND(?a[?i] AS ?e) FILTER(?e > 15) } ORDER BY ?i""")
        assert r.column("i") == [2, 3]

    def test_mixed_bound_and_free(self, data):
        r = data.execute(EXP + """
            SELECT ?j (?a[2,?j] AS ?e) WHERE { ex:m ex:val ?a }
            ORDER BY ?j""")
        assert r.rows == [(1, 3), (2, 4)]

    def test_bound_variable_not_enumerated(self, data):
        r = data.execute(EXP + """
            SELECT ?i (?a[?i] AS ?e) WHERE { ex:v ex:val ?a
                VALUES ?i { 2 } }""")
        assert r.rows == [(2, 20)]

    def test_enumeration_over_proxy(self, external_ssdm):
        external_ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:v ex:val "
            "(5 6 7 8 9 10 11 12 13 14) ."
        )
        r = external_ssdm.execute(EXP + """
            SELECT ?i WHERE { ex:v ex:val ?a
                BIND(?a[?i] AS ?e) FILTER(?e = 9) }""")
        assert r.rows == [(5,)]

    def test_aggregate_over_enumeration(self, data):
        r = data.execute(EXP + """
            SELECT (COUNT(?i) AS ?n) (SUM(?e) AS ?s) WHERE {
                ex:m ex:val ?a BIND(?a[?i,?j] AS ?e) }""")
        assert r.rows == [(4, 10)]

    def test_non_array_base_no_rows_bound(self, data):
        r = data.execute(EXP + """
            SELECT ?i WHERE { ex:v ex:label ?a BIND(?a[?i] AS ?e) }""")
        assert r.rows == []
