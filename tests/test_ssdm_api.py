"""The SSDM facade: results API, prefixes, explain, externalization."""

import pytest

from repro import (
    SSDM, ArrayProxy, MemoryArrayStore, NumericArray, QueryError,
    QueryResult, URI, Literal,
)


class TestQueryResult:
    @pytest.fixture
    def result(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:v 1 . ex:b ex:v 2 .
        """)
        return ssdm.execute(
            "PREFIX ex: <http://e/> SELECT ?s ?v WHERE { ?s ex:v ?v } "
            "ORDER BY ?v"
        )

    def test_len_and_iter(self, result):
        assert len(result) == 2
        assert list(result) == result.rows

    def test_columns(self, result):
        assert result.columns == ["s", "v"]

    def test_column_accessor(self, result):
        assert result.column("v") == [1, 2]

    def test_as_dicts(self, result):
        dicts = result.as_dicts()
        assert dicts[0]["v"] == 1

    def test_scalar_requires_1x1(self, result):
        with pytest.raises(QueryError):
            result.scalar()

    def test_scalar(self, ssdm):
        ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:v 7 .")
        assert ssdm.execute(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ?s ex:v ?v }"
        ).scalar() == 7

    def test_resolved_materializes_proxies(self, external_ssdm):
        external_ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:val "
            "(1 2 3 4 5 6 7 8 9 10) ."
        )
        r = external_ssdm.execute(
            "PREFIX ex: <http://e/> SELECT ?a WHERE { ?s ex:val ?a }"
        )
        assert isinstance(r.rows[0][0], ArrayProxy)
        resolved = r.resolved()
        assert isinstance(resolved.rows[0][0], NumericArray)


class TestPrefixes:
    def test_persistent_prefix(self, ssdm):
        ssdm.prefix("ex", "http://e/")
        ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:v 1 .")
        r = ssdm.execute("SELECT ?v WHERE { ex:a ex:v ?v }")
        assert r.rows == [(1,)]

    def test_query_prefix_overrides(self, ssdm):
        ssdm.prefix("ex", "http://one/")
        ssdm.add(URI("http://two/a"), URI("http://two/v"), Literal(1))
        r = ssdm.execute(
            "PREFIX ex: <http://two/> SELECT ?v WHERE { ex:a ex:v ?v }"
        )
        assert r.rows == [(1,)]


class TestDispatch:
    def test_select_returns_result(self, ssdm):
        assert isinstance(
            ssdm.execute("SELECT ?s WHERE { ?s ?p ?o }"), QueryResult
        )

    def test_select_helper_rejects_ask(self, ssdm):
        with pytest.raises(QueryError):
            ssdm.select("ASK { ?s ?p ?o }")

    def test_ask_helper(self, ssdm):
        assert ssdm.ask("ASK { ?s ?p ?o }") is False

    def test_ask_helper_rejects_select(self, ssdm):
        with pytest.raises(QueryError):
            ssdm.ask("SELECT ?s WHERE { ?s ?p ?o }")

    def test_define_returns_function(self, ssdm):
        function = ssdm.execute(
            "PREFIX ex: <http://e/> DEFINE FUNCTION ex:f(?x) AS ?x"
        )
        assert function.arity() == 1


class TestExternalization:
    def test_small_arrays_stay_resident(self):
        store = MemoryArrayStore()
        ssdm = SSDM(array_store=store, externalize_threshold=100)
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:val (1 2 3) ."
        )
        value = ssdm.graph.value(URI("http://e/a"), URI("http://e/val"))
        assert isinstance(value, NumericArray)
        assert store.stats.arrays_stored == 0

    def test_large_arrays_externalized(self):
        store = MemoryArrayStore()
        ssdm = SSDM(array_store=store, externalize_threshold=2)
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:val (1 2 3) ."
        )
        value = ssdm.graph.value(URI("http://e/a"), URI("http://e/val"))
        assert isinstance(value, ArrayProxy)
        assert store.stats.arrays_stored == 1

    def test_no_store_keeps_everything_resident(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:val "
            "(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15) ."
        )
        value = ssdm.graph.value(URI("http://e/a"), URI("http://e/val"))
        assert isinstance(value, NumericArray)


class TestExplain:
    def test_explain_mentions_operators(self, foaf):
        text = foaf.explain("""PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT DISTINCT ?n WHERE {
                ?a foaf:knows ?b . ?b foaf:name ?n } LIMIT 5""")
        for operator in ("BGP", "Project", "Distinct", "Slice"):
            assert operator in text

    def test_plan_api(self, foaf):
        plan, columns = foaf.plan(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
            "SELECT ?n WHERE { ?p foaf:name ?n }"
        )
        assert columns == ["n"]
