"""The mini-benchmark query generator (section 6.3.1)."""

import numpy as np
import pytest

from repro.arrays import ArrayProxy, NumericArray
from repro.bench import ACCESS_PATTERNS, QueryGenerator, make_benchmark_store
from repro.bench.querygen import run_pattern
from repro.exceptions import SciSparqlError
from repro.storage import APRResolver, MemoryArrayStore, Strategy


@pytest.fixture(scope="module")
def store_and_proxies():
    store = MemoryArrayStore(chunk_bytes=512)
    proxies = make_benchmark_store(store, arrays=3, shape=(64, 64), seed=1)
    return store, proxies


class TestGeneration:
    def test_deterministic_data(self):
        s1 = MemoryArrayStore(chunk_bytes=512)
        s2 = MemoryArrayStore(chunk_bytes=512)
        p1 = make_benchmark_store(s1, arrays=2, shape=(16, 16), seed=9)
        p2 = make_benchmark_store(s2, arrays=2, shape=(16, 16), seed=9)
        assert p1[0].resolve() == p2[0].resolve()

    def test_deterministic_queries(self, store_and_proxies):
        _, proxies = store_and_proxies
        g1 = QueryGenerator(proxies, seed=3)
        g2 = QueryGenerator(proxies, seed=3)
        v1 = g1.view("row")
        v2 = g2.view("row")
        assert v1 == v2

    def test_empty_proxies_rejected(self):
        with pytest.raises(SciSparqlError):
            QueryGenerator([])

    def test_unknown_pattern_rejected(self, store_and_proxies):
        _, proxies = store_and_proxies
        with pytest.raises(SciSparqlError):
            QueryGenerator(proxies).view("zigzag")


class TestPatternShapes:
    @pytest.fixture
    def generator(self, store_and_proxies):
        _, proxies = store_and_proxies
        return QueryGenerator(proxies, seed=5, stride=4, block=8,
                              random_points=10)

    def test_element_is_point_list(self, generator):
        view = generator.view("element")
        assert isinstance(view, list) and len(view) == 1
        assert view[0].shape == ()

    def test_row(self, generator):
        assert generator.view("row").shape == (64,)

    def test_column(self, generator):
        view = generator.view("column")
        assert view.shape == (64,)
        assert view.strides == (64,)

    def test_stride(self, generator):
        view = generator.view("stride")
        assert view.shape == (16,)          # 64 / stride 4

    def test_block(self, generator):
        assert generator.view("block").shape == (8, 8)

    def test_diagonal(self, generator):
        view = generator.view("diagonal")
        assert isinstance(view, list) and len(view) == 64

    def test_random(self, generator):
        view = generator.view("random")
        assert len(view) == 10

    def test_whole(self, generator):
        view = generator.view("whole")
        assert view.is_whole_array()

    def test_all_patterns_enumerate(self, generator):
        for pattern in ACCESS_PATTERNS:
            generator.view(pattern)


class TestRunPattern:
    def test_counts_elements(self, store_and_proxies):
        store, proxies = store_and_proxies
        generator = QueryGenerator(proxies, seed=2)
        resolver = APRResolver(store, strategy=Strategy.SPD)
        elements = run_pattern(resolver, generator, "row", 4)
        assert elements == 4 * 64

    def test_values_correct_for_block(self, store_and_proxies):
        store, proxies = store_and_proxies
        generator = QueryGenerator(proxies, seed=8, block=4)
        view = generator.view("block")
        resolved = view.resolve()
        whole = store.proxy(view.array_id).resolve().to_numpy()
        # locate the block via its descriptor
        row0 = view.offset // 64
        col0 = view.offset % 64
        expected = whole[row0:row0 + 4, col0:col0 + 4]
        assert np.array_equal(resolved.to_numpy(), expected)

    def test_strategies_agree_on_every_pattern(self, store_and_proxies):
        store, proxies = store_and_proxies
        for pattern in ACCESS_PATTERNS:
            outputs = []
            for strategy in Strategy:
                generator = QueryGenerator(proxies, seed=13)
                resolver = APRResolver(store, strategy=strategy,
                                       buffer_size=8)
                view = generator.view(pattern)
                if isinstance(view, list):
                    outputs.append(
                        [r if not isinstance(r, NumericArray)
                         else r.to_nested_lists()
                         for r in resolver.resolve(view)]
                    )
                else:
                    outputs.append(
                        resolver.resolve([view])[0].to_nested_lists()
                    )
            assert outputs[0] == outputs[1] == outputs[2], pattern
