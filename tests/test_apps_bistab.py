"""The BISTAB application: dataset generation and published queries."""

import numpy as np
import pytest

from repro import SSDM, MemoryArrayStore, URI
from repro.apps import bistab


@pytest.fixture(scope="module")
def populated():
    ssdm = SSDM(
        array_store=MemoryArrayStore(chunk_bytes=1024),
        externalize_threshold=64,
    )
    bistab.generate_dataset(ssdm, tasks=8, realizations=2, samples=128)
    return ssdm


class TestSimulators:
    def test_langevin_deterministic(self):
        a = bistab.simulate_trajectory_langevin(25, 0.8, 60, 3, seed=5)
        b = bistab.simulate_trajectory_langevin(25, 0.8, 60, 3, seed=5)
        assert np.array_equal(a, b)

    def test_langevin_seed_sensitivity(self):
        a = bistab.simulate_trajectory_langevin(25, 0.8, 60, 3, seed=5)
        b = bistab.simulate_trajectory_langevin(25, 0.8, 60, 3, seed=6)
        assert not np.array_equal(a, b)

    def test_langevin_shape_and_positivity(self):
        t = bistab.simulate_trajectory_langevin(
            25, 0.8, 60, 3, samples=100
        )
        assert t.shape == (100,)
        assert (t >= 0).all()

    def test_ssa_produces_trajectory(self):
        t = bistab.simulate_trajectory(
            25, 0.8, 60, 3, samples=32, max_events=5000, seed=1
        )
        assert t.shape == (32,)
        assert (t >= 0).all()

    def test_bistability_across_realizations(self):
        # with enough realizations the final levels split into two bands
        finals = [
            bistab.simulate_trajectory_langevin(
                25, 0.8, 60, 3, seed=seed
            )[-1]
            for seed in range(30)
        ]
        spread = max(finals) - min(finals)
        assert spread > 10, "expected well separation across realizations"


class TestDataset:
    def test_triple_count(self, populated):
        # 8 tasks x 2 realizations x 7 triples + experiment node triples
        graph = populated.graph
        assert graph.count(None, bistab.BISTAB.result, None) == 16
        assert graph.count(None, bistab.BISTAB.task, None) == 16

    def test_trajectories_externalized(self, populated):
        from repro.arrays import ArrayProxy
        values = list(populated.graph.values(None, bistab.BISTAB.result))
        assert all(isinstance(v, ArrayProxy) for v in values)
        assert all(v.shape == (128,) for v in values)

    def test_parameters_shared_within_case(self, populated):
        r = populated.execute("""
            PREFIX bistab: <http://udbl.uu.se/bistab#>
            SELECT (COUNT(DISTINCT ?k1) AS ?cases)
            WHERE { ?t bistab:k_1 ?k1 }""")
        assert r.rows == [(8,)]


class TestQueries:
    def test_q1_parameter_search(self, populated):
        results = bistab.run_queries(populated)
        r = results["Q1"]
        assert r.columns == ["task", "k1", "k4"]
        assert all(20 <= row[1] <= 30 for row in r.rows)
        # sorted by k1
        k1s = [row[1] for row in r.rows]
        assert k1s == sorted(k1s)

    def test_q2_trajectory_window(self, populated):
        r = populated.execute("""
            PREFIX bistab: <http://udbl.uu.se/bistab#>
            SELECT ?task ?r[97:128]
            WHERE { ?task a bistab:Task ; bistab:result ?r } LIMIT 3""")
        from repro.arrays import ArrayProxy
        for task, window in r.rows:
            resolved = window.resolve() if isinstance(
                window, ArrayProxy) else window
            assert resolved.shape == (32,)

    def test_q3_aggregate_filter_consistent(self, populated):
        r = populated.execute("""
            PREFIX bistab: <http://udbl.uu.se/bistab#>
            SELECT ?task (array_avg(?r[97:128]) AS ?tail)
            WHERE { ?task a bistab:Task ; bistab:result ?r .
                FILTER (array_avg(?r[97:128])
                        > array_avg(?r[1:16]) + 5) }""")
        # cross-check each hit manually
        for task, tail in r.rows:
            check = populated.execute("""
                PREFIX bistab: <http://udbl.uu.se/bistab#>
                SELECT (array_avg(?r[1:16]) AS ?head)
                WHERE { <%s> bistab:result ?r }""" % task.value)
            head = check.rows[0][0]
            assert tail > head + 5

    def test_q4_grouping(self, populated):
        results = bistab.run_queries(populated)
        r = results["Q4"]
        assert r.columns == ["real", "avgLevel", "n"]
        assert [row[0] for row in r.rows] == [1, 2]
        assert all(row[2] == 8 for row in r.rows)

    def test_queries_have_descriptions(self):
        for qid, description, text in bistab.QUERIES:
            assert qid.startswith("Q")
            assert len(description) > 10
            assert "SELECT" in text
