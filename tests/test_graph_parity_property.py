"""Property: SqlTripleGraph behaves exactly like the in-memory Graph.

The same random sequence of add/remove operations and pattern queries
must give identical observable state on both implementations — the
contract that lets the engine run unchanged over either store.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, URI
from repro.storage import SqlTripleGraph

operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 3),               # subject
        st.integers(0, 2),               # predicate
        st.one_of(
            st.integers(0, 3),           # numeric literal
            st.sampled_from(["x", "y"]),
        ),
    ),
    max_size=30,
)


def term(o):
    return Literal(o)


def subject(i):
    return URI("http://e/s%d" % i)


def predicate(i):
    return URI("http://e/p%d" % i)


@given(operations)
@settings(max_examples=60, deadline=None)
def test_same_observable_state(ops):
    memory = Graph()
    relational = SqlTripleGraph()
    for action, s, p, o in ops:
        triple = (subject(s), predicate(p), term(o))
        if action == "add":
            memory.add(*triple)
            relational.add(*triple)
        else:
            assert memory.remove(*triple) == relational.remove(*triple)
    assert len(memory) == len(relational)
    memory_set = {
        (t.subject, t.property, t.value) for t in memory.triples()
    }
    relational_set = {
        (t.subject, t.property, t.value) for t in relational.triples()
    }
    assert memory_set == relational_set
    # pattern queries agree on every bound combination
    for s in range(4):
        assert (
            {(t.property, t.value) for t in memory.triples(subject(s))}
            == {(t.property, t.value)
                for t in relational.triples(subject(s))}
        )
    for p in range(3):
        assert memory.statistics.property_count(predicate(p)) == \
            relational.statistics.property_count(predicate(p))
        assert memory.statistics.distinct_subjects(predicate(p)) == \
            relational.statistics.distinct_subjects(predicate(p))
    relational.close()
