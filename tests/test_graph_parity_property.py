"""Property: every triple-store implementation is observably identical.

The same random sequence of add/remove operations and pattern queries
must give identical observable state on all implementations — the
contract that lets the engine run unchanged over any store:

- ``SqlTripleGraph`` (relational back-end) versus the in-memory graph;
- the dictionary-encoded, permutation-indexed :class:`Graph` versus the
  legacy :class:`HashIndexGraph` it replaced;
- the engine's ID-space BGP fast path versus the per-row interpreter,
  over the same graphs and queries.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SSDM
from repro.engine import idjoin
from repro.rdf import Graph, HashIndexGraph, Literal, URI
from repro.storage import SqlTripleGraph

operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 3),               # subject
        st.integers(0, 2),               # predicate
        st.one_of(
            st.integers(0, 3),           # numeric literal
            st.sampled_from(["x", "y"]),
        ),
    ),
    max_size=30,
)


def term(o):
    return Literal(o)


def subject(i):
    return URI("http://e/s%d" % i)


def predicate(i):
    return URI("http://e/p%d" % i)


@given(operations)
@settings(max_examples=60, deadline=None)
def test_same_observable_state(ops):
    memory = Graph()
    relational = SqlTripleGraph()
    for action, s, p, o in ops:
        triple = (subject(s), predicate(p), term(o))
        if action == "add":
            memory.add(*triple)
            relational.add(*triple)
        else:
            assert memory.remove(*triple) == relational.remove(*triple)
    assert len(memory) == len(relational)
    memory_set = {
        (t.subject, t.property, t.value) for t in memory.triples()
    }
    relational_set = {
        (t.subject, t.property, t.value) for t in relational.triples()
    }
    assert memory_set == relational_set
    # pattern queries agree on every bound combination
    for s in range(4):
        assert (
            {(t.property, t.value) for t in memory.triples(subject(s))}
            == {(t.property, t.value)
                for t in relational.triples(subject(s))}
        )
    for p in range(3):
        assert memory.statistics.property_count(predicate(p)) == \
            relational.statistics.property_count(predicate(p))
        assert memory.statistics.distinct_subjects(predicate(p)) == \
            relational.statistics.distinct_subjects(predicate(p))
    relational.close()


# -- ID-space graph vs legacy hash-index graph ---------------------------------------


def all_terms():
    return (
        [subject(i) for i in range(4)]
        + [predicate(i) for i in range(3)]
        + [term(o) for o in (0, 1, 2, 3, "x", "y")]
    )


@given(operations)
@settings(max_examples=80, deadline=None)
def test_id_graph_matches_hash_index_graph(ops):
    """Interleaved add/remove: the sorted-permutation-index graph and
    the legacy hash-index graph expose identical observable state —
    membership, every bound-combination pattern scan, exact pattern
    counts, and the statistics the cost model reads."""
    indexed = Graph()
    legacy = HashIndexGraph()
    for action, s, p, o in ops:
        triple = (subject(s), predicate(p), term(o))
        if action == "add":
            indexed.add(*triple)
            legacy.add(*triple)
        else:
            assert indexed.remove(*triple) == legacy.remove(*triple)
    assert len(indexed) == len(legacy)
    subjects = [None] + [subject(i) for i in range(4)]
    predicates = [None] + [predicate(i) for i in range(3)]
    values = [None, term(0), term("x")]
    for s in subjects:
        for p in predicates:
            for v in values:
                got = {
                    (t.subject, t.property, t.value)
                    for t in indexed.triples(s, p, v)
                }
                want = {
                    (t.subject, t.property, t.value)
                    for t in legacy.triples(s, p, v)
                }
                assert got == want, (s, p, v)
                assert indexed.count(s, p, v) == legacy.count(s, p, v)
                assert indexed.pattern_count(s, p, v) == len(want)
    for p in range(3):
        prop = predicate(p)
        for stat in ("property_count", "distinct_subjects",
                     "distinct_values", "fanout", "fanin"):
            assert getattr(indexed.statistics, stat)(prop) == \
                getattr(legacy.statistics, stat)(prop), (stat, prop)
    assert indexed.statistics.triple_count == \
        legacy.statistics.triple_count
    assert indexed.statistics.distinct_subjects() == \
        legacy.statistics.distinct_subjects()


# -- engine fast path vs per-row interpreter -----------------------------------------


PARITY_QUERIES = [
    # chain join
    "SELECT ?a ?b ?c WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c }",
    # star with projection subset
    "SELECT ?v WHERE { ?s ex:p0 ?v . ?s ex:p1 ?w }",
    # ground components and a shared subject
    "SELECT ?s WHERE { ?s ex:p0 1 . ?s ex:p1 ?x }",
    # repeated variable inside one pattern (diagonal selection)
    "SELECT ?x WHERE { ?x ex:p2 ?x }",
    # cartesian of two disconnected patterns
    "SELECT ?a ?b WHERE { ?a ex:p0 0 . ?b ex:p1 1 }",
    # unbound predicate + DISTINCT keeps the full-width decode
    "SELECT DISTINCT ?p WHERE { ex:s0 ?p ?o }",
]


@given(operations)
@settings(max_examples=40, deadline=None)
def test_engine_fast_path_matches_interpreter(ops):
    """The ID-space BGP matcher and the per-row interpreter return the
    same multiset of solutions for the same graph and query."""
    ssdm = SSDM()
    ssdm.prefix("ex", "http://e/")
    graph = ssdm.graph
    # self-loop triples make the repeated-variable query non-trivial
    graph.add(subject(0), predicate(2), subject(0))
    for action, s, p, o in ops:
        triple = (subject(s), predicate(p), term(o))
        if action == "add":
            graph.add(*triple)
        else:
            graph.remove(*triple)
    for query in PARITY_QUERIES:
        before = idjoin.counters["solve"]
        # terms have no ordering; compare as sorted repr multisets
        fast = sorted(repr(row) for row in ssdm.execute(query).rows)
        assert idjoin.counters["solve"] > before, \
            "fast path did not run for %r" % query
        idjoin.set_enabled(False)
        try:
            slow = sorted(
                repr(row) for row in ssdm.execute(query).rows
            )
        finally:
            idjoin.set_enabled(True)
        assert fast == slow, query
