"""Turtle serialization and its round trip through the loader."""

import pytest

from repro import SSDM, Graph, URI, BlankNode, Literal, NumericArray
from repro.rdf.namespace import FOAF, RDF
from repro.rdf.serializer import serialize_turtle


@pytest.fixture
def graph():
    g = Graph()
    alice = URI("http://example.org/alice")
    g.add(alice, RDF.type, FOAF.Person)
    g.add(alice, FOAF.name, Literal("Alice"))
    g.add(alice, FOAF.age, Literal(30))
    g.add(alice, FOAF.nick, Literal("Al", lang="en"))
    return g


class TestSerialization:
    def test_prefixes_abbreviate(self, graph):
        text = graph.to_turtle()
        assert "foaf:name" in text
        assert "@prefix foaf:" in text

    def test_a_shorthand(self, graph):
        text = graph.to_turtle()
        assert " a foaf:Person" in text

    def test_unused_prefixes_omitted(self, graph):
        text = graph.to_turtle()
        assert "@prefix qb:" not in text

    def test_custom_prefix(self, graph):
        graph.add(URI("http://example.org/alice"),
                  URI("http://example.org/p"), Literal(1))
        text = graph.to_turtle(prefixes={"ex": "http://example.org/"})
        assert "ex:alice" in text

    def test_subject_grouping(self, graph):
        text = graph.to_turtle()
        # one subject block: exactly one non-prefix statement terminator
        statements = [
            line for line in text.splitlines()
            if line.rstrip().endswith(" .")
            and not line.startswith("@prefix")
        ]
        assert len(statements) == 1

    def test_language_tag_kept(self, graph):
        assert '"Al"@en' in graph.to_turtle()

    def test_array_as_collection(self):
        g = Graph()
        g.add(URI("http://e/m"), URI("http://e/val"),
              NumericArray([[1, 2], [3, 4]]))
        assert "((1 2) (3 4))" in g.to_turtle()

    def test_empty_graph(self):
        assert Graph().to_turtle() == ""

    def test_blank_nodes_labelled(self):
        g = Graph()
        g.add(BlankNode("x"), URI("http://e/p"), Literal(1))
        assert "_:x" in g.to_turtle()


class TestRoundTrip:
    def test_roundtrip_plain(self, graph):
        text = graph.to_turtle()
        ssdm = SSDM()
        ssdm.load_turtle_text(text)
        assert len(ssdm.graph) == len(graph)
        for triple in graph.triples():
            assert triple in ssdm.graph

    def test_roundtrip_arrays(self):
        g = Graph()
        g.add(URI("http://e/m"), URI("http://e/val"),
              NumericArray([[1.5, 2.5], [3.5, 4.5]]))
        ssdm = SSDM()
        ssdm.load_turtle_text(g.to_turtle())
        value = ssdm.graph.value(URI("http://e/m"), URI("http://e/val"))
        assert value == NumericArray([[1.5, 2.5], [3.5, 4.5]])

    def test_roundtrip_proxy_resolves(self, external_ssdm):
        external_ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:m ex:val "
            "(1 2 3 4 5 6 7 8 9 10) ."
        )
        text = external_ssdm.graph.to_turtle()
        assert "(1 2 3 4 5 6 7 8 9 10)" in text

    def test_construct_result_serializable(self, foaf):
        g = foaf.execute("""PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            CONSTRUCT { ?p foaf:nick ?n } WHERE { ?p foaf:name ?n }""")
        text = g.to_turtle()
        assert "foaf:nick" in text
