"""Parser: AST shapes for queries, patterns, expressions, and updates."""

import pytest

from repro.arrays import NumericArray
from repro.exceptions import ParseError
from repro.rdf import Literal, URI, RDF
from repro.sparql import ast, parse_query

EX = "PREFIX ex: <http://example.org/>\n"


class TestSelectClause:
    def test_star(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert q.projection == "*"

    def test_plain_variables(self):
        q = parse_query("SELECT ?a ?b WHERE { ?a ?p ?b }")
        assert [v.name for v, alias in q.projection] == ["a", "b"]

    def test_expression_with_alias(self):
        q = parse_query("SELECT (?a + 1 AS ?b) WHERE { ?a ?p ?o }")
        expr, alias = q.projection[0]
        assert isinstance(expr, ast.BinaryOp)
        assert alias.name == "b"

    def test_bare_array_subscript_projection(self):
        q = parse_query("SELECT ?a[2,1] WHERE { ?s ?p ?a }")
        expr, alias = q.projection[0]
        assert isinstance(expr, ast.ArraySubscript)
        assert alias is None

    def test_distinct_flag(self):
        q = parse_query("SELECT DISTINCT ?a WHERE { ?a ?p ?o }")
        assert q.distinct

    def test_empty_select_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT WHERE { ?s ?p ?o }")

    def test_missing_as_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT (?a + 1) WHERE { ?a ?p ?o }")


class TestPrologue:
    def test_prefix_resolution(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ex:p 1 }")
        pattern = q.where.elements[0]
        assert pattern.predicate == URI("http://example.org/p")

    def test_default_prefix(self):
        q = parse_query(
            "PREFIX : <http://d/> SELECT ?s WHERE { ?s :p 1 }"
        )
        assert q.where.elements[0].predicate == URI("http://d/p")

    def test_well_known_prefixes_available(self):
        q = parse_query("SELECT ?s WHERE { ?s rdf:type ?t }")
        assert q.where.elements[0].predicate == RDF.type

    def test_undefined_prefix_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?s WHERE { ?s nope:p 1 }")

    def test_base_resolution(self):
        q = parse_query(
            "BASE <http://base/> SELECT ?s WHERE { ?s <p> 1 }"
        )
        assert q.where.elements[0].predicate == URI("http://base/p")


class TestTriplesBlocks:
    def test_predicate_object_lists(self):
        q = parse_query(
            EX + "SELECT ?s WHERE { ?s ex:a 1 ; ex:b 2 , 3 }"
        )
        patterns = q.where.elements
        assert len(patterns) == 3
        assert all(p.subject == ast.Var("s") for p in patterns)

    def test_a_keyword(self):
        q = parse_query("SELECT ?s WHERE { ?s a ?t }")
        assert q.where.elements[0].predicate == RDF.type

    def test_blank_node_property_list(self):
        q = parse_query(
            EX + 'SELECT ?n WHERE { [] ex:name "A" ; ex:knows '
            '[ ex:name ?n ] }'
        )
        # anonymous subjects become internal variables
        names = {p.subject.name for p in q.where.elements
                 if isinstance(p.subject, ast.Var)}
        assert any(name.startswith("_anon") for name in names)

    def test_numeric_collection_becomes_array(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ex:val ((1 2) (3 4)) }")
        value = q.where.elements[0].value
        assert isinstance(value, NumericArray)
        assert value.shape == (2, 2)

    def test_mixed_collection_becomes_list_pattern(self):
        q = parse_query(EX + 'SELECT ?s WHERE { ?s ex:val (1 "x") }')
        predicates = {p.predicate for p in q.where.elements
                      if isinstance(p, ast.TriplePattern)}
        assert RDF.first in predicates
        assert RDF.rest in predicates

    def test_literal_forms(self):
        q = parse_query(
            'SELECT ?s WHERE { ?s ?p "x"@en . ?s ?q '
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer> . '
            "?s ?r true . ?s ?t -2.5 }"
        )
        values = [p.value for p in q.where.elements]
        assert values[0] == Literal("x", lang="en")
        assert values[1] == Literal(5)
        assert values[2] == Literal(True)
        assert values[3] == Literal(-2.5)


class TestGraphPatterns:
    def test_optional(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o OPTIONAL { ?o ?q ?r } }")
        assert isinstance(q.where.elements[1], ast.OptionalPattern)

    def test_union_chain(self):
        q = parse_query(
            "SELECT ?s WHERE { { ?s ?p 1 } UNION { ?s ?p 2 } "
            "UNION { ?s ?p 3 } }"
        )
        union = q.where.elements[0]
        assert isinstance(union, ast.UnionPattern)
        assert len(union.alternatives) == 3

    def test_minus(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o MINUS { ?s ?q 1 } }")
        assert isinstance(q.where.elements[1], ast.MinusPattern)

    def test_graph_with_uri(self):
        q = parse_query(
            EX + "SELECT ?s WHERE { GRAPH ex:g { ?s ?p ?o } }"
        )
        scope = q.where.elements[0]
        assert isinstance(scope, ast.GraphGraphPattern)
        assert scope.graph == URI("http://example.org/g")

    def test_graph_with_variable(self):
        q = parse_query("SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } }")
        assert q.where.elements[0].graph == ast.Var("g")

    def test_bind(self):
        q = parse_query("SELECT ?b WHERE { ?s ?p ?a BIND(?a * 2 AS ?b) }")
        bind = q.where.elements[1]
        assert isinstance(bind, ast.BindClause)
        assert bind.var.name == "b"

    def test_values_single_var(self):
        q = parse_query("SELECT ?v WHERE { VALUES ?v { 1 2 3 } }")
        clause = q.where.elements[0]
        assert len(clause.rows) == 3

    def test_values_multi_var_with_undef(self):
        q = parse_query(
            "SELECT ?a WHERE { VALUES (?a ?b) { (1 2) (UNDEF 4) } }"
        )
        clause = q.where.elements[0]
        assert clause.rows[1][0] is None

    def test_values_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?a WHERE { VALUES (?a ?b) { (1) } }")

    def test_subselect(self):
        q = parse_query(
            "SELECT ?x WHERE { { SELECT (MAX(?v) AS ?x) "
            "WHERE { ?s ?p ?v } } }"
        )
        inner = q.where.elements[0]
        if isinstance(inner, ast.GroupPattern):
            inner = inner.elements[0]
        assert isinstance(inner, ast.SubSelect)

    def test_nested_group(self):
        q = parse_query("SELECT ?s WHERE { { ?s ?p ?o . ?o ?q ?r } }")
        assert isinstance(q.where.elements[0], ast.GroupPattern)


class TestPropertyPaths:
    def test_plain_uri_not_wrapped(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ex:p ?o }")
        assert isinstance(q.where.elements[0].predicate, URI)

    def test_sequence(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ex:p/ex:q ?o }")
        path = q.where.elements[0].predicate
        assert isinstance(path, ast.PathSequence)
        assert len(path.parts) == 2

    def test_alternative(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ex:p|ex:q ?o }")
        assert isinstance(q.where.elements[0].predicate,
                          ast.PathAlternative)

    def test_inverse(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s ^ex:p ?o }")
        assert isinstance(q.where.elements[0].predicate, ast.PathInverse)

    def test_star_plus_question(self):
        for mod in "*+?":
            q = parse_query(EX + "SELECT ?s WHERE { ?s ex:p%s ?o }" % mod)
            path = q.where.elements[0].predicate
            assert isinstance(path, ast.PathMod)
            assert path.modifier == mod

    def test_grouped_path(self):
        q = parse_query(
            EX + "SELECT ?s WHERE { ?s (ex:p|^ex:q)+/ex:r ?o }"
        )
        path = q.where.elements[0].predicate
        assert isinstance(path, ast.PathSequence)
        assert isinstance(path.parts[0], ast.PathMod)

    def test_negated_property_set(self):
        q = parse_query(EX + "SELECT ?s WHERE { ?s !(ex:p|^ex:q) ?o }")
        path = q.where.elements[0].predicate
        assert isinstance(path, ast.PathNegated)
        assert len(path.forward) == 1
        assert len(path.inverse) == 1


class TestExpressions:
    def parse_filter(self, text):
        q = parse_query("SELECT ?x WHERE { ?x ?p ?v FILTER(%s) }" % text)
        return q.where.elements[1].expr

    def test_precedence_or_and(self):
        expr = self.parse_filter("?a || ?b && ?c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_precedence_arith_vs_compare(self):
        expr = self.parse_filter("?a + 1 < ?b * 2")
        assert expr.op == "<"
        assert expr.left.op == "+"
        assert expr.right.op == "*"

    def test_unary_not(self):
        expr = self.parse_filter("!BOUND(?v)")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "!"

    def test_in_expression(self):
        expr = self.parse_filter("?v IN (1, 2, 3)")
        assert isinstance(expr, ast.InExpr) and not expr.negated

    def test_not_in(self):
        expr = self.parse_filter("?v NOT IN (1)")
        assert expr.negated

    def test_exists(self):
        expr = self.parse_filter("EXISTS { ?x ?q 1 }")
        assert isinstance(expr, ast.ExistsExpr) and not expr.negated

    def test_not_exists(self):
        expr = self.parse_filter("NOT EXISTS { ?x ?q 1 }")
        assert expr.negated

    def test_builtin_call(self):
        expr = self.parse_filter('REGEX(?v, "^a", "i")')
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "REGEX"
        assert len(expr.args) == 3

    def test_unknown_bare_name_rejected(self):
        with pytest.raises(ParseError):
            self.parse_filter("frobnicate(?v)")

    def test_uri_function_call(self):
        expr = self.parse_filter("<http://f>(?v, 2)")
        assert expr.name == URI("http://f")

    def test_closure(self):
        expr = self.parse_filter("array_sum(array_map(FN(?x) ?x+1, ?v))")
        closure = expr.args[0].args[0]
        assert isinstance(closure, ast.Closure)
        assert [p.name for p in closure.params] == ["x"]

    def test_closure_multiple_params(self):
        q = parse_query(
            "SELECT (array_map(FN(?x ?y) ?x*?y, ?a, ?b) AS ?c) "
            "WHERE { ?s ?p ?a ; ?q ?b }"
        )
        closure = q.projection[0][0].args[0]
        assert len(closure.params) == 2


class TestArraySubscripts:
    def subscript(self, text):
        q = parse_query("SELECT ?x WHERE { ?s ?p ?a FILTER(?a%s > 0) }"
                        % text)
        return q.where.elements[1].expr.left

    def test_single_indexes(self):
        node = self.subscript("[2,3]")
        assert isinstance(node, ast.ArraySubscript)
        assert len(node.subscripts) == 2

    def test_range(self):
        node = self.subscript("[1:5]")
        sub = node.subscripts[0]
        assert isinstance(sub, ast.RangeSubscript)
        assert sub.stride is None

    def test_range_with_stride(self):
        node = self.subscript("[1:2:9]")
        sub = node.subscripts[0]
        assert sub.lo is not None and sub.stride is not None \
            and sub.hi is not None

    def test_open_ranges(self):
        node = self.subscript("[:,3:]")
        whole, from3 = node.subscripts
        assert whole.lo is None and whole.hi is None
        assert from3.lo is not None and from3.hi is None

    def test_expression_subscript(self):
        node = self.subscript("[?i + 1]")
        assert isinstance(node.subscripts[0], ast.BinaryOp)

    def test_chained_subscripts(self):
        node = self.subscript("[1][2]")
        assert isinstance(node.base, ast.ArraySubscript)


class TestSolutionModifiers:
    def test_group_by_having(self):
        q = parse_query(
            "SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ?p ?b } "
            "GROUP BY ?a HAVING (COUNT(?b) > 2)"
        )
        assert len(q.modifiers.group_by) == 1
        assert len(q.modifiers.having) == 1

    def test_order_by_mixed(self):
        q = parse_query(
            "SELECT ?a WHERE { ?a ?p ?b } ORDER BY DESC(?b) ?a"
        )
        (expr1, asc1), (expr2, asc2) = q.modifiers.order_by
        assert not asc1 and asc2

    def test_limit_offset(self):
        q = parse_query("SELECT ?a WHERE { ?a ?p ?b } LIMIT 5 OFFSET 2")
        assert q.modifiers.limit == 5
        assert q.modifiers.offset == 2

    def test_aggregates(self):
        q = parse_query(
            "SELECT (COUNT(DISTINCT ?b) AS ?n) "
            '(GROUP_CONCAT(?b; SEPARATOR=",") AS ?all) '
            "WHERE { ?a ?p ?b }"
        )
        count = q.projection[0][0]
        concat = q.projection[1][0]
        assert count.distinct
        assert concat.separator == ","

    def test_count_star(self):
        q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        assert q.projection[0][0].expr is None


class TestOtherQueryForms:
    def test_ask(self):
        q = parse_query("ASK { ?s ?p ?o }")
        assert isinstance(q, ast.AskQuery)

    def test_construct(self):
        q = parse_query(
            EX + "CONSTRUCT { ?s ex:q ?o } WHERE { ?s ex:p ?o }"
        )
        assert isinstance(q, ast.ConstructQuery)
        assert len(q.template) == 1

    def test_describe(self):
        q = parse_query(EX + "DESCRIBE ex:thing")
        assert isinstance(q, ast.DescribeQuery)

    def test_describe_with_where(self):
        q = parse_query(EX + "DESCRIBE ?s WHERE { ?s ex:p 1 }")
        assert q.where is not None

    def test_from_clauses(self):
        q = parse_query(
            EX + "SELECT ?s FROM ex:g1 FROM NAMED ex:g2 WHERE { ?s ?p ?o }"
        )
        assert q.from_graphs == [URI("http://example.org/g1")]
        assert q.from_named == [URI("http://example.org/g2")]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("ASK { ?s ?p ?o } garbage")


class TestFunctionDefinitions:
    def test_expression_body(self):
        q = parse_query(EX + "DEFINE FUNCTION ex:f(?x ?y) AS ?x + ?y")
        assert isinstance(q, ast.FunctionDefinition)
        assert [p.name for p in q.params] == ["x", "y"]
        assert isinstance(q.body, ast.BinaryOp)

    def test_query_body(self):
        q = parse_query(
            EX + "DEFINE FUNCTION ex:f(?s) AS SELECT ?v "
            "WHERE { ?s ex:p ?v }"
        )
        assert isinstance(q.body, ast.SelectQuery)

    def test_zero_params(self):
        q = parse_query(EX + "DEFINE FUNCTION ex:f() AS 42")
        assert q.params == []


class TestUpdates:
    def test_insert_data(self):
        q = parse_query(EX + "INSERT DATA { ex:s ex:p 1 . ex:s ex:q 2 }")
        assert isinstance(q, ast.InsertData)
        assert len(q.triples) == 2

    def test_insert_data_array(self):
        q = parse_query(EX + "INSERT DATA { ex:s ex:p ((1 2)(3 4)) }")
        assert isinstance(q.triples[0].value, NumericArray)

    def test_delete_data(self):
        q = parse_query(EX + "DELETE DATA { ex:s ex:p 1 }")
        assert isinstance(q, ast.DeleteData)

    def test_modify(self):
        q = parse_query(
            EX + "DELETE { ?s ex:p ?o } INSERT { ?s ex:q ?o } "
            "WHERE { ?s ex:p ?o }"
        )
        assert isinstance(q, ast.Modify)
        assert len(q.delete_template) == 1
        assert len(q.insert_template) == 1

    def test_delete_where_shorthand(self):
        q = parse_query(EX + "DELETE WHERE { ?s ex:p ?o }")
        assert isinstance(q, ast.Modify)
        assert len(q.delete_template) == 1
        assert q.insert_template == []

    def test_insert_where(self):
        q = parse_query(
            EX + "INSERT { ?s ex:q ?o } WHERE { ?s ex:p ?o }"
        )
        assert q.delete_template == []

    def test_clear_graph(self):
        q = parse_query(EX + "CLEAR GRAPH ex:g")
        assert isinstance(q, ast.ClearGraph)
        assert q.graph == URI("http://example.org/g")

    def test_clear_all(self):
        q = parse_query("CLEAR ALL")
        assert q.graph == "ALL"

    def test_insert_data_graph(self):
        q = parse_query(
            EX + "INSERT DATA { GRAPH ex:g { ex:s ex:p 1 } }"
        )
        assert q.graph == URI("http://example.org/g")
