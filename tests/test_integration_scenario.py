"""End-to-end integration scenario exercising subsystem interplay:

load (consolidating) -> externalize -> mediate relational data ->
define functions -> query across everything -> update -> serialize ->
reload -> serve over TCP.
"""

import sqlite3

import numpy as np
import pytest

from repro import SSDM, NumericArray, SqlArrayStore, URI
from repro.client import SSDMClient, SSDMServer
from repro.loaders.rdbview import load_relational


@pytest.fixture
def scenario(tmp_path):
    store = SqlArrayStore(chunk_bytes=512)
    ssdm = SSDM(array_store=store, externalize_threshold=32)

    # 1. native RDF-with-Arrays data (consolidated while loading)
    ssdm.load_turtle_text("""
        @prefix lab: <http://lab.example.org/> .
        lab:exp1 a lab:Experiment ; lab:operator "ann" ;
            lab:series (%s) .
        lab:exp2 a lab:Experiment ; lab:operator "bob" ;
            lab:series (%s) .
    """ % (
        " ".join(str(i) for i in range(100)),
        " ".join(str(i * i % 97) for i in range(100)),
    ))

    # 2. mediated relational catalogue
    catalogue = sqlite3.connect(":memory:")
    catalogue.executescript("""
        CREATE TABLE operator (id INTEGER PRIMARY KEY, name TEXT,
                               grade INTEGER);
        INSERT INTO operator VALUES (1, 'ann', 3), (2, 'bob', 1);
    """)
    load_relational(ssdm, catalogue, "http://hr.example.org/")

    # 3. query-level glue
    ssdm.prefix("lab", "http://lab.example.org/")
    ssdm.prefix("op", "http://hr.example.org/operator#")
    ssdm.execute("""
        DEFINE FUNCTION lab:seriesMean(?e) AS
        SELECT (array_avg(?s) AS ?m) WHERE { ?e lab:series ?s }""")
    return ssdm, store


class TestScenario:
    def test_arrays_externalized(self, scenario):
        ssdm, store = scenario
        assert store.stats.arrays_stored == 2

    def test_cross_source_join(self, scenario):
        ssdm, _ = scenario
        result = ssdm.execute("""
            SELECT ?name ?grade (lab:seriesMean(?e) AS ?mean) WHERE {
                ?e a lab:Experiment ; lab:operator ?name .
                ?o op:name ?name ; op:grade ?grade }
            ORDER BY ?name""")
        assert result.columns == ["name", "grade", "mean"]
        assert result.rows[0][0] == "ann"
        assert result.rows[0][2] == pytest.approx(49.5)

    def test_filter_on_lazy_slice(self, scenario):
        ssdm, store = scenario
        store.stats.reset()
        result = ssdm.execute("""
            SELECT ?e WHERE { ?e lab:series ?s
                FILTER(array_avg(?s[1:10]) < 10) }""")
        assert result.rows == [(URI("http://lab.example.org/exp1"),)]
        # only the needed chunks were fetched (2 arrays x few chunks)
        total = sum(
            store.meta(i).layout.chunk_count for i in store.array_ids()
        )
        assert store.stats.chunks_fetched < total

    def test_update_then_requery(self, scenario):
        ssdm, _ = scenario
        ssdm.execute("""
            PREFIX lab: <http://lab.example.org/>
            INSERT { ?e lab:meanLevel ?m } WHERE {
                ?e a lab:Experiment BIND(lab:seriesMean(?e) AS ?m) }""")
        result = ssdm.execute("""
            SELECT ?m WHERE {
                <http://lab.example.org/exp1> lab:meanLevel ?m }""")
        assert result.rows == [(49.5,)]

    def test_serialize_reload_preserves_answers(self, scenario):
        ssdm, _ = scenario
        text = ssdm.graph.to_turtle()
        fresh = SSDM()
        fresh.load_turtle_text(text)
        fresh.prefix("lab", "http://lab.example.org/")
        before = ssdm.execute(
            "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"
        ).scalar()
        after = fresh.execute(
            "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"
        ).scalar()
        assert before == after

    def test_serve_scenario_over_tcp(self, scenario):
        ssdm, _ = scenario
        server = SSDMServer(ssdm).start()
        try:
            client = SSDMClient("127.0.0.1", server.server_address[1])
            result = client.query("""
                PREFIX lab: <http://lab.example.org/>
                SELECT ?name (array_max(?s) AS ?peak) WHERE {
                    ?e lab:operator ?name ; lab:series ?s }
                ORDER BY ?name""")
            assert len(result.rows) == 2
            assert result.rows[0][1] == 99.0
            client.close()
        finally:
            server.stop()
