"""Shared fixtures: populated SSDM instances and parametrized stores."""

import pytest

from repro import SSDM, MemoryArrayStore, FileArrayStore, SqlArrayStore


FOAF_TURTLE = """
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/> .
_:a a foaf:Person ; foaf:name "Alice" ;
    foaf:knows _:b , _:d ; ex:age 30 .
_:b a foaf:Person ; foaf:name "Bob" ;
    foaf:knows _:a ; foaf:mbox "bob@example.org" ; ex:age 25 .
_:c a foaf:Person ; foaf:name "Cindy" ; foaf:knows _:b ; ex:age 30 .
_:d a foaf:Person ; foaf:name "Daniel" ; ex:email "dan@example.org" .
"""

ARRAY_TURTLE = """
@prefix ex: <http://example.org/> .
ex:m1 ex:val ((1 2) (3 4)) ; ex:label "small" .
ex:m2 ex:val ((10 20 30) (40 50 60) (70 80 90)) ; ex:label "mid" .
ex:v1 ex:val (5 10 15 20 25) ; ex:label "vector" .
"""


@pytest.fixture
def ssdm():
    return SSDM()


@pytest.fixture
def foaf(ssdm):
    ssdm.load_turtle_text(FOAF_TURTLE)
    return ssdm


@pytest.fixture
def arrays(ssdm):
    ssdm.load_turtle_text(ARRAY_TURTLE)
    return ssdm


@pytest.fixture(params=["memory", "file", "sql"])
def array_store(request, tmp_path):
    """Each ASEI back-end, with a small chunk size to force chunking."""
    if request.param == "memory":
        return MemoryArrayStore(chunk_bytes=256)
    if request.param == "file":
        return FileArrayStore(str(tmp_path / "store"), chunk_bytes=256)
    return SqlArrayStore(chunk_bytes=256)


@pytest.fixture
def external_ssdm(array_store):
    """SSDM externalizing any array above 8 elements."""
    return SSDM(array_store=array_store, externalize_threshold=8)
