"""Relational triple storage (section 6.2.1): the SqlTripleGraph."""

import numpy as np
import pytest

from repro import SSDM, ArrayProxy, Literal, NumericArray, URI, BlankNode
from repro.storage import SqlTripleGraph

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture
def graph():
    return SqlTripleGraph(externalize_threshold=8)


def e(name):
    return URI("http://e/" + name)


class TestBasicStorage:
    def test_add_and_len(self, graph):
        graph.add(e("a"), e("p"), Literal(1))
        graph.add(e("a"), e("q"), Literal("text"))
        assert len(graph) == 2

    def test_duplicate_ignored(self, graph):
        graph.add(e("a"), e("p"), Literal(1))
        graph.add(e("a"), e("p"), Literal(1))
        assert len(graph) == 1

    def test_remove(self, graph):
        graph.add(e("a"), e("p"), Literal(1))
        assert graph.remove(e("a"), e("p"), Literal(1))
        assert not graph.remove(e("a"), e("p"), Literal(1))
        assert len(graph) == 0

    def test_contains(self, graph):
        graph.add(e("a"), e("p"), e("b"))
        assert (e("a"), e("p"), e("b")) in graph
        assert (e("a"), e("p"), e("c")) not in graph

    def test_clear(self, graph):
        graph.add(e("a"), e("p"), Literal(1))
        graph.clear()
        assert len(graph) == 0


class TestValuePartitioning:
    """Each value type must round-trip through its partition."""

    @pytest.mark.parametrize("value", [
        URI("http://e/x"),
        BlankNode("bn1"),
        Literal(42),
        Literal(-2.5),
        Literal(True),
        Literal("plain string"),
        Literal("chat", lang="fr"),
        Literal("2020-01-01",
                URI("http://www.w3.org/2001/XMLSchema#date")),
    ])
    def test_roundtrip(self, graph, value):
        graph.add(e("s"), e("p"), value)
        stored = graph.value(e("s"), e("p"))
        assert stored == value

    def test_small_array_resident(self, graph):
        array = NumericArray([[1, 2], [3, 4]])
        graph.add(e("s"), e("p"), array)
        stored = graph.value(e("s"), e("p"))
        assert isinstance(stored, NumericArray)
        assert stored == array

    def test_large_array_externalized_to_chunks(self, graph):
        array = NumericArray(np.arange(100, dtype=np.float64))
        graph.add(e("s"), e("p"), array)
        stored = graph.value(e("s"), e("p"))
        assert isinstance(stored, ArrayProxy)
        assert stored.resolve() == array

    def test_numeric_lookup_int_float_distinct_lexical(self, graph):
        graph.add(e("s"), e("p"), Literal(1))
        # exact-term lookup distinguishes 1 from 1.0 (different lexical)
        assert list(graph.triples(None, None, Literal(1)))
        assert not list(graph.triples(None, None, Literal(1.0)))


class TestPatternMatching:
    @pytest.fixture
    def filled(self, graph):
        graph.add(e("a"), e("knows"), e("b"))
        graph.add(e("a"), e("knows"), e("c"))
        graph.add(e("b"), e("knows"), e("c"))
        graph.add(e("a"), e("age"), Literal(30))
        return graph

    def test_by_subject(self, filled):
        assert len(list(filled.triples(e("a")))) == 3

    def test_by_predicate(self, filled):
        assert len(list(filled.triples(None, e("knows")))) == 3

    def test_by_value(self, filled):
        assert len(list(filled.triples(None, None, e("c")))) == 2

    def test_fully_bound(self, filled):
        assert len(list(filled.triples(e("a"), e("knows"), e("b")))) == 1

    def test_accessors(self, filled):
        assert set(filled.subjects(e("knows"))) == {e("a"), e("b")}
        assert filled.value(e("a"), e("age")) == Literal(30)
        assert set(filled.properties(e("a"))) == {e("knows"), e("age")}

    def test_statistics(self, filled):
        stats = filled.statistics
        assert stats.triple_count == 4
        assert stats.property_count(e("knows")) == 3
        assert stats.distinct_subjects(e("knows")) == 2
        assert stats.fanout(e("knows")) == pytest.approx(1.5)

    def test_numeric_range_delegation(self, filled):
        filled.add(e("b"), e("age"), Literal(40))
        subjects = filled.numeric_range_subjects(e("age"), low=35)
        assert subjects == [e("b")]


class TestQueriesOverSqlGraph:
    @pytest.fixture
    def ssdm(self):
        instance = SSDM.with_triple_store(
            SqlTripleGraph(externalize_threshold=8)
        )
        instance.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:m ex:val ((1 2 3) (4 5 6) (7 8 9)) ; ex:label "m" .
            ex:a ex:v 10 . ex:b ex:v 20 .
        """)
        return instance

    def test_metadata_query(self, ssdm):
        r = ssdm.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v FILTER(?v > 15) }""")
        assert r.rows == [(e("b"),)]

    def test_array_query_through_sql_triples(self, ssdm):
        r = ssdm.execute(EXP + """
            SELECT ?a[2,3] (array_sum(?a) AS ?s)
            WHERE { ex:m ex:val ?a }""")
        assert r.rows == [(6, 45.0)]

    def test_arrays_externalized(self, ssdm):
        stored = ssdm.graph.value(e("m"), e("val"))
        assert isinstance(stored, ArrayProxy)

    def test_updates(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { ex:x ex:v 99 }")
        assert ssdm.execute(EXP + "ASK { ex:x ex:v 99 }") is True
        ssdm.execute(EXP + "DELETE WHERE { ex:x ex:v ?v }")
        assert ssdm.execute(EXP + "ASK { ex:x ex:v 99 }") is False

    def test_aggregation(self, ssdm):
        r = ssdm.execute(EXP +
                         "SELECT (SUM(?v) AS ?t) WHERE { ?s ex:v ?v }")
        assert r.rows == [(30,)]

    def test_optimizer_uses_sql_statistics(self, ssdm):
        text = ssdm.explain(
            EXP + "SELECT ?s WHERE { ?s ex:v ?v . ?s ex:label ?l }",
            costs=True,
        )
        assert "~" in text


class TestPersistence:
    def test_reopen_database(self, tmp_path):
        path = str(tmp_path / "graph.db")
        graph = SqlTripleGraph(path, externalize_threshold=8)
        graph.add(e("a"), e("p"), Literal(7))
        graph.add(e("a"), e("arr"),
                  NumericArray(np.arange(50, dtype=np.float64)))
        graph.close()
        reopened = SqlTripleGraph(path, externalize_threshold=8)
        assert len(reopened) == 2
        assert reopened.value(e("a"), e("p")) == Literal(7)
        proxy = reopened.value(e("a"), e("arr"))
        assert proxy.resolve().element_count == 50
