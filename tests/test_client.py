"""Client/server protocol and the workbench (Matlab-analogue) workflow."""

import numpy as np
import pytest

from repro import SSDM, URI, NumericArray
from repro.client import SSDMClient, SSDMServer, WorkbenchClient
from repro.client.server import deserialize_value, serialize_value
from repro.exceptions import SciSparqlError
from repro.rdf.term import BlankNode, Literal


class TestSerialization:
    def test_scalars_passthrough(self):
        for value in (1, 2.5, True, "x", None):
            assert deserialize_value(serialize_value(value)) == value

    def test_uri_roundtrip(self):
        uri = URI("http://e/x")
        assert deserialize_value(serialize_value(uri)) == uri

    def test_bnode_roundtrip(self):
        node = BlankNode("b9")
        assert deserialize_value(serialize_value(node)) == node

    def test_typed_literal_roundtrip(self):
        lit = Literal("raw", URI("http://e/dt"))
        assert deserialize_value(serialize_value(lit)) == lit

    def test_array_roundtrip(self):
        array = NumericArray([[1, 2], [3, 4]])
        assert deserialize_value(serialize_value(array)) == array


@pytest.fixture
def server():
    ssdm = SSDM()
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:m ex:val ((1 2) (3 4)) ; ex:n 7 .
    """)
    server = SSDMServer(ssdm).start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    client = SSDMClient("127.0.0.1", server.server_address[1])
    yield client
    client.close()


class TestClientServer:
    def test_select_over_wire(self, client):
        r = client.query(
            "PREFIX ex: <http://e/> SELECT ?n WHERE { ex:m ex:n ?n }"
        )
        assert r.rows == [(7,)]

    def test_array_ships_as_nested_lists(self, client):
        r = client.query(
            "PREFIX ex: <http://e/> SELECT ?a WHERE { ex:m ex:val ?a }"
        )
        assert r.rows[0][0] == NumericArray([[1, 2], [3, 4]])

    def test_server_side_reduction_is_smaller(self, server):
        # compare bytes: fetching the array vs its server-side sum
        port = server.server_address[1]
        c1 = SSDMClient("127.0.0.1", port)
        c1.query("PREFIX ex: <http://e/> SELECT ?a WHERE { ex:m ex:val ?a }")
        whole = c1.bytes_received
        c1.close()
        c2 = SSDMClient("127.0.0.1", port)
        c2.query("PREFIX ex: <http://e/> SELECT (array_sum(?a) AS ?s)"
                 " WHERE { ex:m ex:val ?a }")
        reduced = c2.bytes_received
        c2.close()
        assert reduced < whole

    def test_ask(self, client):
        assert client.query(
            "PREFIX ex: <http://e/> ASK { ex:m ex:n 7 }"
        ) is True

    def test_update_roundtrip(self, client):
        n = client.update(
            "PREFIX ex: <http://e/> INSERT DATA { ex:x ex:n 1 }"
        )
        assert n == 1
        r = client.query(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ex:x ex:n ?v }"
        )
        assert r.rows == [(1,)]

    def test_error_reported(self, client):
        with pytest.raises(SciSparqlError):
            client.query("THIS IS NOT SPARQL")

    def test_multiple_sequential_requests(self, client):
        for _ in range(5):
            assert client.query(
                "PREFIX ex: <http://e/> ASK { ex:m ex:n 7 }"
            ) is True


class TestWorkbench:
    @pytest.fixture
    def workbench(self, ssdm, tmp_path):
        return WorkbenchClient(ssdm, str(tmp_path / "results"))

    def test_store_creates_file_and_metadata(self, workbench, tmp_path):
        uri = workbench.store_result(
            "run1", np.ones(50), {"temperature": 300.0}
        )
        assert (tmp_path / "results" / "run1.npy").exists()
        assert workbench.metadata(uri)["temperature"] == 300.0

    def test_find_by_metadata(self, workbench):
        workbench.store_result("r1", np.ones(5), {"case": "a"})
        workbench.store_result("r2", np.ones(5), {"case": "b"})
        hits = workbench.find({"case": "b"})
        assert hits == [URI("http://udbl.uu.se/run/r2")]

    def test_find_with_numeric_filter(self, workbench):
        workbench.store_result("r1", np.ones(5), {"t": 100.0})
        workbench.store_result("r2", np.ones(5), {"t": 300.0})
        hits = workbench.find(filter_text="?m0 > 200")
        # filter_text composes with a metadata binding
        hits = workbench.find({"t": 300.0})
        assert len(hits) == 1

    def test_fetch_whole_array(self, workbench):
        data = np.arange(100, dtype=np.float64)
        uri = workbench.store_result("r", data)
        out = workbench.fetch(uri)
        assert out.to_nested_lists() == data.tolist()
        assert workbench.elements_transferred == 100

    def test_fetch_slice(self, workbench):
        data = np.arange(100, dtype=np.float64)
        uri = workbench.store_result("r", data)
        out = workbench.fetch(uri, "[11:20]")
        assert out.to_nested_lists() == data[10:20].tolist()
        assert workbench.elements_transferred == 10

    def test_reduce_transfers_one_element(self, workbench):
        data = np.arange(1000, dtype=np.float64)
        uri = workbench.store_result("r", data)
        assert workbench.reduce(uri, "avg") == pytest.approx(data.mean())
        assert workbench.elements_transferred == 1

    def test_reduce_on_slice(self, workbench):
        data = np.arange(100, dtype=np.float64)
        uri = workbench.store_result("r", data)
        assert workbench.reduce(uri, "sum", "[1:10]") == \
            pytest.approx(data[:10].sum())

    def test_unknown_reduction_rejected(self, workbench):
        uri = workbench.store_result("r", np.ones(5))
        with pytest.raises(SciSparqlError):
            workbench.reduce(uri, "median")

    def test_annotate_later(self, workbench):
        uri = workbench.store_result("r", np.ones(5))
        workbench.annotate(uri, {"quality": "good"})
        assert workbench.metadata(uri)["quality"] == "good"

    def test_2d_result(self, workbench):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        uri = workbench.store_result("grid", data)
        out = workbench.fetch(uri, "[2]")
        assert out.to_nested_lists() == data[1].tolist()
