"""Translation, rewriting, and cost-based optimization."""

import pytest

from repro import SSDM, Graph, URI, Literal
from repro.sparql import ast, parse_query
from repro.algebra import logical, translate
from repro.algebra.cost import CostModel
from repro.algebra.optimizer import optimize
from repro.algebra.rewriter import (
    fold_constants, rewrite, split_conjunction,
)
from repro.algebra.logical import (
    BGP, Extend, Filter, Group, Join, LeftJoin, Minus, OrderBy, PathScan,
    Project, Slice, Union, expression_variables, pattern_variables,
)


def plan_of(text):
    plan, _ = translate(parse_query(text))
    return plan


def find_nodes(plan, kind):
    found = []

    def walk(node):
        if isinstance(node, kind):
            found.append(node)
        for child in node.children():
            walk(child)
    walk(plan)
    return found


class TestTranslation:
    def test_simple_select(self):
        plan, columns = translate(parse_query(
            "SELECT ?s WHERE { ?s ?p ?o }"
        ))
        assert columns == ["s"]
        assert find_nodes(plan, BGP)

    def test_adjacent_triples_merge_into_one_bgp(self):
        plan = plan_of(
            "SELECT ?a WHERE { ?a ?p ?b . ?b ?q ?c . ?c ?r ?d }"
        )
        bgps = find_nodes(plan, BGP)
        assert len(bgps) == 1
        assert len(bgps[0].patterns) == 3

    def test_optional_becomes_leftjoin(self):
        plan = plan_of(
            "SELECT ?a WHERE { ?a ?p ?b OPTIONAL { ?b ?q ?c } }"
        )
        assert len(find_nodes(plan, LeftJoin)) == 1

    def test_optional_filter_becomes_condition(self):
        plan = plan_of(
            "SELECT ?a WHERE { ?a ?p ?b "
            "OPTIONAL { ?b ?q ?c FILTER(?c > ?b) } }"
        )
        left_join = find_nodes(plan, LeftJoin)[0]
        assert left_join.condition is not None

    def test_union(self):
        plan = plan_of(
            "SELECT ?a WHERE { { ?a ?p 1 } UNION { ?a ?p 2 } }"
        )
        union = find_nodes(plan, Union)[0]
        assert len(union.branches) == 2

    def test_minus(self):
        plan = plan_of("SELECT ?a WHERE { ?a ?p ?b MINUS { ?a ?q 1 } }")
        assert find_nodes(plan, Minus)

    def test_path_split_from_bgp(self):
        plan = plan_of(
            "PREFIX ex: <http://e/> "
            "SELECT ?a WHERE { ?a ex:p+ ?b . ?a ex:q ?c }"
        )
        assert len(find_nodes(plan, PathScan)) == 1
        assert len(find_nodes(plan, BGP)) == 1

    def test_group_created_for_aggregates(self):
        plan = plan_of(
            "SELECT (COUNT(?b) AS ?n) WHERE { ?a ?p ?b }"
        )
        groups = find_nodes(plan, Group)
        assert len(groups) == 1
        assert len(groups[0].aggregates) == 1

    def test_equal_aggregates_share_variable(self):
        plan = plan_of(
            "SELECT (SUM(?b) AS ?x) (SUM(?b) * 2 AS ?y) "
            "WHERE { ?a ?p ?b }"
        )
        group = find_nodes(plan, Group)[0]
        assert len(group.aggregates) == 1

    def test_modifier_order(self):
        plan = plan_of(
            "SELECT DISTINCT ?b WHERE { ?a ?p ?b } "
            "ORDER BY ?b LIMIT 3 OFFSET 1"
        )
        assert isinstance(plan, Slice)
        assert plan.limit == 3 and plan.offset == 1

    def test_projection_expression_becomes_extend(self):
        plan = plan_of("SELECT (?b + 1 AS ?c) WHERE { ?a ?p ?b }")
        extends = find_nodes(plan, Extend)
        assert any(node.var.name == "c" for node in extends)

    def test_ask_is_sliced(self):
        plan, _ = translate(parse_query("ASK { ?s ?p ?o }"))
        assert isinstance(plan, Slice)
        assert plan.limit == 1


class TestVariableAnalysis:
    def test_pattern_variables(self):
        plan = plan_of("SELECT * WHERE { ?a ?p ?b OPTIONAL { ?b ?q ?c } }")
        assert pattern_variables(plan) >= {"a", "p", "b", "q", "c"}

    def test_expression_variables(self):
        q = parse_query(
            "SELECT ?x WHERE { ?x ?p ?v FILTER(?v + ?w > aelt(?a, 1)) }"
        )
        expr = q.where.elements[1].expr
        assert expression_variables(expr) == {"v", "w", "a"}

    def test_closure_params_not_free(self):
        q = parse_query(
            "SELECT (array_map(FN(?x) ?x + ?k, ?a) AS ?b) "
            "WHERE { ?s ?p ?a }"
        )
        expr = q.projection[0][0]
        free = expression_variables(expr)
        assert "k" in free and "a" in free and "x" not in free


class TestRewriting:
    def test_constant_folding(self):
        expr = fold_constants(parse_query(
            "SELECT ?x WHERE { ?x ?p ?v FILTER(?v > 2 + 3 * 4) }"
        ).where.elements[1].expr)
        assert expr.right == ast.TermExpr(Literal(14))

    def test_folding_keeps_division_by_zero(self):
        expr = fold_constants(parse_query(
            "SELECT ?x WHERE { ?x ?p ?v FILTER(?v > 1 / 0) }"
        ).where.elements[1].expr)
        assert isinstance(expr.right, ast.BinaryOp)

    def test_split_conjunction(self):
        q = parse_query(
            "SELECT ?x WHERE { ?x ?p ?v FILTER(?v > 1 && ?v < 9 "
            "&& ?v != 5) }"
        )
        conjuncts = split_conjunction(q.where.elements[1].expr)
        assert len(conjuncts) == 3

    def test_adjacent_groups_merge_to_one_bgp(self):
        plan = plan_of(
            "PREFIX ex: <http://e/> SELECT ?a WHERE { "
            "{ ?a ex:p ?v } { ?a ex:q ?w } FILTER(?v > 1) }"
        )
        rewritten = rewrite(plan)
        assert len(find_nodes(rewritten, BGP)) == 1
        assert not find_nodes(rewritten, Join)

    def test_filter_pushed_below_leftjoin(self):
        plan = plan_of(
            "PREFIX ex: <http://e/> SELECT ?a WHERE { "
            "?a ex:p ?v OPTIONAL { ?a ex:q ?w } FILTER(?v > 1) }"
        )
        rewritten = rewrite(plan)
        left_join = find_nodes(rewritten, LeftJoin)[0]
        # the filter over only-left variables moved inside the left input
        assert isinstance(left_join.left, Filter)

    def test_filter_on_both_sides_stays(self):
        plan = plan_of(
            "PREFIX ex: <http://e/> SELECT ?a WHERE { "
            "{ ?a ex:p ?v } { ?a ex:q ?w } FILTER(?v > ?w) }"
        )
        rewritten = rewrite(plan)
        assert find_nodes(rewritten, Filter)

    def test_filter_distributes_over_union(self):
        plan = plan_of(
            "PREFIX ex: <http://e/> SELECT ?a WHERE { "
            "{ ?a ex:p ?v } UNION { ?a ex:q ?v } FILTER(?v > 1) }"
        )
        rewritten = rewrite(plan)
        union = find_nodes(rewritten, Union)[0]
        assert all(isinstance(b, Filter) for b in union.branches)

    def test_rewrite_preserves_results(self, foaf):
        # correctness check: rewritten and raw plans agree
        query = """PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?n WHERE {
                ?a foaf:knows ?b . ?b foaf:name ?n
                FILTER(?n != "Nobody") }"""
        r = foaf.execute(query)
        assert len(r.rows) >= 2


class TestCostModel:
    @pytest.fixture
    def graph(self):
        g = Graph()
        rare = URI("http://e/rare")
        common = URI("http://e/common")
        for i in range(100):
            g.add(URI("http://e/s%d" % i), common, Literal(i))
        g.add(URI("http://e/s0"), rare, Literal(0))
        return g

    def test_selective_pattern_cheaper(self, graph):
        model = CostModel(graph)
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT ?s WHERE "
            "{ ?s ex:common ?v . ?s ex:rare ?w }"
        )
        rare_pattern = q.where.elements[1]
        common_pattern = q.where.elements[0]
        assert model.pattern_cardinality(rare_pattern, set()) < \
            model.pattern_cardinality(common_pattern, set())

    def test_bound_subject_cheaper_than_unbound(self, graph):
        model = CostModel(graph)
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ?s ex:common ?v }"
        )
        pattern = q.where.elements[0]
        assert model.pattern_cardinality(pattern, {"s"}) < \
            model.pattern_cardinality(pattern, set())

    def test_greedy_order_puts_selective_first(self, graph):
        model = CostModel(graph)
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT ?s WHERE "
            "{ ?s ex:common ?v . ?s ex:rare ?w }"
        )
        ordered = model.order_patterns(q.where.elements, set())
        assert ordered[0].predicate == URI("http://e/rare")

    def test_optimize_reorders_bgp(self, graph):
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT ?s WHERE "
            "{ ?s ex:common ?v . ?s ex:rare ?w }"
        )
        plan, _ = translate(q)
        optimized = optimize(plan, graph)
        bgp = find_nodes(optimized, BGP)[0]
        assert bgp.patterns[0].predicate == URI("http://e/rare")

    def test_fully_ground_pattern_cheapest(self, graph):
        model = CostModel(graph)
        q = parse_query(
            "PREFIX ex: <http://e/> ASK { ex:s0 ex:rare 0 }"
        )
        pattern = q.where.elements[0]
        assert model.pattern_cardinality(pattern, set()) < 1.0

    def test_explain_renders(self, foaf):
        text = foaf.explain("""PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n LIMIT 1""")
        assert "BGP" in text
        # ORDER BY + LIMIT fuses into a bounded-heap TopK node
        assert "TopK" in text

    def test_explain_renders_unfused_slice(self, foaf):
        text = foaf.explain("""PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?n WHERE { ?p foaf:name ?n } LIMIT 1""")
        assert "Slice" in text

    def test_skewed_property_ordering_uses_exact_run_lengths(self):
        """Regression: pattern ordering on a skewed-property graph.

        Both patterns use the same property, whose *average* fanout
        (~45) cannot tell them apart — only the exact run length of
        each ground subject can.  The hub subject holds 90 values, the
        leaf exactly one, so the leaf-anchored pattern must run first.
        """
        g = Graph()
        prop = URI("http://e/links")
        hub = URI("http://e/hub")
        leaf = URI("http://e/leaf")
        for i in range(90):
            g.add(hub, prop, URI("http://e/t%d" % i))
        g.add(leaf, prop, URI("http://e/t0"))
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT * WHERE "
            "{ ex:hub ex:links ?a . ex:leaf ex:links ?b }"
        )
        model = CostModel(g)
        hub_pattern, leaf_pattern = q.where.elements
        assert model.pattern_cardinality(hub_pattern, set()) == 90.0
        assert model.pattern_cardinality(leaf_pattern, set()) == 1.0
        ordered = model.order_patterns(q.where.elements, set())
        assert ordered[0].subject == leaf
        assert ordered[1].subject == hub

    def test_absent_ground_pattern_cheapest_of_all(self):
        g = Graph()
        g.add(URI("http://e/s"), URI("http://e/p"), Literal(1))
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT * WHERE "
            "{ ex:s ex:p 1 . ex:s ex:p 2 }"
        )
        model = CostModel(g)
        present, absent = q.where.elements
        assert model.pattern_cardinality(absent, set()) < \
            model.pattern_cardinality(present, set()) < 1.0
