"""Query observability: traces, metrics, and the slow-query log."""

import threading

import pytest

from repro import SSDM, MemoryArrayStore
from repro import observability as obs
from repro.client import SSDMClient, SSDMServer
from repro.exceptions import SciSparqlError
from repro.observability import (
    Histogram, MetricsRegistry, QueryTrace, SlowQueryLog, Span,
)

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture(autouse=True)
def isolated_observability():
    """Fresh registry + slow-query log per test (they are process-wide)."""
    old_registry = obs.set_metrics(MetricsRegistry())
    old_slowlog = obs.set_slow_query_log(SlowQueryLog())
    yield
    obs.set_metrics(old_registry)
    obs.set_slow_query_log(old_slowlog)


class FakeClock:
    """A deterministic monotonic clock advancing only on demand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    fake = FakeClock()
    previous = obs.set_clock(fake, wall=lambda: 1000.0 + fake.now)
    yield fake
    obs.set_clock(*previous)


class TestSpan:
    def test_counters_accumulate(self):
        s = Span("x")
        s.add("rows")
        s.add("rows", 4)
        assert s.counters == {"rows": 5}

    def test_total_sums_subtree(self):
        root = Span("root")
        root.add("bytes", 1)
        child = root.child("c")
        child.add("bytes", 10)
        child.child("g").add("bytes", 100)
        assert root.total("bytes") == 111

    def test_find_depth_first(self):
        root = Span("root")
        root.child("a").child("target").add("hit")
        assert root.find("target").counters == {"hit": 1}
        assert root.find("missing") is None

    def test_child_overflow_truncates(self):
        root = Span("root")
        for i in range(obs.MAX_CHILD_SPANS + 10):
            root.child("c%d" % i)
        # the cap plus one shared "(truncated)" accumulator
        assert len(root.children) == obs.MAX_CHILD_SPANS + 1
        assert root.to_dict()["truncated_children"] == 10
        assert "truncated" in root.render()

    def test_aggregate_child_reuses_node(self):
        root = Span("root")
        first = root.aggregate_child("fetch")
        second = root.aggregate_child("fetch")
        assert first is second
        assert len(root.children) == 1


class TestQueryTrace:
    def test_finish_is_idempotent(self, clock):
        trace = QueryTrace("SELECT 1")
        clock.advance(0.5)
        trace.finish("ok")
        clock.advance(9.0)
        trace.finish("error", ValueError("late"))
        assert trace.status == "ok"
        assert trace.error is None
        assert trace.elapsed == pytest.approx(0.5)

    def test_events_record_offsets_and_cap(self, clock):
        trace = QueryTrace("q")
        clock.advance(0.25)
        trace.event("deadline_expired", budget_ms=10)
        assert trace.events == [
            {"event": "deadline_expired", "at_ms": 250.0, "budget_ms": 10}
        ]
        for _ in range(obs.MAX_EVENTS * 2):
            trace.event("noise")
        assert len(trace.events) == obs.MAX_EVENTS

    def test_operator_span_folds_reevaluations(self):
        trace = QueryTrace("q")
        node = object()
        first = trace.operator_span(node, "join", None)
        second = trace.operator_span(node, "join", None)
        assert first is second
        assert trace.root.children == [first]

    def test_to_dict_and_render(self, clock):
        trace = QueryTrace("SELECT ?s WHERE { ?s ?p ?o }")
        trace.root.child("parse").elapsed = 0.001
        clock.advance(0.01)
        trace.finish("ok")
        payload = trace.to_dict()
        assert payload["status"] == "ok"
        assert payload["elapsed_ms"] == 10.0
        assert payload["spans"]["children"][0]["name"] == "parse"
        text = trace.render()
        assert "-- trace: ok" in text
        assert "parse" in text

    def test_text_is_capped(self):
        trace = QueryTrace("x" * (obs.MAX_TEXT_CHARS * 2))
        assert len(trace.text) == obs.MAX_TEXT_CHARS


class TestAmbientSpans:
    def test_span_without_trace_is_noop(self):
        with obs.span("anything") as node:
            assert node is None

    def test_trace_query_installs_ambient_trace(self):
        assert obs.current_trace() is None
        with obs.trace_query("q") as trace:
            assert obs.current_trace() is trace
            with obs.span("parse") as node:
                assert obs.current_span() is node
            assert obs.current_span() is trace.root
        assert obs.current_trace() is None
        assert trace.status == "ok"

    def test_nested_traces_restore_outer(self):
        with obs.trace_query("outer") as outer:
            with obs.trace_query("inner") as inner:
                assert obs.current_trace() is inner
            assert obs.current_trace() is outer

    def test_error_marks_trace_and_counts(self):
        with pytest.raises(ValueError):
            with obs.trace_query("q") as trace:
                raise ValueError("boom")
        assert trace.status == "error"
        assert "boom" in trace.error
        registry = obs.metrics()
        assert registry.counter_value("query_errors_total") == 1
        assert registry.counter_value("queries_total") == 1

    def test_disabled_tracing_still_counts(self):
        previous = obs.set_tracing(False)
        try:
            with obs.trace_query("q") as trace:
                assert trace is None
                with obs.span("parse") as node:
                    assert node is None
        finally:
            obs.set_tracing(previous)
        assert obs.metrics().counter_value("queries_total") == 1

    def test_aggregate_span_folds_iterations(self, clock):
        with obs.trace_query("q") as trace:
            for _ in range(5):
                with obs.span("chunk_fetch", aggregate=True):
                    clock.advance(0.001)
                    obs.add("chunks", 2)
        fetch = trace.root.find("chunk_fetch")
        assert fetch.calls == 5
        assert fetch.counters["chunks"] == 10
        assert fetch.elapsed == pytest.approx(0.005)
        assert len(trace.root.children) == 1

    def test_tick_records_counters_without_timing(self):
        with obs.trace_query("q") as trace:
            obs.tick("pool_hit", hits=3, misses=1)
            obs.tick("pool_hit", hits=2)
        node = trace.root.find("pool_hit")
        assert node.counters == {"hits": 5, "misses": 1}
        assert node.elapsed == 0.0

    def test_capture_activate_adopts_trace_across_threads(self):
        with obs.trace_query("q") as trace:
            with obs.span("execute"):
                context = obs.capture()

            def worker():
                assert obs.current_trace() is None
                with obs.activate(context):
                    with obs.span("chunk_fetch", aggregate=True):
                        obs.add("chunks", 1)
                assert obs.current_trace() is None

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        execute = trace.root.find("execute")
        assert execute.find("chunk_fetch").counters == {"chunks": 1}

    def test_activate_none_detaches(self):
        with obs.trace_query("q") as trace:
            with obs.activate(None):
                assert obs.current_trace() is None
                obs.add("lost", 1)  # silently dropped
            assert obs.current_trace() is trace
        assert trace.root.counters == {}


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("lag", 7)
        assert registry.counter_value("a") == 5
        assert registry.gauge_value("lag") == 7
        assert registry.counter_value("missing") == 0

    def test_histogram_buckets_and_stats(self):
        h = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.05
        assert snap["max"] == 50.0
        assert snap["buckets"] == {
            "le_0.1": 1, "le_1": 2, "le_10": 1, "overflow": 1,
        }

    def test_histogram_quantiles(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        assert h.quantile(0.5) is None
        for value in range(1, 101):
            h.observe(value / 25.0)          # 0.04 .. 4.0
        p50 = h.quantile(0.50)
        assert 1.0 <= p50 <= 3.0             # true p50 = 2.0
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max
        h.observe(100.0)                     # overflow bucket
        assert h.quantile(0.9999) == 100.0

    def test_histogram_single_value_is_exact(self):
        h = Histogram()
        h.observe(0.125)
        for q in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert h.quantile(q) == 0.125

    def test_histogram_snapshot_reports_tail_quantiles(self):
        h = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            h.observe(value)
        snap = h.snapshot()
        for key in ("p50", "p99", "p999"):
            assert key in snap
        assert snap["p999"] == 3.0

    def test_histogram_merge_and_state_roundtrip(self):
        a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5):
            a.observe(value)
        b.observe(3.0)
        restored = Histogram.from_state(b.state())
        a.merge(restored)
        assert a.count == 3
        assert a.min == 0.5 and a.max == 3.0
        assert a.counts == [1, 1, 1]
        with pytest.raises(ValueError):
            a.merge(Histogram(bounds=(9.0,)))

    def test_timer_uses_injectable_clock(self, clock):
        registry = MetricsRegistry()
        with registry.timer("op_seconds"):
            clock.advance(0.125)
        snap = registry.histogram_snapshot("op_seconds")
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(0.125)

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("h", 0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1}
        assert snap["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestSlowQueryLog:
    def _trace(self, clock, seconds, text="q"):
        trace = QueryTrace(text)
        clock.advance(seconds)
        return trace.finish("ok")

    def test_threshold_filters(self, clock):
        log = SlowQueryLog(capacity=4, threshold_ms=100.0)
        assert log.observe(self._trace(clock, 0.05)) is False
        assert log.observe(self._trace(clock, 0.2)) is True
        snap = log.snapshot()
        assert snap["observed"] == 2
        assert snap["admitted"] == 1
        assert len(snap["entries"]) == 1

    def test_keeps_worst_n_sorted(self, clock):
        log = SlowQueryLog(capacity=2, threshold_ms=0.0)
        for seconds, text in ((0.01, "fast"), (0.5, "slowest"),
                              (0.1, "mid")):
            log.observe(self._trace(clock, seconds, text))
        entries = log.snapshot()["entries"]
        assert [e["text"] for e in entries] == ["slowest", "mid"]

    def test_fast_trace_rejected_when_full(self, clock):
        log = SlowQueryLog(capacity=1, threshold_ms=0.0)
        log.observe(self._trace(clock, 0.5, "slow"))
        assert log.observe(self._trace(clock, 0.1, "fast")) is False
        assert [e["text"] for e in log.snapshot()["entries"]] == ["slow"]

    def test_configure_shrinks_and_clear(self, clock):
        log = SlowQueryLog(capacity=4, threshold_ms=0.0)
        for i in range(4):
            log.observe(self._trace(clock, 0.1 * (i + 1), "q%d" % i))
        log.configure(capacity=2, threshold_ms=50.0)
        assert len(log) == 2
        assert log.snapshot()["threshold_ms"] == 50.0
        log.clear()
        assert len(log) == 0


class TestEndToEndTracing:
    def test_every_execute_yields_a_trace(self, ssdm):
        ssdm.execute("SELECT ?s WHERE { ?s ?p ?o }")
        trace = ssdm.last_trace
        assert trace is not None
        assert trace.status == "ok"
        for phase in ("parse", "plan", "execute"):
            assert trace.root.find(phase) is not None, phase

    def test_plan_span_nests_pipeline_stages(self, ssdm):
        ssdm.execute("SELECT ?s WHERE { ?s ?p ?o }")
        plan = ssdm.last_trace.root.find("plan")
        for stage in ("translate", "rewrite", "optimize"):
            assert plan.find(stage) is not None, stage

    def test_operator_spans_and_row_counters(self, foaf):
        foaf.execute(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
            "SELECT ?n WHERE { ?p foaf:name ?n FILTER(?n != \"Bob\") }"
        )
        trace = foaf.last_trace
        execute = trace.root.find("execute")
        assert execute.counters["rows"] == 3
        bgp = trace.root.find("bgp")
        assert bgp is not None
        assert bgp.counters["rows_out"] == 4
        # correlated evaluation: the filter consumes one unit binding
        # and re-emits whatever of its child's rows pass the predicate
        filter_span = trace.root.find("filter")
        assert filter_span.counters["rows_in"] == 1
        assert filter_span.counters["rows_out"] == 3

    def test_chunked_array_query_has_storage_span(self):
        ssdm = SSDM(array_store=MemoryArrayStore(chunk_bytes=256),
                    externalize_threshold=8)
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:m ex:val ((1 2 3 4 5 6 7 8) (9 10 11 12 13 14 15 16)) .
        """)
        # subscripting forces a real chunk fetch (a whole-array
        # aggregate would be delegated to the back-end instead)
        result = ssdm.execute(
            EXP + "SELECT ?a[2,1] WHERE { ex:m ex:val ?a }"
        )
        assert result.rows == [(9,)]
        resolve = ssdm.last_trace.root.find("apr_resolve")
        assert resolve is not None
        assert resolve.counters["arrays"] == 1
        fetch = ssdm.last_trace.root.find("chunk_fetch")
        assert fetch is not None
        assert fetch.total("chunks") >= 1
        assert fetch.total("bytes") > 0

    def test_failed_query_trace_has_error_status(self, ssdm):
        with pytest.raises(SciSparqlError):
            ssdm.execute("THIS IS NOT SPARQL")
        assert ssdm.last_trace.status == "error"
        assert ssdm.last_trace.error

    def test_query_metrics_recorded(self, ssdm):
        ssdm.execute("SELECT ?s WHERE { ?s ?p ?o }")
        metrics = ssdm.stats()["metrics"]
        assert metrics["counters"]["queries_total"] == 1
        assert metrics["histograms"]["query_latency_seconds"]["count"] == 1

    def test_slow_queries_land_in_the_log(self, ssdm):
        obs.slow_query_log().configure(threshold_ms=0.0)
        ssdm.execute("SELECT ?s WHERE { ?s ?p ?o }")
        entries = obs.slow_query_log().snapshot()["entries"]
        assert len(entries) == 1
        assert "SELECT ?s" in entries[0]["text"]

    def test_tracing_disabled_end_to_end(self, ssdm):
        previous = obs.set_tracing(False)
        try:
            ssdm.last_trace = None
            result = ssdm.execute("SELECT ?s WHERE { ?s ?p ?o }")
            assert result.rows == []
            assert ssdm.last_trace is None
            assert obs.metrics().counter_value("queries_total") == 1
        finally:
            obs.set_tracing(previous)


class TestExplainAnalyze:
    def test_analyze_appends_trace_and_rowcount(self, foaf):
        text = foaf.explain(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
            "SELECT ?n WHERE { ?p foaf:name ?n }",
            analyze=True,
        )
        assert "-- trace: ok" in text
        assert "-- 4 row(s) --" in text
        assert "bgp" in text

    def test_analyze_with_tracing_disabled(self, ssdm):
        previous = obs.set_tracing(False)
        try:
            ssdm.last_trace = None
            text = ssdm.explain("SELECT ?s WHERE { ?s ?p ?o }",
                                analyze=True)
            assert "trace unavailable" in text
        finally:
            obs.set_tracing(previous)

    def test_plain_explain_does_not_execute(self, ssdm):
        ssdm.explain("SELECT ?s WHERE { ?s ?p ?o }")
        assert obs.metrics().counter_value("queries_total") == 0


@pytest.fixture
def server():
    ssdm = SSDM()
    ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:m ex:n 7 .")
    server = SSDMServer(ssdm).start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    client = SSDMClient("127.0.0.1", server.server_address[1])
    yield client
    client.close()


class TestServerOps:
    def test_metrics_roundtrip(self, client):
        client.query(EXP + "SELECT ?v WHERE { ex:m ex:n ?v }")
        snapshot = client.metrics()
        assert snapshot["counters"]["queries_total"] >= 1
        assert snapshot["counters"]["server_requests_total"] >= 1
        assert "query_latency_seconds" in snapshot["histograms"]

    def test_slowlog_roundtrip(self, client):
        # lower the threshold so every query ranks, then read it back
        payload = client.slowlog(threshold_ms=0.0)
        assert payload["threshold_ms"] == 0.0
        client.query(EXP + "SELECT ?v WHERE { ex:m ex:n ?v }")
        payload = client.slowlog()
        assert payload["observed"] >= 1
        assert any("SELECT ?v" in e["text"] for e in payload["entries"])

    def test_slowlog_clear(self, client):
        client.slowlog(threshold_ms=0.0)
        client.query(EXP + "ASK { ex:m ex:n 7 }")
        assert len(client.slowlog(clear=True)["entries"]) >= 1
        assert client.slowlog()["entries"] == []

    def test_server_request_latency_histogram(self, client):
        client.query(EXP + "ASK { ex:m ex:n 7 }")
        snapshot = client.metrics()
        assert snapshot["histograms"]["server_request_seconds"]["count"] \
            >= 1
