"""WAL-shipping replication: streaming, replicas, fenced failover.

Four families of guarantees are exercised:

- **Stream framing** — hypothesis round-trips of ``records_since`` /
  ``wal_since`` (resume from any mid-log position, unicode payloads,
  batch limits), and streaming over a log whose tail was truncated by
  crash recovery.
- **Replica semantics** — streamed deltas apply through the journal
  replay path (invalidating pooled chunks of touched arrays), writes to
  replicas answer ``READONLY``, and ``min_seq`` read barriers answer
  ``LAGGING`` until the replica catches up.
- **Epoch fencing** — promotion bumps the epoch; a deposed primary
  refuses newer-epoch writes with ``FENCED`` and steps down; a follower
  refuses a stale primary's stream; a divergent same-seq tail is
  detected by log matching and resynced, never silently merged.
- **The failover matrix** — primary crash with a partitioned then
  healed replica, promotion, client failover, and the old primary
  rejoining: no acknowledged write is lost, no stale-epoch write is
  accepted, and the replica-set client answers reads throughout.
"""

import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    SSDM,
    FaultPlan,
    FencedError,
    MemoryArrayStore,
    NumericArray,
    ReadOnlyError,
    ReplicaLaggingError,
    ReplicaSetClient,
    ReplicationClient,
    URI,
)
from repro.client import SSDMClient, SSDMServer
from repro.exceptions import ConnectionClosedError
from repro.replication import PRIMARY, REPLICA
from repro.storage.durability import DatasetJournal, WriteAheadLog

EX = "PREFIX ex: <http://example.org/> "


def insert(n):
    return EX + "INSERT DATA { ex:s%d ex:p %d }" % (n, n)


def select(n):
    return EX + "SELECT ?v WHERE { ex:s%d ex:p ?v }" % (n,)


class Cluster:
    """Test harness: builds journaled nodes and tears them all down."""

    def __init__(self, tmp_path):
        self.tmp_path = tmp_path
        self._servers = []
        self._tails = []
        self._clients = []
        self._ssdms = []

    def primary(self, name="p", **kwargs):
        ssdm = SSDM.open(str(self.tmp_path / name), **kwargs)
        server = SSDMServer(ssdm, role=PRIMARY).start()
        self._servers.append(server)
        self._ssdms.append(ssdm)
        return ssdm, server, server.server_address[1]

    def replica(self, upstream_port, name="r", faults=None,
                start_tail=False, **kwargs):
        ssdm = SSDM.open(str(self.tmp_path / name), **kwargs)
        server = SSDMServer(ssdm, role=REPLICA)
        tail = server.attach_replication(
            "127.0.0.1", upstream_port, faults=faults
        )
        server.start()
        if start_tail:
            tail.start()
        self._servers.append(server)
        self._ssdms.append(ssdm)
        self._tails.append(tail)
        return ssdm, server, tail, server.server_address[1]

    def client(self, port, **kwargs):
        kwargs.setdefault("retries", 0)
        client = SSDMClient("127.0.0.1", port, **kwargs)
        self._clients.append(client)
        return client

    def replica_set(self, *ports, **kwargs):
        client = ReplicaSetClient(
            [("127.0.0.1", port) for port in ports], **kwargs
        )
        self._clients.append(client)
        return client

    def close(self):
        for tail in self._tails:
            tail.stop(join=False)
        for client in self._clients:
            try:
                client.close()
            except OSError:
                pass
        for server in self._servers:
            try:
                server.stop()
            except Exception:
                pass
        for ssdm in self._ssdms:
            ssdm.close()


@pytest.fixture
def cluster(tmp_path):
    c = Cluster(tmp_path)
    yield c
    c.close()


def wait_for(predicate, timeout=5.0, message="condition"):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("timed out waiting for %s" % message)


# -- stream framing -------------------------------------------------------------------


class TestWalStreaming:
    @given(
        payloads=st.lists(
            st.text(min_size=0, max_size=80), min_size=0, max_size=10
        ),
        resume=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_records_since_resumes_from_any_position(
        self, tmp_path_factory, payloads, resume
    ):
        journal = DatasetJournal(
            str(tmp_path_factory.mktemp("j")), fsync=False
        )
        for payload in payloads:
            journal.wal.append(payload.encode("utf-8"))
        got = journal.records_since(resume)
        expected = [
            (i + 1, p.encode("utf-8"))
            for i, p in enumerate(payloads) if i + 1 > resume
        ]
        assert got == expected
        journal.close()

    @given(batch=st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_wal_since_framing_round_trips_over_the_wire(
        self, tmp_path_factory, batch
    ):
        tmp = tmp_path_factory.mktemp("wire")
        ssdm = SSDM.open(str(tmp / "p"))
        server = SSDMServer(ssdm).start()
        client = SSDMClient(
            "127.0.0.1", server.server_address[1], retries=0
        )
        try:
            texts = ["naïve — πθ", "plain", 'quo"ted\ttab']
            for n, _ in enumerate(texts):
                client.update(insert(n))
            collected = []
            since = 0
            while True:
                response = client.wal_since(since, max_records=batch)
                assert not response["restart"]
                records = response["records"]
                if not records:
                    break
                assert len(records) <= batch
                collected.extend(records)
                since = records[-1][0]
            assert [seq for seq, _ in collected] == [1, 2, 3]
            # every shipped payload is byte-identical to the log's
            local = ssdm.journal.records_since(0)
            assert [
                payload.encode("utf-8") for _, payload in collected
            ] == [payload for _, payload in local]
        finally:
            client.close()
            server.stop()
            ssdm.close()

    def test_stream_resumes_past_a_recovered_torn_tail(self, tmp_path):
        """A replica whose log lost its torn tail re-fetches the rest."""
        primary = SSDM.open(str(tmp_path / "p"))
        server = SSDMServer(primary).start()
        port = server.server_address[1]
        try:
            follower = SSDM.open(str(tmp_path / "f"))
            tail = ReplicationClient(follower, "127.0.0.1", port)
            client = SSDMClient("127.0.0.1", port, retries=0)
            for n in range(4):
                client.update(insert(n))
            assert tail.poll_once() == 4
            tail.stop()
            follower.close()
            # tear the follower's last record (crash mid-append)
            log = str(tmp_path / "f" / DatasetJournal.LOG_NAME)
            with open(log, "r+b") as handle:
                handle.truncate(os.path.getsize(log) - 3)
            reopened = SSDM.open(str(tmp_path / "f"))
            assert reopened.journal.last_seq == 3
            assert reopened.execute(select(3)).rows == []
            fresh = ReplicationClient(reopened, "127.0.0.1", port)
            assert fresh.poll_once() == 1      # just the lost record
            assert reopened.journal.last_seq == 4
            assert reopened.execute(select(3)).rows == [(3,)]
            fresh.stop()
            reopened.close()
            client.close()
        finally:
            server.stop()
            primary.close()

    def test_wal_since_long_poll_returns_within_deadline(self, cluster):
        ssdm, server, port = cluster.primary()
        client = cluster.client(port)
        started = time.monotonic()
        response = client.wal_since(0, wait_ms=150, follower_id="f1")
        elapsed = time.monotonic() - started
        assert response["records"] == []
        assert not response["restart"]
        assert 0.1 <= elapsed < 2.0
        # the poll registered the follower for lag accounting
        assert "f1" in client.health()["followers"]

    def test_follower_ahead_of_log_gets_restart(self, cluster):
        ssdm, server, port = cluster.primary()
        client = cluster.client(port)
        client.update(insert(1))
        response = client.wal_since(99)
        assert response["restart"]
        assert response["records"] == []

    def test_wal_since_without_journal_is_a_typed_error(self, cluster):
        ssdm = SSDM()
        server = SSDMServer(ssdm).start()
        cluster._servers.append(server)
        client = cluster.client(server.server_address[1])
        from repro.exceptions import StorageError
        with pytest.raises(StorageError):
            client.wal_since(0)


# -- replica semantics ----------------------------------------------------------------


class TestReplicaSemantics:
    def test_replica_applies_stream_and_serves_reads(self, cluster):
        _, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        rssdm, _, tail, rport = cluster.replica(pport)
        for n in range(3):
            pclient.update(insert(n))
        assert tail.poll_once() == 3
        rclient = cluster.client(rport)
        assert rclient.query(select(2)).rows == [(2,)]
        assert tail.lag() == 0

    def test_writes_to_replica_are_readonly(self, cluster):
        _, _, pport = cluster.primary()
        _, _, _, rport = cluster.replica(pport)
        rclient = cluster.client(rport)
        with pytest.raises(ReadOnlyError):
            rclient.update(insert(1))
        # reads still fine
        assert rclient.query(EX + "ASK { ex:x ex:p 1 }") is False

    def test_min_seq_barrier_lagging_then_caught_up(self, cluster):
        _, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        _, _, tail, rport = cluster.replica(pport)
        pclient.update(insert(1))
        seq = pclient.last_write_seq
        assert seq == 1
        rclient = cluster.client(rport)
        with pytest.raises(ReplicaLaggingError):
            rclient.query(select(1), min_seq=seq)
        tail.poll_once()
        assert rclient.query(select(1), min_seq=seq).rows == [(1,)]
        # the primary trivially satisfies its own barrier
        assert pclient.query(
            select(1), read_your_writes=True
        ).rows == [(1,)]

    def test_streamed_delete_invalidates_pooled_chunks(self, cluster):
        store = MemoryArrayStore(chunk_bytes=64)
        _, _, pport = cluster.primary(
            array_store=store, externalize_threshold=4
        )
        pclient = cluster.client(pport)
        values = " ".join(str(v) for v in range(32))
        pclient.update(EX + "INSERT DATA { ex:m ex:val (%s) }" % values)
        rssdm, _, tail, _ = cluster.replica(
            pport, array_store=store, externalize_threshold=4
        )
        tail.poll_once()
        row = rssdm.execute(EX + "SELECT ?a WHERE { ex:m ex:val ?a }")
        proxy = row.rows[0][0]
        proxy.resolve()
        # seed the shared pool with a chunk of the array (the APR
        # pipeline would do the same during a ranged read)
        key = store.pool_key(proxy.array_id)
        pool = store.buffer_pool
        pool.put(key, 0, b"\x00" * 8)
        assert pool._arrays.get(key), \
            "expected pooled chunks before the streamed delete"
        pclient.update(EX + "DELETE WHERE { ex:m ex:val ?x }")
        tail.poll_once()
        assert rssdm.execute(
            EX + "SELECT ?a WHERE { ex:m ex:val ?a }"
        ).rows == []
        assert not pool._arrays.get(key), \
            "streamed delete must invalidate pooled chunks"

    def test_replication_state_in_stats(self, cluster):
        pssdm, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        pclient.update(insert(1))
        _, _, tail, rport = cluster.replica(pport)
        tail.poll_once()
        stats = pclient.stats()
        assert stats["replication"]["role"] == "primary"
        assert stats["replication"]["epoch"] == 1
        assert stats["replication"]["wal_seq"] == 1
        followers = stats["replication"]["followers"]
        assert followers and all(
            info["lag"] >= 0 for info in followers.values()
        )
        # embedded view, too
        embedded = pssdm.stats()["replication"]
        assert embedded["role"] == "primary"
        assert embedded["wal_seq"] == 1
        rclient = cluster.client(rport)
        health = rclient.health()
        assert health["role"] == "replica"
        assert health["upstream"]["lag"] == 0

    def test_stream_reconstructs_identical_term_dictionary(
        self, cluster
    ):
        """Streamed dict records give the replica the primary's ID space."""
        pssdm, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        rssdm, _, tail, _ = cluster.replica(pport)
        for n in range(4):
            pclient.update(insert(n))
        tail.poll_once()
        primary_terms = list(pssdm.dataset.term_dictionary.term_list())
        assert primary_terms
        assert list(
            rssdm.dataset.term_dictionary.term_list()
        ) == primary_terms

    def test_resync_after_snapshot_rebuilds_compacted_dictionary(
        self, cluster
    ):
        """A compacting snapshot forces a full resync; the standby must
        drop its stale assignments and land on the primary's compacted
        ID space, byte for byte."""
        pssdm, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        rssdm, _, tail, _ = cluster.replica(pport)
        for n in range(4):
            pclient.update(insert(n))
        pclient.update(EX + "DELETE DATA { ex:s0 ex:p 0 }")
        tail.poll_once()
        before_resync = len(rssdm.dataset.term_dictionary)
        assert before_resync > 0
        pssdm.snapshot()              # compacts log + dictionary
        tail.poll_once()              # detects the gap, resyncs
        tail.poll_once()              # re-tails the compacted log
        primary_terms = list(pssdm.dataset.term_dictionary.term_list())
        assert len(primary_terms) < before_resync
        assert list(
            rssdm.dataset.term_dictionary.term_list()
        ) == primary_terms
        assert rssdm.execute(select(2)).rows == [(2,)]
        assert tail.resyncs == 1

    def test_background_tailing_loop(self, cluster):
        _, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        rssdm, _, tail, rport = cluster.replica(pport, start_tail=True)
        pclient.update(insert(7))
        wait_for(lambda: tail.last_seq >= 1, message="tail catch-up")
        rclient = cluster.client(rport)
        assert rclient.query(select(7)).rows == [(7,)]
        tail.stop()
        assert not tail.running()


# -- epoch fencing --------------------------------------------------------------------


class TestEpochFencing:
    def test_promote_bumps_epoch_and_enables_writes(self, cluster):
        _, _, pport = cluster.primary()
        _, _, tail, rport = cluster.replica(pport)
        rclient = cluster.client(rport)
        with pytest.raises(ReadOnlyError):
            rclient.update(insert(1))
        assert rclient.promote() == 2
        assert rclient.health()["role"] == "primary"
        assert rclient.update(insert(1)) == 1

    def test_stale_primary_fences_and_demotes_on_newer_epoch(
        self, cluster
    ):
        _, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        with pytest.raises(FencedError):
            pclient.update(insert(1), epoch=5)
        health = pclient.health()
        assert health["role"] == "replica"
        assert health["epoch"] == 5
        # and it now refuses plain writes too: it stepped down
        with pytest.raises(ReadOnlyError):
            pclient.update(insert(1))

    def test_follower_refuses_stale_primary_stream(self, cluster):
        _, _, stale_port = cluster.primary(name="stale")
        follower = SSDM.open(str(cluster.tmp_path / "f"))
        cluster._ssdms.append(follower)
        tail = ReplicationClient(follower, "127.0.0.1", stale_port)
        cluster._tails.append(tail)
        tail.state.epoch = 3          # has seen a newer promotion
        with pytest.raises(FencedError):
            tail.poll_once()
        assert tail.fenced
        # the stale upstream learned the newer epoch and stepped down
        stale = cluster.client(stale_port)
        assert stale.health()["role"] == "replica"
        assert stale.health()["epoch"] == 3

    def test_divergent_same_seq_tail_triggers_resync(self, cluster):
        """Log matching: a deposed primary's unshipped tail at the same
        seq as the new history must resync, never merge silently."""
        pssdm, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        pclient.update(insert(1))
        # follower with a *different* record at seq 1 (divergent history)
        follower = SSDM.open(str(cluster.tmp_path / "diverged"))
        cluster._ssdms.append(follower)
        follower.execute(insert(99))
        assert follower.journal.last_seq == 1
        tail = ReplicationClient(follower, "127.0.0.1", pport)
        cluster._tails.append(tail)
        tail.poll_once()              # detects divergence, resyncs
        assert tail.resyncs == 1
        tail.poll_once()              # re-tails from zero
        assert follower.execute(select(1)).rows == [(1,)]
        assert follower.execute(select(99)).rows == []

    def test_matching_tail_is_not_resynced(self, cluster):
        _, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        pclient.update(insert(1))
        follower = SSDM.open(str(cluster.tmp_path / "f"))
        cluster._ssdms.append(follower)
        tail = ReplicationClient(follower, "127.0.0.1", pport)
        cluster._tails.append(tail)
        assert tail.poll_once() == 1
        tail.stop()
        follower.close()
        # reopen: resume must verify the tail matches and not resync
        reopened = SSDM.open(str(cluster.tmp_path / "f"))
        cluster._ssdms.append(reopened)
        pclient.update(insert(2))
        fresh = ReplicationClient(reopened, "127.0.0.1", pport)
        cluster._tails.append(fresh)
        assert fresh.poll_once() == 1
        assert fresh.resyncs == 0
        assert reopened.execute(select(2)).rows == [(2,)]


# -- network faults -------------------------------------------------------------------


class TestNetworkFaults:
    def test_partition_and_heal(self, cluster):
        _, _, pport = cluster.primary()
        faults = FaultPlan()
        peer = "127.0.0.1:%d" % pport
        client = cluster.client(pport, faults=faults)
        assert client.query(EX + "ASK { ex:x ex:p 1 }") is False
        faults.partition(peer)
        with pytest.raises(ConnectionClosedError):
            client.query(EX + "ASK { ex:x ex:p 1 }")
        assert faults.net_blocked >= 1
        faults.heal(peer)
        assert client.query(EX + "ASK { ex:x ex:p 1 }") is False

    def test_drop_requests_is_transient(self, cluster):
        _, _, pport = cluster.primary()
        faults = FaultPlan()
        peer = "127.0.0.1:%d" % pport
        client = cluster.client(pport, faults=faults, retries=2,
                                backoff=0.01)
        faults.drop_requests(peer, 2)
        # idempotent reads retry through the dropped requests
        assert client.query(EX + "ASK { ex:x ex:p 1 }") is False
        assert faults.net_dropped == 2
        assert client.retries_performed == 2

    def test_partitioned_tail_reports_disconnected_then_recovers(
        self, cluster
    ):
        _, _, pport = cluster.primary()
        pclient = cluster.client(pport)
        faults = FaultPlan()
        _, _, tail, _ = cluster.replica(pport, faults=faults)
        peer = "127.0.0.1:%d" % pport
        pclient.update(insert(1))
        faults.partition(peer)
        assert tail.poll_once() == 0
        assert not tail.connected
        assert tail.poll_errors == 1
        faults.heal()
        assert tail.poll_once() == 1
        assert tail.connected


# -- the failover matrix --------------------------------------------------------------


class TestFailover:
    def test_deterministic_failover_matrix(self, cluster, tmp_path):
        """Primary crash, promotion, old-primary rejoin: no acked write
        lost, no stale-epoch write accepted, reads answered throughout.
        """
        faults = FaultPlan()
        pssdm, pserver, pport = cluster.primary()
        rssdm, rserver, tail, rport = cluster.replica(pport)
        rs = cluster.replica_set(pport, rport, faults=faults)
        rs.probe()
        assert rs.primary == ("127.0.0.1", pport)

        acked = []
        for n in range(3):
            rs.update(insert(n))
            acked.append(n)
        tail.poll_once()

        # partition the replica from the client: reads keep working
        # through the remaining (primary) endpoint
        replica_peer = "127.0.0.1:%d" % rport
        faults.partition(replica_peer)
        assert rs.query(select(0)).rows == [(0,)]
        faults.heal(replica_peer)

        # one more acked write, shipped before the crash
        rs.update(insert(3))
        acked.append(3)
        tail.poll_once()
        assert tail.lag() == 0

        # primary dies mid-stream
        pserver.stop()
        pssdm.close()

        # reads still answered by the replica (it serves the shipped
        # history even while the primary is gone)
        assert rs.query(select(3)).rows == [(3,)]

        # operator promotes the replica
        new_epoch = rs.promote(("127.0.0.1", rport))
        assert new_epoch == 2
        rs.probe()
        assert rs.primary == ("127.0.0.1", rport)

        # writes flow again, to the new primary
        rs.update(insert(4))
        acked.append(4)
        assert rs.query(select(4), read_your_writes=True).rows == [(4,)]

        # the old primary restarts, still believing it is the primary
        # of epoch 1
        reopened = SSDM.open(str(tmp_path / "p"))
        cluster._ssdms.append(reopened)
        old = SSDMServer(reopened, role=PRIMARY, epoch=1).start()
        cluster._servers.append(old)
        old_port = old.server_address[1]

        # a fenced write: the replica-set client knows epoch 2, so the
        # stale primary refuses it and steps down
        stale_client = cluster.client(old_port)
        with pytest.raises(FencedError):
            stale_client.update(insert(99), epoch=rs.epoch)
        assert stale_client.health()["role"] == "replica"
        with pytest.raises(ReadOnlyError):
            stale_client.update(insert(99))

        # rejoin: the deposed primary tails the new primary and
        # converges on its history
        rejoin_tail = old.attach_replication("127.0.0.1", rport)
        cluster._tails.append(rejoin_tail)
        applied = rejoin_tail.poll_once()
        while rejoin_tail.lag() or applied:
            applied = rejoin_tail.poll_once()
        old_client = cluster.client(old_port)
        for n in acked:
            assert old_client.query(select(n)).rows == [(n,)], \
                "acked write %d lost on the rejoined node" % n
        assert old_client.query(select(99)).rows == []

        # and the new primary never accepted a stale-epoch write
        new_client = cluster.client(rport)
        for n in acked:
            assert new_client.query(select(n)).rows == [(n,)]
        assert new_client.query(select(99)).rows == []

    def test_replica_set_routes_and_fails_over_reads(self, cluster):
        faults = FaultPlan()
        _, _, pport = cluster.primary()
        _, _, tail, rport = cluster.replica(pport, start_tail=True)
        rs = cluster.replica_set(pport, rport, faults=faults)
        rs.probe()
        rs.update(insert(1))
        # read-your-writes: the barrier fails over past a lagging or
        # partitioned replica to a node that has the write
        faults.partition("127.0.0.1:%d" % rport)
        assert rs.query(select(1), read_your_writes=True).rows == [(1,)]
        faults.heal()
        wait_for(lambda: tail.lag() == 0, message="replica catch-up")
        assert rs.query(select(1), read_your_writes=True).rows == [(1,)]

    def test_replica_set_write_fails_over_after_promotion(self, cluster):
        _, _, pport = cluster.primary()
        _, _, tail, rport = cluster.replica(pport)
        rs = cluster.replica_set(pport, rport)
        rs.probe()
        rs.update(insert(1))
        tail.poll_once()
        # the primary silently becomes unavailable; promote the replica
        # out-of-band (rs only learns through probing)
        promote_client = cluster.client(rport)
        promote_client.promote()
        # the old primary is then fenced by the next rs write carrying
        # the new epoch discovered at probe time
        rs.probe()
        assert rs.epoch == 2
        assert rs.primary == ("127.0.0.1", rport)
        assert rs.update(insert(2)) == 1


# -- client retry guarantee (regression pin) ------------------------------------------


class TestUpdateRetryPin:
    def test_update_is_never_auto_retried_after_connection_loss(
        self, cluster
    ):
        """Regression pin for the §9 guarantee: a connection lost
        mid-update raises instead of replaying, even with retries
        configured, and the update is applied at most once."""
        ssdm, server, pport = cluster.primary()

        applied = []
        original = ssdm.execute

        def kill_connection_after_execute(text, *args, **kwargs):
            result = original(text, *args, **kwargs)
            if "INSERT" in text:
                applied.append(text)
                raise RuntimeError("boom: connection torn post-apply")
            return result

        ssdm.execute = kill_connection_after_execute
        client = cluster.client(pport, retries=3, backoff=0.01)
        # the server answers INTERNAL (not a dropped connection): no
        # retry happens because the error is typed and non-retryable
        from repro.exceptions import SciSparqlError
        with pytest.raises(SciSparqlError):
            client.update(insert(1))
        assert client.retries_performed == 0
        assert len(applied) == 1
        ssdm.execute = original

    def test_update_connection_loss_raises_without_replay(self, cluster):
        ssdm, server, pport = cluster.primary()
        faults = FaultPlan()
        peer = "127.0.0.1:%d" % pport
        client = cluster.client(pport, faults=faults, retries=3,
                                backoff=0.01)
        client.update(insert(1))
        before = ssdm.journal.last_seq
        faults.drop_requests(peer, 1)   # the write never reaches the wire
        with pytest.raises(ConnectionClosedError):
            client.update(insert(2))
        assert client.retries_performed == 0
        assert ssdm.journal.last_seq == before
        # a later, explicit re-issue works (the client reconnected)
        assert client.update(insert(2)) == 1
