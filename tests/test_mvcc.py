"""MVCC snapshot isolation: versioned reads, bounded retention, chaos.

The tentpole guarantee under test: every admitted read pins an immutable
dataset version at its admission seq, writers never block readers (and
vice versa), and what a snapshot observes always equals the
:class:`~repro.rdf.hashgraph.HashIndexGraph` oracle replayed to the same
seq.  Covers:

- the :class:`~repro.mvcc.SnapshotManager` unit surface (acquire /
  release, bounded live snapshots, the exact-seq retention ring, seq
  regressions);
- the publish-then-swap consolidation protocol (a reader holding the
  old sorted base mid-run is never broken by a concurrent merge);
- ``execute(at_seq=...)`` exact-version reads with the
  ``LAGGING`` / ``SNAPSHOT_GONE`` wire contract, embedded and over the
  wire;
- writer/reader non-blocking in both directions (the starvation
  regression the old global read/write lock suffered from);
- a hypothesis property interleaving add/remove batches with snapshot
  reads at random seqs against the hash-graph oracle;
- the deterministic chaos matrix: writers x long snapshot readers x
  injected crashes (``consolidate`` / ``publish`` points) x memory
  pressure, verified against the oracle replayed to each admission seq.
"""

import threading
import time
from contextlib import ExitStack

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SSDM, Literal, URI
from repro.client import SSDMClient, SSDMServer
from repro.exceptions import (
    QueryError, ReplicaLaggingError, SnapshotGoneError,
)
from repro.governor import get_governor
from repro.mvcc import DatasetVersion, SnapshotManager, snapshot_scope
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.hashgraph import HashIndexGraph
from repro.storage.faults import FaultPlan, SimulatedCrash

P = URI("http://e/p")

SELECT_ALL = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"


def _subject(i):
    return URI("http://e/s%d" % i)


def _triples(graph):
    """The graph's logical state as a comparable set of terms."""
    return {(t.subject, t.property, t.value) for t in graph.triples()}


def _version(seq=1):
    return DatasetVersion(seq, {}, None)


# -- SnapshotManager unit surface -------------------------------------------


class TestSnapshotManager:
    def test_acquire_release_tracks_live(self):
        manager = SnapshotManager()
        snapshot = manager.acquire(_version(3))
        assert manager.live_count() == 1
        assert manager.low_water_seq() == 3
        snapshot.release()
        assert manager.live_count() == 0
        assert manager.low_water_seq() is None
        snapshot.release()          # idempotent

    def test_reading_scope_releases_on_exit(self):
        manager = SnapshotManager()
        with manager.reading(_version(5)) as snapshot:
            assert snapshot.seq == 5
            assert manager.live_count() == 1
        assert manager.live_count() == 0

    def test_low_water_is_oldest_pinned_seq(self):
        manager = SnapshotManager()
        old = manager.acquire(_version(2))
        manager.acquire(_version(9))
        assert manager.low_water_seq() == 2
        old.release()
        assert manager.low_water_seq() == 9

    def test_max_snapshots_reclaims_oldest(self):
        manager = SnapshotManager(max_snapshots=2)
        first = manager.acquire(_version(1))
        second = manager.acquire(_version(2))
        third = manager.acquire(_version(3))
        assert first.gone and not second.gone and not third.gone
        with pytest.raises(SnapshotGoneError):
            first.check()
        second.check()              # survivors unaffected
        stats = manager.stats()
        assert stats["snapshot_gone"] == 1
        assert stats["live_snapshots"] == 2

    def test_retention_ring_is_bounded(self):
        manager = SnapshotManager(retain_versions=3)
        for seq in range(1, 6):
            manager.note_published(_version(seq))
        assert manager.retained(1) is None
        assert manager.retained(2) is None
        for seq in (3, 4, 5):
            assert manager.retained(seq).seq == seq

    def test_seq_regression_invalidates_live_snapshots(self):
        manager = SnapshotManager()
        manager.note_published(_version(7))
        pinned = manager.acquire(manager.retained(7))
        manager.note_published(_version(1))     # compaction / resync
        assert pinned.gone
        with pytest.raises(SnapshotGoneError):
            pinned.version_of(object())
        stats = manager.stats()
        assert stats["regressions"] == 1
        assert manager.retained(7) is None      # old history dropped
        assert manager.retained(1).seq == 1


# -- dataset publication ----------------------------------------------------


class TestDatasetPublication:
    def test_capture_serves_pre_record_state_mid_write(self):
        ds = Dataset()
        ds.publish(0)
        graph = ds.default_graph
        graph.add(_subject(0), P, Literal(0))
        ds.publish(1)
        with ds.writing(2):
            graph.add(_subject(1), P, Literal(1))
            mid = ds.capture()
            assert mid.seq == 1
            assert mid.version_of(graph).size == 1
        after = ds.capture()
        assert after.seq == 2
        assert after.version_of(graph).size == 2

    def test_publish_skips_foreign_graphs(self):
        ds = Dataset()
        foreign = HashIndexGraph(name=URI("http://e/oracle"))
        ds._named[URI("http://e/oracle")] = foreign
        foreign.add(_subject(0), P, Literal(0))
        version = ds.publish(1)
        # unversioned: snapshot readers fall through to the live graph
        assert version.version_of(foreign) is None
        assert version.version_of(ds.default_graph) is not None

    def test_auto_seq_never_regresses(self):
        ds = Dataset()
        ds.publish(5)
        assert ds.publish().seq > 5
        assert ds.published_seq > 5


# -- publish-then-swap consolidation (the flush race) ------------------------


class TestConsolidationRace:
    def test_swapped_out_index_instance_stays_readable(self):
        graph = Graph()
        for i in range(50):
            graph.add(_subject(i), P, Literal(i))
        graph._flush()
        old = graph._idx_spo
        lo, hi = old.run_bounds(())
        before = list(old.iter_rows(lo, hi))
        for i in range(50, 80):
            graph.add(_subject(i), P, Literal(i))
        graph.remove(_subject(0), P, Literal(0))
        graph._flush()
        # consolidation built fresh instances; a reader still holding
        # the old base (mid-run_bounds) sees the exact pre-merge rows
        assert graph._idx_spo is not old
        assert list(old.iter_rows(lo, hi)) == before

    def test_frozen_version_unaffected_by_consolidation(self):
        graph = Graph()
        for i in range(60):
            graph.add(_subject(i), P, Literal(i))
        version = graph.freeze()
        expected = {(t.subject, t.property, t.value)
                    for t in version.triples()}
        for i in range(60, 90):
            graph.add(_subject(i), P, Literal(i))
        graph.remove(_subject(3), P, Literal(3))
        graph._flush()
        assert {(t.subject, t.property, t.value)
                for t in version.triples()} == expected
        assert version._count_ids() == version.size == 60

    def test_reader_consistent_inside_delayed_consolidation_window(self):
        graph = Graph()
        plan = FaultPlan(point_delays={"consolidate": 0.15})
        graph.faults = plan
        for i in range(40):
            graph.add(_subject(i), P, Literal(i))
        version = graph.freeze()
        expected = {(t.subject, t.property, t.value)
                    for t in version.triples()}
        writer = threading.Thread(target=graph._ensure_flushed)
        writer.start()
        try:
            while writer.is_alive():
                assert {(t.subject, t.property, t.value)
                        for t in version.triples()} == expected
                time.sleep(0.01)
        finally:
            writer.join()
        assert graph._flushes == 1
        assert _triples(graph) == expected

    def test_concurrent_version_scans_during_flushes(self):
        ds = Dataset()
        ds.publish(0)
        graph = ds.default_graph
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                version = ds.capture()
                frozen = version.version_of(graph)
                try:
                    scanned = sum(1 for _ in frozen._scan_ids())
                    counted = frozen._count_ids()
                    if scanned != frozen.size or counted != frozen.size:
                        errors.append(
                            "inconsistent version: scan=%d count=%d "
                            "size=%d" % (scanned, counted, frozen.size)
                        )
                except Exception as exc:   # noqa: BLE001 - recorded
                    errors.append(repr(exc))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        try:
            for seq in range(1, 150):
                with ds.writing(seq):
                    graph.add(_subject(seq), P, Literal(seq))
                    if seq % 7 == 0:
                        graph.remove(
                            _subject(seq - 3), P, Literal(seq - 3)
                        )
                    if seq % 11 == 0:
                        graph._flush()
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert errors == []


# -- exact-seq reads (at_seq) ------------------------------------------------


def _insert(ssdm, i):
    ssdm.execute(
        "INSERT DATA { <http://e/s%d> <http://e/p> %d }" % (i, i)
    )
    return ssdm.dataset.published_seq


class TestAtSeq:
    @pytest.fixture
    def loaded(self):
        ssdm = SSDM()
        seqs = [_insert(ssdm, i) for i in (1, 2, 3)]
        return ssdm, seqs

    def test_exact_seq_reads_history(self, loaded):
        ssdm, seqs = loaded
        result = ssdm.execute(SELECT_ALL, at_seq=seqs[0])
        assert {row[2] for row in result.rows} == {1}
        result = ssdm.execute(SELECT_ALL, at_seq=seqs[1])
        assert {row[2] for row in result.rows} == {1, 2}

    def test_at_published_seq_serves_current(self, loaded):
        ssdm, seqs = loaded
        result = ssdm.execute(SELECT_ALL, at_seq=seqs[-1])
        assert len(result.rows) == 3
        assert len(ssdm.execute(SELECT_ALL).rows) == 3

    def test_ahead_of_published_is_lagging(self, loaded):
        ssdm, seqs = loaded
        with pytest.raises(ReplicaLaggingError) as caught:
            ssdm.execute(SELECT_ALL, at_seq=seqs[-1] + 5)
        assert caught.value.retryable is True

    def test_evicted_seq_is_snapshot_gone(self, loaded):
        ssdm, seqs = loaded
        for i in range(4, 16):      # push seq 1 out of the ring
            _insert(ssdm, i)
        with pytest.raises(SnapshotGoneError) as caught:
            ssdm.execute(SELECT_ALL, at_seq=seqs[0])
        assert caught.value.retryable is False
        assert caught.value.code == "SNAPSHOT_GONE"

    def test_update_with_at_seq_rejected(self, loaded):
        ssdm, seqs = loaded
        with pytest.raises(QueryError):
            ssdm.execute(
                "INSERT DATA { <http://e/x> <http://e/p> 9 }",
                at_seq=seqs[0],
            )


# -- writer/reader non-blocking (starvation regression) ----------------------


class TestStarvation:
    def test_long_reader_does_not_block_writer(self):
        ssdm = SSDM()
        _insert(ssdm, 1)
        with ssdm._read_snapshot():
            finished = threading.Event()

            def write():
                _insert(ssdm, 2)
                finished.set()

            writer = threading.Thread(target=write)
            writer.start()
            writer.join(timeout=5.0)
            # the update committed while the analytical read was live
            assert finished.is_set()
            # ... and the held snapshot still reads its admission state
            assert len(ssdm.execute(SELECT_ALL).rows) == 1
        assert len(ssdm.execute(SELECT_ALL).rows) == 2

    def test_writer_publish_window_does_not_block_readers(self):
        ssdm = SSDM()
        _insert(ssdm, 1)
        plan = FaultPlan(point_delays={"publish": 0.5})
        ssdm.dataset.set_faults(plan)
        entered = threading.Event()

        def write():
            entered.set()
            _insert(ssdm, 2)

        writer = threading.Thread(target=write)
        writer.start()
        try:
            entered.wait(timeout=2.0)
            time.sleep(0.05)        # let the writer reach the window
            started = time.monotonic()
            for _ in range(3):
                result = ssdm.execute(SELECT_ALL)
                assert len(result.rows) in (1, 2)
            elapsed = time.monotonic() - started
        finally:
            ssdm.dataset.set_faults(None)
            writer.join()
        # three reads completed well inside the writer's 0.5s publish
        # window: readers never waited on the write path
        assert elapsed < 0.4
        assert len(ssdm.execute(SELECT_ALL).rows) == 2


# -- property: interleaved batches vs the hash-graph oracle ------------------


_SUBJECTS = [URI("http://e/s%d" % i) for i in range(4)]
_PROPS = [URI("http://e/p%d" % i) for i in range(3)]
_VALUES = [Literal(i) for i in range(4)]
_UNIVERSE = [(s, p, v) for s in _SUBJECTS for p in _PROPS for v in _VALUES]

_BATCHES = st.lists(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, len(_UNIVERSE) - 1)),
        min_size=1, max_size=6,
    ),
    min_size=1, max_size=8,
)


class TestSnapshotOracleProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(batches=_BATCHES, data=st.data())
    def test_snapshot_reads_match_oracle_at_every_seq(self, batches, data):
        ds = Dataset()
        manager = SnapshotManager(
            max_snapshots=4096, retain_versions=4096
        )
        ds.snapshots = manager
        ds.publish(0)
        graph = ds.default_graph
        oracle = HashIndexGraph()
        expected = {}
        pinned = {}
        for index, batch in enumerate(batches):
            seq = index + 1
            with ds.writing(seq):
                for add, which in batch:
                    s, p, v = _UNIVERSE[which]
                    if add:
                        graph.add(s, p, v)
                        oracle.add(s, p, v)
                    else:
                        graph.remove(s, p, v)
                        oracle.remove(s, p, v)
            expected[seq] = _triples(oracle)
            pinned[seq] = manager.acquire(manager.retained(seq))
            # interleaved read at a random earlier admission seq
            probe = data.draw(
                st.integers(1, seq), label="probe_seq"
            )
            with snapshot_scope(pinned[probe]):
                assert _triples(graph) == expected[probe]
                assert len(graph) == len(expected[probe])
        subject = _SUBJECTS[0]
        for seq, snapshot in pinned.items():
            with snapshot_scope(snapshot):
                assert _triples(graph) == expected[seq]
                assert graph.count(subject=subject) == sum(
                    1 for t in expected[seq] if t[0] == subject
                )
            snapshot.release()
        assert manager.stats()["snapshot_gone"] == 0


# -- deterministic chaos matrix ----------------------------------------------


class TestChaosMatrix:
    def test_crash_at_publish_recovers_to_wal_state(self, tmp_path):
        wal = str(tmp_path / "wal")
        ssdm = SSDM.open(wal)
        oracle = HashIndexGraph()
        for i in (1, 2):
            _insert(ssdm, i)
            oracle.add(_subject(i), P, Literal(i))
        seq_early = 1
        long_reader = ssdm.mvcc.acquire(ssdm.mvcc.retained(seq_early))
        plan = FaultPlan(crash_points={"publish"})
        ssdm.dataset.set_faults(plan)
        with pytest.raises(SimulatedCrash):
            _insert(ssdm, 3)
        assert plan.crashes == 1
        # the WAL record was fsync'd before the mutation, so the crashed
        # batch is part of durable history
        oracle.add(_subject(3), P, Literal(3))
        plan.crash_points.clear()
        # the long snapshot reader on the crashed instance still reads
        # its admission state, even though the publish never landed
        crashed_graph = ssdm.dataset.default_graph
        with snapshot_scope(long_reader):
            assert _triples(crashed_graph) == {(_subject(1), P, Literal(1))}
        ssdm.close()

        recovered = SSDM.open(wal)
        assert _triples(recovered.graph) == _triples(oracle)
        assert recovered.dataset.published_seq == 3
        _insert(recovered, 4)
        oracle.add(_subject(4), P, Literal(4))
        assert _triples(recovered.graph) == _triples(oracle)
        recovered.close()

    def test_crash_at_consolidate_preserves_logical_state(self):
        graph = Graph()
        for i in range(200):
            graph.add(_subject(i), P, Literal(i))
        version = graph.freeze()
        before = _triples(graph)
        plan = FaultPlan(crash_points={"consolidate"})
        graph.faults = plan
        with pytest.raises(SimulatedCrash):
            graph._ensure_flushed()
        # the merge never swapped anything in: live state and the pinned
        # version are both intact
        assert graph._flushes == 0
        assert _triples(graph) == before
        assert version.size == 200
        plan.crash_points.clear()
        graph._ensure_flushed()
        assert graph._flushes == 1
        assert _triples(graph) == before
        assert {(t.subject, t.property, t.value)
                for t in version.triples()} == before

    def test_writers_and_readers_with_latency_windows(self):
        """The core matrix cell: a writer stream with widened publish
        windows, concurrent readers, exact-seq reads and one long
        snapshot reader — every observation must be an oracle prefix
        state, and every retained seq must equal the oracle replayed to
        that seq."""
        ssdm = SSDM()
        batch_count = 20
        # precompute the oracle state after every batch: odd batches
        # insert, every 5th batch deletes the batch-3-earlier subject
        states = {0: frozenset()}
        oracle = HashIndexGraph()
        operations = []
        for seq in range(1, batch_count + 1):
            if seq % 5 == 0 and seq > 3:
                operations.append(("delete", seq - 3))
                oracle.remove(_subject(seq - 3), P, Literal(seq - 3))
            else:
                operations.append(("insert", seq))
                oracle.add(_subject(seq), P, Literal(seq))
            states[seq] = frozenset(_triples(oracle))
        valid_states = set(states.values())

        plan = FaultPlan(point_delays={"publish": 0.004})
        ssdm.dataset.set_faults(plan)
        errors = []
        writer_done = threading.Event()

        def write():
            try:
                for kind, i in operations:
                    if kind == "insert":
                        ssdm.execute(
                            "INSERT DATA { <http://e/s%d> "
                            "<http://e/p> %d }" % (i, i)
                        )
                    else:
                        ssdm.execute(
                            "DELETE DATA { <http://e/s%d> "
                            "<http://e/p> %d }" % (i, i)
                        )
            except Exception as exc:    # noqa: BLE001 - recorded
                errors.append("writer: %r" % (exc,))
            finally:
                writer_done.set()

        def read():
            while not writer_done.is_set():
                try:
                    rows = ssdm.execute(SELECT_ALL).rows
                    observed = frozenset(
                        (row[0], row[1], Literal(row[2]))
                        for row in rows
                    )
                    if observed not in valid_states:
                        errors.append(
                            "non-prefix state observed: %r" % (observed,)
                        )
                    seq = ssdm.dataset.published_seq
                    try:
                        exact = ssdm.execute(SELECT_ALL, at_seq=seq)
                    except SnapshotGoneError:
                        continue    # ring moved on; acceptable
                    observed = frozenset(
                        (row[0], row[1], Literal(row[2]))
                        for row in exact.rows
                    )
                    if observed not in valid_states:
                        errors.append(
                            "non-prefix at_seq state: %r" % (observed,)
                        )
                except Exception as exc:    # noqa: BLE001 - recorded
                    errors.append("reader: %r" % (exc,))
                    return

        with ExitStack() as stack:
            stack.enter_context(ssdm._read_snapshot())
            admission_seq = ssdm.dataset.published_seq
            writer = threading.Thread(target=write)
            readers = [threading.Thread(target=read) for _ in range(2)]
            try:
                writer.start()
                for thread in readers:
                    thread.start()
            finally:
                writer.join()
                for thread in readers:
                    thread.join()
                ssdm.dataset.set_faults(None)
            # the long reader held its snapshot across the entire
            # writer stream: it still reads its admission state
            held = frozenset(
                (row[0], row[1], Literal(row[2]))
                for row in ssdm.execute(SELECT_ALL).rows
            )
            assert held == states[admission_seq]
        assert errors == []
        # exact-seq replica reads replay to the oracle at each seq
        published = ssdm.dataset.published_seq
        assert published == batch_count
        for seq in range(max(1, published - 7), published + 1):
            rows = ssdm.execute(SELECT_ALL, at_seq=seq).rows
            observed = frozenset(
                (row[0], row[1], Literal(row[2])) for row in rows
            )
            assert observed == states[seq], "divergence at seq %d" % seq

    def test_memory_pressure_reclaims_oldest_snapshot(self):
        ds = Dataset()
        manager = SnapshotManager(max_retained_bytes=1024)
        ds.snapshots = manager
        ds.publish(0)
        graph = ds.default_graph
        with ds.writing(1):
            for i in range(2000):
                graph.add(_subject(i), P, Literal(i))
            graph._ensure_flushed()
        old_version = manager.retained(1)
        older = manager.acquire(old_version)
        newer = manager.acquire(old_version)
        # consolidating again retires the seq-1 index arrays: the two
        # pinned snapshots now hold far more than the byte bound, so the
        # oldest is reclaimed (the newest always survives)
        with ds.writing(2):
            for i in range(2000, 4000):
                graph.add(_subject(i), P, Literal(i))
            graph._ensure_flushed()
        assert older.gone and not newer.gone
        with pytest.raises(SnapshotGoneError):
            older.check()
        assert manager.stats()["snapshot_gone"] == 1
        assert manager.retained_bytes() > 1024
        newer.release()
        assert manager.retained_bytes() == 0

    def test_forced_pressure_degrades_but_reads_stay_correct(self):
        ssdm = SSDM()
        for i in (1, 2, 3):
            _insert(ssdm, i)
        plan = FaultPlan()
        try:
            plan.set_memory_pressure(0.97)
            assert get_governor().pressure() >= 0.97
            rows = ssdm.execute(SELECT_ALL).rows
            assert {row[2] for row in rows} == {1, 2, 3}
            assert {
                row[2]
                for row in ssdm.execute(SELECT_ALL, at_seq=2).rows
            } == {1, 2}
        finally:
            plan.set_memory_pressure(None)

    def test_governor_counts_retained_snapshot_bytes(self):
        ds = Dataset()
        manager = SnapshotManager()
        ds.snapshots = manager
        ds.publish(0)
        graph = ds.default_graph
        with ds.writing(1):
            for i in range(2000):
                graph.add(_subject(i), P, Literal(i))
            graph._ensure_flushed()
        pinned = manager.acquire(manager.retained(1))
        with ds.writing(2):
            for i in range(2000, 4000):
                graph.add(_subject(i), P, Literal(i))
            graph._ensure_flushed()
        governor = get_governor()
        governor.add_retained_source(manager)
        try:
            assert manager.retained_bytes() > 0
            assert governor.retained_bytes() >= manager.retained_bytes()
        finally:
            pinned.release()
        assert manager.retained_bytes() == 0


# -- wire protocol and observability ----------------------------------------


@pytest.fixture
def served():
    ssdm = SSDM()
    server = SSDMServer(ssdm).start()
    client = SSDMClient("127.0.0.1", server.server_address[1])
    yield ssdm, client
    client.close()
    server.stop()


class TestMvccOverWire:
    def test_at_seq_reads_exact_version(self, served):
        ssdm, client = served
        for i in (1, 2, 3):
            client.update(
                "INSERT DATA { <http://e/s%d> <http://e/p> %d }" % (i, i)
            )
        published = ssdm.dataset.published_seq
        result = client.query(SELECT_ALL, at_seq=published - 2)
        assert len(result.rows) == 1
        result = client.query(SELECT_ALL, at_seq=published)
        assert len(result.rows) == 3

    def test_lagging_and_snapshot_gone_codes(self, served):
        ssdm, client = served
        client.update("INSERT DATA { <http://e/s1> <http://e/p> 1 }")
        with pytest.raises(ReplicaLaggingError) as lagging:
            client.query(SELECT_ALL, at_seq=ssdm.dataset.published_seq + 9)
        assert lagging.value.retryable is True
        for i in range(2, 14):      # evict seq 1 from the ring
            client.update(
                "INSERT DATA { <http://e/s%d> <http://e/p> %d }" % (i, i)
            )
        with pytest.raises(SnapshotGoneError) as gone:
            client.query(SELECT_ALL, at_seq=1)
        assert gone.value.retryable is False
        stats = client.stats()
        assert stats["server"]["snapshot_gone"] == 1

    def test_stats_expose_mvcc_block(self, served):
        ssdm, client = served
        client.update("INSERT DATA { <http://e/s1> <http://e/p> 1 }")
        client.query(SELECT_ALL)
        block = client.stats()["mvcc"]
        assert block["published_seq"] == ssdm.dataset.published_seq
        assert block["acquired"] >= 1
        assert block["live_snapshots"] == 0
        assert "consolidations" in block
        assert "retained_bytes" in block


class TestMvccStats:
    def test_ssdm_stats_mvcc_block(self):
        ssdm = SSDM()
        _insert(ssdm, 1)
        ssdm.execute(SELECT_ALL)
        block = ssdm.stats()["mvcc"]
        assert block["published_seq"] == 1
        assert block["last_published_seq"] == 1
        assert block["acquired"] >= 1
        assert block["snapshot_gone"] == 0
        assert block["consolidations"] == 0
        assert block["retained_versions"] >= 1

    def test_dump_metrics_renders_mvcc_first(self):
        import io
        import os
        import sys

        scripts = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "scripts",
        )
        if scripts not in sys.path:
            sys.path.insert(0, scripts)
        import dump_metrics

        ssdm = SSDM()
        _insert(ssdm, 1)
        out = io.StringIO()
        dump_metrics.render_stats(ssdm.stats(), out)
        lines = [line for line in out.getvalue().splitlines() if line]
        assert lines[0].startswith("mvcc.")
        assert any(line.startswith("mvcc.published_seq") for line in lines)
