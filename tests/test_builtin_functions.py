"""Unit tests of the built-in function library (repro.engine.functions)."""

import pytest

from repro.arrays import NumericArray
from repro.engine import functions as fn
from repro.exceptions import EvaluationError, TypeMismatchError
from repro.rdf import BlankNode, Literal, URI


class TestRuntimeConversion:
    def test_plain_literals_unwrap(self):
        assert fn.runtime(Literal(5)) == 5
        assert fn.runtime(Literal("s")) == "s"
        assert fn.runtime(Literal(True)) is True

    def test_lang_literal_stays_wrapped(self):
        lit = Literal("chat", lang="fr")
        assert fn.runtime(lit) is lit

    def test_uri_passthrough(self):
        uri = URI("http://e/x")
        assert fn.runtime(uri) is uri

    def test_to_term_wraps_scalars(self):
        assert fn.to_term(5) == Literal(5)
        assert fn.to_term("x") == Literal("x")
        assert fn.to_term(True) == Literal(True)

    def test_to_term_keeps_terms(self):
        uri = URI("http://e/x")
        assert fn.to_term(uri) is uri

    def test_to_term_rejects_junk(self):
        with pytest.raises(EvaluationError):
            fn.to_term(object())


class TestEffectiveBooleanValue:
    @pytest.mark.parametrize("value,expected", [
        (True, True), (False, False),
        (0, False), (1, True), (0.0, False), (-2.5, True),
        ("", False), ("x", True),
        (Literal(0), False), (Literal("y"), True),
        (URI("http://e/x"), True),
        (NumericArray([1]), True),
    ])
    def test_cases(self, value, expected):
        assert fn.effective_boolean_value(value) is expected

    def test_unbound_errors(self):
        with pytest.raises(EvaluationError):
            fn.effective_boolean_value(None)


class TestStringValue:
    def test_str_of_kinds(self):
        assert fn.string_value(URI("http://e/x")) == "http://e/x"
        assert fn.string_value(5) == "5"
        assert fn.string_value(True) == "true"
        assert fn.string_value(Literal("chat", lang="fr")) == "chat"
        assert fn.string_value(NumericArray([1, 2])) == "[1, 2]"


class TestStringBuiltins:
    def call(self, name, *args):
        return fn.BUILTINS[name](list(args))

    def test_substr_bounds(self):
        assert self.call("SUBSTR", "hello", 2) == "ello"
        assert self.call("SUBSTR", "hello", 2, 2) == "el"
        assert self.call("SUBSTR", "hello", 10) == ""

    def test_strbefore_strafter(self):
        assert self.call("STRBEFORE", "a-b-c", "-") == "a"
        assert self.call("STRAFTER", "a-b-c", "-") == "b-c"
        assert self.call("STRBEFORE", "abc", "x") == ""

    def test_encode_for_uri(self):
        assert self.call("ENCODE_FOR_URI", "a b/c") == "a%20b%2Fc"

    def test_replace_with_flags(self):
        assert self.call("REPLACE", "aAa", "a", "x", "i") == "xxx"

    def test_regex_flags(self):
        assert self.call("REGEX", "Hello", "^h", "i") is True
        assert self.call("REGEX", "Hello", "^h") is False

    def test_langmatches(self):
        assert self.call("LANGMATCHES", "fr-BE", "fr") is True
        assert self.call("LANGMATCHES", "fr", "*") is True
        assert self.call("LANGMATCHES", "", "*") is False

    def test_concat_requires_strings(self):
        with pytest.raises(TypeMismatchError):
            self.call("CONCAT", "a", 5)


class TestNumericBuiltins:
    def call(self, name, *args):
        return fn.BUILTINS[name](list(args))

    def test_round_half_up(self):
        assert self.call("ROUND", 2.5) == 3
        assert self.call("ROUND", -2.5) == -2

    def test_power_mod(self):
        assert self.call("POWER", 2, 10) == 1024.0
        assert self.call("MOD", 10, 3) == 1

    def test_datetime_accessors(self):
        stamp = "2016-03-23T14:30:45"
        assert self.call("YEAR", stamp) == 2016
        assert self.call("MONTH", stamp) == 3
        assert self.call("DAY", stamp) == 23
        assert self.call("HOURS", stamp) == 14
        assert self.call("MINUTES", stamp) == 30
        assert self.call("SECONDS", stamp) == 45.0

    def test_number_from_zero_dim_array(self):
        zero_d = NumericArray([5.0]).subscript([__import__(
            "repro.arrays", fromlist=["Span"]).Span(0, 1)])
        assert fn.ensure_number(7) == 7
        with pytest.raises(TypeMismatchError):
            fn.ensure_number("x")


class TestTermBuiltins:
    def call(self, name, *args):
        return fn.BUILTINS[name](list(args))

    def test_datatype(self):
        assert self.call("DATATYPE", 5) == Literal(5).datatype
        assert self.call("DATATYPE", Literal("x")) == \
            Literal("x").datatype

    def test_iri_and_bnode(self):
        assert self.call("IRI", "http://e/x") == URI("http://e/x")
        assert isinstance(self.call("BNODE"), BlankNode)

    def test_sameterm(self):
        assert self.call("SAMETERM", 5, 5) is True
        assert self.call("SAMETERM", 5, 5.0) is False  # different terms

    def test_type_predicates(self):
        assert self.call("ISIRI", URI("http://e/x")) is True
        assert self.call("ISLITERAL", "text") is True
        assert self.call("ISBLANK", BlankNode()) is True
        assert self.call("ISNUMERIC", True) is False

    def test_strdt_strlang(self):
        lit = self.call(
            "STRDT", "5",
            URI("http://www.w3.org/2001/XMLSchema#integer"),
        )
        assert lit.value == 5
        tagged = self.call("STRLANG", "chat", "fr")
        assert tagged.lang == "fr"

    def test_uuid_unique(self):
        assert self.call("UUID") != self.call("UUID")
        assert len(self.call("STRUUID")) == 36
