"""FILTER expressions: arithmetic, comparisons, logic with error
semantics, built-in functions, EXISTS, IN."""

import pytest

from repro import SSDM, URI, Literal

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture
def data(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:a ex:v 10 ; ex:name "alpha" .
        ex:b ex:v 20 ; ex:name "Beta" .
        ex:c ex:v 30 .
        ex:d ex:w "not a number" .
    """)
    return ssdm


def names(result):
    return [row[0] for row in result.rows]


class TestComparisons:
    def test_numeric_comparison(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v FILTER(?v > 15) } ORDER BY ?s""")
        assert names(r) == [URI("http://e/b"), URI("http://e/c")]

    def test_equality_int_float(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?v = 10.0) }")
        assert len(r.rows) == 1

    def test_string_comparison(self, data):
        r = data.execute(EXP + """
            SELECT ?n WHERE { ?s ex:name ?n FILTER(?n > "Zeta") }""")
        assert names(r) == ["alpha"]      # lowercase sorts after 'Z'

    def test_uri_equality(self, data):
        r = data.execute(EXP + """
            SELECT ?v WHERE { ?s ex:v ?v FILTER(?s = ex:b) }""")
        assert r.rows == [(20,)]

    def test_uri_ordering_rejected_silently(self, data):
        # type error in FILTER eliminates the row, not the query
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?s < 3) }")
        assert r.rows == []

    def test_not_equal(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?v != 20) }")
        assert len(r.rows) == 2


class TestArithmetic:
    def test_all_operators(self, data):
        r = data.execute(EXP + """
            SELECT ?r WHERE { ex:a ex:v ?v
                BIND(((?v + 5) * 2 - 10) / 2 AS ?r) }""")
        assert r.rows == [(10.0,)]

    def test_unary_minus(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(-?v < -25) }")
        assert names(r) == [URI("http://e/c")]

    def test_division_by_zero_drops_row(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?v / 0 > 1) }")
        assert r.rows == []

    def test_arithmetic_on_string_drops_row(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:w ?v "
                         "FILTER(?v + 1 > 0) }")
        assert r.rows == []


class TestLogic:
    def test_and(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?v > 5 && ?v < 25) } ORDER BY ?s")
        assert len(r.rows) == 2

    def test_or(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?v < 15 || ?v > 25) }")
        assert len(r.rows) == 2

    def test_not(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(!(?v = 20)) }")
        assert len(r.rows) == 2

    def test_error_and_false_is_false(self, data):
        # (error && false) = false: the row survives the negation
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER(!( (?missing > 1) && (?v > 100) )) }""")
        assert len(r.rows) == 3

    def test_error_or_true_is_true(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER( (?missing > 1) || (?v > 5) ) }""")
        assert len(r.rows) == 3

    def test_error_or_false_drops(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER( (?missing > 1) || (?v > 100) ) }""")
        assert r.rows == []

    def test_effective_boolean_value_of_number(self, data):
        r = data.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?v - 10) } ORDER BY ?s")
        assert len(r.rows) == 2          # v=10 gives 0 -> false


class TestBuiltins:
    def test_bound(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                OPTIONAL { ?s ex:name ?n } FILTER(!BOUND(?n)) }""")
        assert names(r) == [URI("http://e/c")]

    def test_if(self, data):
        r = data.execute(EXP + """
            SELECT ?band WHERE { ex:a ex:v ?v
                BIND(IF(?v > 15, "high", "low") AS ?band) }""")
        assert r.rows == [("low",)]

    def test_coalesce(self, data):
        r = data.execute(EXP + """
            SELECT ?x WHERE { ex:c ex:v ?v
                OPTIONAL { ex:c ex:name ?n }
                BIND(COALESCE(?n, "unnamed") AS ?x) }""")
        assert r.rows == [("unnamed",)]

    def test_str_of_uri(self, data):
        r = data.execute(EXP + """
            SELECT ?t WHERE { ?s ex:v 10 BIND(STR(?s) AS ?t) }""")
        assert r.rows == [("http://e/a",)]

    def test_string_functions(self, data):
        r = data.execute(EXP + """
            SELECT ?u ?len ?sub WHERE { ex:a ex:name ?n
                BIND(UCASE(?n) AS ?u) BIND(STRLEN(?n) AS ?len)
                BIND(SUBSTR(?n, 2, 3) AS ?sub) }""")
        assert r.rows == [("ALPHA", 5, "lph")]

    def test_regex(self, data):
        r = data.execute(EXP + """
            SELECT ?n WHERE { ?s ex:name ?n
                FILTER(REGEX(?n, "^b", "i")) }""")
        assert names(r) == ["Beta"]

    def test_contains_strstarts(self, data):
        r = data.execute(EXP + """
            SELECT ?n WHERE { ?s ex:name ?n
                FILTER(CONTAINS(?n, "lph") && STRSTARTS(?n, "al")) }""")
        assert names(r) == ["alpha"]

    def test_replace(self, data):
        r = data.execute(EXP + """
            SELECT ?x WHERE { ex:a ex:name ?n
                BIND(REPLACE(?n, "a", "o") AS ?x) }""")
        assert r.rows == [("olpho",)]

    def test_numeric_functions(self, ssdm):
        ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:v 2.7 .")
        r = ssdm.execute(EXP + """
            SELECT ?abs ?c ?f ?r ?sq WHERE { ?s ex:v ?v
                BIND(ABS(0 - ?v) AS ?abs) BIND(CEIL(?v) AS ?c)
                BIND(FLOOR(?v) AS ?f) BIND(ROUND(?v) AS ?r)
                BIND(SQRT(4) AS ?sq) }""")
        assert r.rows == [(2.7, 3, 2, 3, 2.0)]

    def test_type_predicates(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER(ISIRI(?s) && ISLITERAL(?v) && ISNUMERIC(?v)
                       && !ISBLANK(?s)) }""")
        assert len(r.rows) == 3

    def test_datatype_and_lang(self, ssdm):
        ssdm.load_turtle_text(
            '@prefix ex: <http://e/> . ex:a ex:t "chat"@fr .'
        )
        r = ssdm.execute(EXP + """
            SELECT ?l WHERE { ?s ex:t ?t BIND(LANG(?t) AS ?l)
                FILTER(LANGMATCHES(LANG(?t), "fr")) }""")
        assert r.rows == [("fr",)]

    def test_iri_constructor(self, data):
        r = data.execute(EXP + """
            SELECT ?u WHERE { ex:a ex:v ?v
                BIND(IRI(CONCAT("http://e/n", STR(?v))) AS ?u) }""")
        assert r.rows == [(URI("http://e/n10"),)]

    def test_strdt(self, data):
        r = data.execute(EXP + """
            SELECT ?x WHERE { ex:a ex:v ?v
                BIND(STRDT("7", xsd:integer) AS ?x) }""")
        assert r.rows == [(7,)]


class TestExistsAndIn:
    def test_exists(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER(EXISTS { ?s ex:name ?n }) } ORDER BY ?s""")
        assert len(r.rows) == 2

    def test_not_exists(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER(NOT EXISTS { ?s ex:name ?n }) }""")
        assert names(r) == [URI("http://e/c")]

    def test_exists_correlates_on_bound_vars(self, data):
        # EXISTS sees the current row's ?s — not just any subject
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER(EXISTS { ?s ex:name "alpha" }) }""")
        assert names(r) == [URI("http://e/a")]

    def test_in(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v FILTER(?v IN (10, 30, 99)) }
            ORDER BY ?s""")
        assert len(r.rows) == 2

    def test_not_in(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v FILTER(?v NOT IN (10, 30)) }""")
        assert names(r) == [URI("http://e/b")]

    def test_in_with_uris(self, data):
        r = data.execute(EXP + """
            SELECT ?v WHERE { ?s ex:v ?v FILTER(?s IN (ex:a, ex:c)) }
            ORDER BY ?v""")
        assert r.column("v") == [10, 30]
