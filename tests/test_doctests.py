"""Run the doctest examples embedded in module and class docstrings, so
the documentation's code snippets are guaranteed to stay true."""

import doctest

import pytest

import repro.arrays.chunks
import repro.arrays.nma
import repro.engine.bindings
import repro.rdf.namespace
import repro.rdf.term
import repro.storage.spd

MODULES = [
    repro.rdf.term,
    repro.rdf.namespace,
    repro.arrays.nma,
    repro.arrays.chunks,
    repro.storage.spd,
    repro.engine.bindings,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        "%d doctest failure(s) in %s" % (results.failed, module.__name__)
    )
    assert results.attempted > 0, (
        "expected at least one doctest in %s" % module.__name__
    )
