"""The macro benchmark: generator determinism, oracle fingerprints,
the trajectory gate, and a harness smoke run.

All at the ``tiny`` scale (~1.3k triples) so the whole file runs in
seconds while still exercising the exact code paths ``make
bench-macro-smoke`` and CI use.
"""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for entry in (REPO_ROOT, os.path.join(REPO_ROOT, "scripts")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.macro import generator as gen            # noqa: E402
from benchmarks.macro import run as macro_run            # noqa: E402
from benchmarks.macro.queries import QUERIES, fingerprint  # noqa: E402

import load_harness                                      # noqa: E402

from repro.rdf.hashgraph import HashIndexGraph           # noqa: E402
from repro.ssdm import SSDM                              # noqa: E402


class TestGeneratorDeterminism:
    def test_same_seed_is_byte_identical(self):
        assert gen.ntriples_text("tiny", 7) == gen.ntriples_text("tiny", 7)

    def test_different_seed_differs(self):
        assert gen.ntriples_text("tiny", 7) != gen.ntriples_text("tiny", 8)

    def test_batches_carry_every_line(self):
        statements = list(gen.lines("tiny", 7))
        batched = []
        for insert in gen.insert_batches("tiny", 7, batch_size=100):
            body = insert[len("INSERT DATA {\n"):-len("\n}")]
            batched.extend(body.split("\n"))
        assert batched == statements

    def test_citations_point_backwards(self):
        for line in gen.lines("tiny", 3):
            if gen.DCT_REFERENCES not in line:
                continue
            source, target = line.split(gen.DCT_REFERENCES.join(("<", ">")))
            a = int(source.rsplit("/A", 1)[1].rstrip("> "))
            b = int(target.rsplit("/A", 1)[1].rstrip("> ."))
            assert b < a

    def test_identical_fingerprints_across_loads(self):
        first, second = SSDM(), SSDM()
        try:
            gen.load(first, "tiny", 7)
            gen.load(second, "tiny", 7)
            for query in QUERIES[:4]:
                assert fingerprint(first.execute(query.text)) \
                    == fingerprint(second.execute(query.text))
        finally:
            first.close()
            second.close()


class TestOracleFingerprints:
    @pytest.fixture(scope="class")
    def stores(self):
        indexed = SSDM()
        oracle = SSDM.with_triple_store(HashIndexGraph())
        triples = gen.load(indexed, "tiny")
        assert gen.load(oracle, "tiny") == triples
        yield indexed, oracle
        indexed.close()
        oracle.close()

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    def test_query_matches_oracle(self, stores, query):
        indexed, oracle = stores
        fast = fingerprint(indexed.execute(query.text))
        slow = fingerprint(oracle.execute(query.text))
        assert fast == slow
        if query.name not in ("q02_article_star_optional",):
            assert fast["rows"] > 0, "degenerate query: no rows at tiny"


class TestTrajectoryGate:
    def _point(self, rows=3, digest="aa", scale="tiny"):
        return {
            "scale": scale, "seed": 42,
            "generator_version": gen.GENERATOR_VERSION,
            "queries": {"q": {"rows": rows, "hash": digest}},
        }

    def test_first_point_passes(self):
        trajectory = {"schema": 1, "points": []}
        assert macro_run.check_trajectory(trajectory, self._point()) == []

    def test_matching_point_passes(self, capsys):
        trajectory = {"schema": 1, "points": [self._point()]}
        assert macro_run.check_trajectory(trajectory, self._point()) == []

    def test_fingerprint_drift_fails(self, capsys):
        trajectory = {"schema": 1, "points": [self._point()]}
        drift = macro_run.check_trajectory(
            trajectory, self._point(digest="bb")
        )
        assert drift == ["q"]
        assert "TRAJECTORY MISMATCH" in capsys.readouterr().out

    def test_other_scale_is_not_compared(self):
        trajectory = {"schema": 1, "points": [self._point(scale="full")]}
        assert macro_run.check_trajectory(
            trajectory, self._point(digest="bb")
        ) == []

    def test_runner_end_to_end(self, tmp_path, capsys):
        output = str(tmp_path / "traj.json")
        assert macro_run.main([
            "--scale", "tiny", "--repeat", "1", "--output", output,
        ]) == 0
        trajectory = json.loads(open(output).read())
        assert len(trajectory["points"]) == 1
        point = trajectory["points"][0]
        assert point["triples"] > 1000
        assert set(point["queries"]) == {q.name for q in QUERIES}
        # a second run must hit the gate and match
        assert macro_run.main([
            "--scale", "tiny", "--repeat", "1", "--output", output,
        ]) == 0
        assert "fingerprints match the committed point" \
            in capsys.readouterr().out


class TestLoadHarnessSmoke:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.client.server import SSDMServer

        ssdm = SSDM()
        gen.load(ssdm, "tiny")
        server = SSDMServer(ssdm, "127.0.0.1", 0).start()
        yield ("127.0.0.1", server.server_address[1])
        server.stop()
        ssdm.close()

    def test_open_loop_report(self, server):
        report = load_harness.run_harness(
            [server], rate=120, duration=1.0, processes=1, threads=2,
            query_names=["q01_journal_star", "q06_journal_authors"],
        )
        assert report["issued"] == 120
        assert report["ok"] == 120
        assert report["errors"] == {}
        latency = report["latency_ms"]
        for key in ("p50", "p99", "p999"):
            assert latency[key] is not None
            assert latency[key] > 0
        assert latency["p50"] <= latency["p99"] <= latency["p999"]
        assert report["histogram"]["count"] == 120

    def test_errors_grouped_by_code(self, server):
        bad = load_harness.QUERY_BY_NAME["q01_journal_star"]
        broken = type(bad)("broken", "broken", "SELECT WHERE {{{")
        report = load_harness.run_harness(
            [server], rate=30, duration=0.3, processes=1, threads=1,
        )
        assert report["error_rate"] == 0
        # drive a parse error through the real client path
        outcome = load_harness._worker_loop(
            0, 1, [server], [broken], rate=50, count=5,
            start_at=0.0, timeout=5.0, seed=1,
        )
        assert outcome["errors"] == {"PARSE": 5}
        assert outcome["ok"] == 0

    def test_server_side_view(self, server):
        load_harness.run_harness(
            [server], rate=30, duration=0.3, processes=1, threads=1,
        )
        view = load_harness.server_side_view(server)
        assert view["queries_total"] > 0
        assert "slowlog_entries" in view

    def test_slo_exit_codes(self, server, capsys):
        endpoint = "%s:%d" % server
        common = [
            "--endpoints", endpoint, "--rate", "40",
            "--duration", "0.5", "--threads", "1",
        ]
        assert load_harness.main(
            common + ["--slo-p99-ms", "60000", "--slo-error-rate", "0.5"]
        ) == 0
        assert "SLO gates: pass" in capsys.readouterr().out
        assert load_harness.main(
            common + ["--slo-p99-ms", "0.0001"]
        ) == 1
        assert "SLO FAIL" in capsys.readouterr().out
