"""EXPLAIN variants and WITH-graph updates."""

import pytest

from repro import SSDM, URI


class TestExplainCosts:
    def test_costs_section_present(self, foaf):
        text = foaf.explain(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
            "SELECT ?n WHERE { ?p a foaf:Person ; foaf:name ?n }",
            costs=True,
        )
        assert "-- cost estimates --" in text
        assert "~" in text

    def test_selective_pattern_listed_first(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:common 1 . ex:b ex:common 2 . ex:c ex:common 3 .
            ex:a ex:rare 1 .
        """)
        text = ssdm.explain(
            "PREFIX ex: <http://e/> SELECT ?s WHERE "
            "{ ?s ex:common ?v . ?s ex:rare ?w }",
            costs=True,
        )
        cost_lines = [
            line for line in text.splitlines() if "~" in line
        ]
        assert "rare" in cost_lines[0]


class TestWithGraphUpdates:
    def test_with_scopes_modify(self, ssdm):
        ssdm.execute(
            "PREFIX ex: <http://e/> "
            "INSERT DATA { GRAPH ex:g { ex:s ex:p 1 } }"
        )
        ssdm.execute(
            "PREFIX ex: <http://e/> WITH ex:g "
            "DELETE { ?s ex:p ?v } INSERT { ?s ex:q ?v } "
            "WHERE { ?s ex:p ?v }"
        )
        named = ssdm.dataset.graph(URI("http://e/g"))
        assert named.count(None, URI("http://e/q"), None) == 1
        assert named.count(None, URI("http://e/p"), None) == 0
        assert len(ssdm.graph) == 0

    def test_with_does_not_touch_default(self, ssdm):
        ssdm.execute("PREFIX ex: <http://e/> INSERT DATA { ex:s ex:p 1 }")
        ssdm.execute(
            "PREFIX ex: <http://e/> WITH ex:g "
            "DELETE { ?s ex:p ?v } WHERE { ?s ex:p ?v }"
        )
        assert len(ssdm.graph) == 1
