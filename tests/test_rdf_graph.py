"""Graph store: indexing, pattern matching, statistics, mutation."""

import pytest

from repro.exceptions import SciSparqlError
from repro.rdf import Graph, Dataset, URI, BlankNode, Literal
from repro.arrays import NumericArray

EX = "http://example.org/"


def uri(name):
    return URI(EX + name)


@pytest.fixture
def graph():
    g = Graph()
    g.add(uri("a"), uri("knows"), uri("b"))
    g.add(uri("a"), uri("knows"), uri("c"))
    g.add(uri("b"), uri("knows"), uri("c"))
    g.add(uri("a"), uri("name"), Literal("Alice"))
    g.add(uri("b"), uri("name"), Literal("Bob"))
    return g


class TestBasicOps:
    def test_len(self, graph):
        assert len(graph) == 5

    def test_duplicate_insert_ignored(self, graph):
        graph.add(uri("a"), uri("knows"), uri("b"))
        assert len(graph) == 5

    def test_contains(self, graph):
        assert (uri("a"), uri("knows"), uri("b")) in graph
        assert (uri("c"), uri("knows"), uri("b")) not in graph

    def test_remove(self, graph):
        assert graph.remove(uri("a"), uri("knows"), uri("b"))
        assert len(graph) == 4
        assert not graph.remove(uri("a"), uri("knows"), uri("b"))

    def test_remove_cleans_indexes(self, graph):
        graph.remove(uri("b"), uri("name"), Literal("Bob"))
        assert list(graph.triples(None, uri("name"), Literal("Bob"))) == []
        assert list(graph.triples(uri("b"), uri("name"), None)) == []

    def test_remove_matching(self, graph):
        removed = graph.remove_matching(uri("a"), None, None)
        assert removed == 3
        assert len(graph) == 2

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert list(graph.triples()) == []

    def test_copy_independent(self, graph):
        clone = graph.copy()
        clone.add(uri("x"), uri("p"), Literal(1))
        assert len(graph) == 5
        assert len(clone) == 6


class TestPatternMatching:
    def test_fully_bound(self, graph):
        matches = list(graph.triples(uri("a"), uri("knows"), uri("b")))
        assert len(matches) == 1

    def test_subject_bound(self, graph):
        assert len(list(graph.triples(uri("a")))) == 3

    def test_predicate_bound(self, graph):
        assert len(list(graph.triples(None, uri("knows"), None))) == 3

    def test_value_bound(self, graph):
        assert len(list(graph.triples(None, None, uri("c")))) == 2

    def test_subject_predicate(self, graph):
        assert len(list(graph.triples(uri("a"), uri("knows")))) == 2

    def test_predicate_value(self, graph):
        matches = list(graph.triples(None, uri("knows"), uri("c")))
        assert {t.subject for t in matches} == {uri("a"), uri("b")}

    def test_subject_value(self, graph):
        matches = list(graph.triples(uri("a"), None, uri("b")))
        assert [t.property for t in matches] == [uri("knows")]

    def test_no_match_returns_empty(self, graph):
        assert list(graph.triples(uri("zzz"))) == []

    def test_full_scan(self, graph):
        assert len(list(graph.triples())) == 5

    def test_count(self, graph):
        assert graph.count() == 5
        assert graph.count(None, uri("knows"), None) == 3
        assert graph.count(uri("a"), uri("knows"), None) == 2


class TestAccessors:
    def test_subjects(self, graph):
        assert set(graph.subjects(uri("name"))) == {uri("a"), uri("b")}

    def test_values(self, graph):
        assert set(graph.values(uri("a"), uri("knows"))) == {
            uri("b"), uri("c")
        }

    def test_value_single(self, graph):
        assert graph.value(uri("a"), uri("name")) == Literal("Alice")
        assert graph.value(uri("zzz"), uri("name"), "dflt") == "dflt"

    def test_properties(self, graph):
        assert set(graph.properties(uri("a"))) == {
            uri("knows"), uri("name")
        }


class TestValidation:
    def test_literal_subject_rejected(self):
        with pytest.raises(SciSparqlError):
            Graph().add(Literal(1), uri("p"), Literal(2))

    def test_non_uri_predicate_rejected(self):
        with pytest.raises(SciSparqlError):
            Graph().add(uri("s"), BlankNode(), Literal(2))

    def test_random_object_rejected(self):
        with pytest.raises(SciSparqlError):
            Graph().add(uri("s"), uri("p"), object())

    def test_array_value_allowed(self):
        g = Graph()
        g.add(uri("s"), uri("p"), NumericArray([1, 2, 3]))
        assert len(g) == 1


class TestStatistics:
    def test_triple_count(self, graph):
        assert graph.statistics.triple_count == 5

    def test_property_count(self, graph):
        assert graph.statistics.property_count(uri("knows")) == 3
        assert graph.statistics.property_count(uri("nope")) == 0

    def test_distinct_subjects(self, graph):
        assert graph.statistics.distinct_subjects(uri("knows")) == 2
        assert graph.statistics.distinct_subjects() == 2

    def test_distinct_values(self, graph):
        assert graph.statistics.distinct_values(uri("knows")) == 2

    def test_fanout(self, graph):
        assert graph.statistics.fanout(uri("knows")) == pytest.approx(1.5)

    def test_fanin(self, graph):
        assert graph.statistics.fanin(uri("knows")) == pytest.approx(1.5)

    def test_fanout_unknown_property(self, graph):
        assert graph.statistics.fanout(uri("nope")) == 1.0


class TestArrayValues:
    def test_array_equality_matching(self):
        g = Graph()
        g.add(uri("s"), uri("p"), NumericArray([[1, 2], [3, 4]]))
        matches = list(
            g.triples(None, None, NumericArray([[1, 2], [3, 4]]))
        )
        assert len(matches) == 1

    def test_different_arrays_distinct(self):
        g = Graph()
        g.add(uri("s"), uri("p"), NumericArray([1]))
        g.add(uri("s"), uri("p"), NumericArray([2]))
        assert len(g) == 2


class TestDataset:
    def test_default_graph(self):
        ds = Dataset()
        assert ds.graph(None) is ds.default_graph

    def test_named_graph_created_on_demand(self):
        ds = Dataset()
        g = ds.graph(uri("g1"))
        assert ds.graph(uri("g1")) is g

    def test_graph_no_create(self):
        ds = Dataset()
        assert ds.graph(uri("g1"), create=False) is None

    def test_drop(self):
        ds = Dataset()
        ds.graph(uri("g1")).add(uri("s"), uri("p"), Literal(1))
        assert ds.drop(uri("g1"))
        assert not ds.drop(uri("g1"))

    def test_union_triples(self):
        ds = Dataset()
        ds.default_graph.add(uri("s"), uri("p"), Literal(1))
        ds.graph(uri("g")).add(uri("s"), uri("p"), Literal(2))
        assert len(list(ds.union_triples(uri("s")))) == 2
        assert len(ds) == 2

    def test_string_name_coerced(self):
        ds = Dataset()
        g = ds.graph(EX + "g1")
        assert ds.graph(URI(EX + "g1")) is g


def test_to_ntriples_roundtrippable(graph):
    text = graph.to_ntriples()
    assert text.count(" .") == 5
    assert "<%sknows>" % EX in text
