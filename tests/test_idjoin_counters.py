"""Thread-safety of the fast-path solve/fallback counters.

The counters are incremented on every BGP evaluation — the hottest
path in the engine — so they use per-thread cells with no lock on
``increment``; reads aggregate the cells under a lock.  These tests pin
exactness under contention and the dict-like read API the parity tests
rely on.
"""

import threading

from repro import SSDM
from repro.engine import idjoin
from repro.engine.idjoin import _FastPathCounters


class TestFastPathCounters:
    def test_dict_like_reads(self):
        counters = _FastPathCounters(("solve", "fallback"))
        assert counters["solve"] == 0
        counters.increment("solve")
        counters.increment("solve")
        counters.increment("fallback")
        assert counters["solve"] == 2
        assert counters["fallback"] == 1
        assert counters.snapshot() == {"solve": 2, "fallback": 1}

    def test_concurrent_increments_are_exact(self):
        counters = _FastPathCounters(("solve", "fallback"))
        threads, per_thread = 8, 5000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counters.increment("solve")

        workers = [threading.Thread(target=hammer)
                   for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counters["solve"] == threads * per_thread
        assert counters["fallback"] == 0

    def test_counts_from_worker_threads_are_visible(self):
        """Queries on other threads land in the aggregated read."""
        ssdm = SSDM()
        ssdm.prefix("ex", "http://e/")
        ssdm.execute(
            "PREFIX ex: <http://e/> INSERT DATA { ex:a ex:p ex:b . }"
        )
        query = "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:p ?o }"
        before = idjoin.counters["solve"]
        rounds = 4

        def run():
            for _ in range(rounds):
                ssdm.execute(query)

        workers = [threading.Thread(target=run) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert idjoin.counters["solve"] >= before + 4 * rounds
        ssdm.close()
