"""FROM / FROM NAMED dataset clauses (section 3.3.4)."""

import pytest

from repro import SSDM, URI


@pytest.fixture
def multi(ssdm):
    ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:p 0 .")
    ssdm.load_turtle_text(
        "@prefix ex: <http://e/> . ex:a ex:p 1 .",
        graph=URI("http://g/one"),
    )
    ssdm.load_turtle_text(
        "@prefix ex: <http://e/> . ex:a ex:p 2 .",
        graph=URI("http://g/two"),
    )
    return ssdm


class TestFrom:
    def test_from_replaces_default(self, multi):
        r = multi.execute(
            "SELECT ?v FROM <http://g/one> WHERE { ?s ?p ?v }"
        )
        assert r.column("v") == [1]

    def test_from_merges_multiple(self, multi):
        r = multi.execute(
            "SELECT ?v FROM <http://g/one> FROM <http://g/two> "
            "WHERE { ?s ?p ?v } ORDER BY ?v"
        )
        assert r.column("v") == [1, 2]

    def test_from_unknown_graph_empty(self, multi):
        r = multi.execute(
            "SELECT ?v FROM <http://g/none> WHERE { ?s ?p ?v }"
        )
        assert r.rows == []

    def test_without_from_uses_default(self, multi):
        r = multi.execute("SELECT ?v WHERE { ?s ?p ?v }")
        assert r.column("v") == [0]

    def test_state_restored_after_query(self, multi):
        multi.execute("SELECT ?v FROM <http://g/one> WHERE { ?s ?p ?v }")
        r = multi.execute("SELECT ?v WHERE { ?s ?p ?v }")
        assert r.column("v") == [0]
        assert multi.engine.dataset is multi.dataset

    def test_ask_with_from(self, multi):
        assert multi.execute(
            "ASK FROM <http://g/two> { ?s ?p 2 }"
        ) is True
        assert multi.execute(
            "ASK FROM <http://g/two> { ?s ?p 0 }"
        ) is False


class TestFromNamed:
    def test_from_named_restricts_graph_patterns(self, multi):
        r = multi.execute(
            "SELECT ?g ?v FROM NAMED <http://g/one> "
            "WHERE { GRAPH ?g { ?s ?p ?v } }"
        )
        assert r.rows == [(URI("http://g/one"), 1)]

    def test_from_named_hides_other_graphs(self, multi):
        r = multi.execute(
            "SELECT ?v FROM NAMED <http://g/one> "
            "WHERE { GRAPH <http://g/two> { ?s ?p ?v } }"
        )
        assert r.rows == []

    def test_from_named_empties_default(self, multi):
        # with only FROM NAMED, the query's default graph is empty
        r = multi.execute(
            "SELECT ?v FROM NAMED <http://g/one> WHERE { ?s ?p ?v }"
        )
        assert r.rows == []

    def test_from_and_from_named_combine(self, multi):
        r = multi.execute(
            "SELECT ?v ?w FROM <http://g/one> FROM NAMED <http://g/two> "
            "WHERE { ?s ?p ?v GRAPH <http://g/two> { ?s ?p ?w } }"
        )
        assert r.rows == [(1, 2)]

    def test_construct_with_from(self, multi):
        g = multi.execute(
            "PREFIX ex: <http://e/> "
            "CONSTRUCT { ?s ex:copy ?v } FROM <http://g/two> "
            "WHERE { ?s ex:p ?v }"
        )
        assert len(g) == 1
