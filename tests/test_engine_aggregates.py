"""Grouping and aggregation (section 3.5)."""

import pytest

from repro import SSDM, URI

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture
def sales(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:s1 ex:region "north" ; ex:amount 10 ; ex:rep "ann" .
        ex:s2 ex:region "north" ; ex:amount 20 ; ex:rep "bob" .
        ex:s3 ex:region "south" ; ex:amount 5  ; ex:rep "ann" .
        ex:s4 ex:region "south" ; ex:amount 5  ; ex:rep "cid" .
        ex:s5 ex:region "south" ; ex:amount 30 ; ex:rep "ann" .
    """)
    return ssdm


class TestGroupBy:
    def test_count_per_group(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (COUNT(?s) AS ?n) WHERE {
                ?s ex:region ?region } GROUP BY ?region ORDER BY ?region""")
        assert r.rows == [("north", 2), ("south", 3)]

    def test_sum_avg(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (SUM(?a) AS ?total) (AVG(?a) AS ?mean)
            WHERE { ?s ex:region ?region ; ex:amount ?a }
            GROUP BY ?region ORDER BY ?region""")
        assert r.rows == [("north", 30, 15.0),
                          ("south", 40, 40 / 3)]

    def test_min_max(self, sales):
        r = sales.execute(EXP + """
            SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi)
            WHERE { ?s ex:amount ?a }""")
        assert r.rows == [(5, 30)]

    def test_count_star(self, sales):
        r = sales.execute(EXP +
                          "SELECT (COUNT(*) AS ?n) WHERE { ?s ex:rep ?r }")
        assert r.rows == [(5,)]

    def test_count_distinct(self, sales):
        r = sales.execute(EXP + """
            SELECT (COUNT(DISTINCT ?rep) AS ?n)
            WHERE { ?s ex:rep ?rep }""")
        assert r.rows == [(3,)]

    def test_sample_is_group_member(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (SAMPLE(?rep) AS ?any)
            WHERE { ?s ex:region ?region ; ex:rep ?rep }
            GROUP BY ?region ORDER BY ?region""")
        north = r.rows[0]
        assert north[1] in ("ann", "bob")

    def test_group_concat(self, sales):
        r = sales.execute(EXP + """
            SELECT (GROUP_CONCAT(?rep; SEPARATOR="|") AS ?all)
            WHERE { ?s ex:region "north" ; ex:rep ?rep }""")
        assert sorted(r.rows[0][0].split("|")) == ["ann", "bob"]

    def test_group_by_expression_with_alias(self, sales):
        r = sales.execute(EXP + """
            SELECT ?band (COUNT(?s) AS ?n)
            WHERE { ?s ex:amount ?a BIND(IF(?a >= 10, "big", "small")
                    AS ?band) }
            GROUP BY ?band ORDER BY ?band""")
        assert r.rows == [("big", 3), ("small", 2)]

    def test_multiple_group_keys(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region ?rep (SUM(?a) AS ?t)
            WHERE { ?s ex:region ?region ; ex:rep ?rep ; ex:amount ?a }
            GROUP BY ?region ?rep ORDER BY ?region ?rep""")
        assert ("south", "ann", 35) in r.rows
        assert len(r.rows) == 4


class TestHaving:
    def test_having_filters_groups(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (SUM(?a) AS ?total)
            WHERE { ?s ex:region ?region ; ex:amount ?a }
            GROUP BY ?region HAVING (SUM(?a) > 35)""")
        assert r.rows == [("south", 40)]

    def test_having_on_count(self, sales):
        r = sales.execute(EXP + """
            SELECT ?rep WHERE { ?s ex:rep ?rep }
            GROUP BY ?rep HAVING (COUNT(?s) >= 2)""")
        assert r.rows == [("ann",)]


class TestImplicitGrouping:
    def test_aggregate_without_group_by(self, sales):
        r = sales.execute(EXP +
                          "SELECT (SUM(?a) AS ?t) WHERE { ?s ex:amount ?a }")
        assert r.rows == [(70,)]

    def test_empty_input_single_group(self, ssdm):
        r = ssdm.execute(EXP +
                         "SELECT (COUNT(?s) AS ?n) WHERE { ?s ex:nope ?v }")
        assert r.rows == [(0,)]

    def test_sum_of_empty_is_zero(self, ssdm):
        r = ssdm.execute(EXP +
                         "SELECT (SUM(?v) AS ?t) WHERE { ?s ex:nope ?v }")
        assert r.rows == [(0,)]

    def test_avg_of_empty_unbound(self, ssdm):
        r = ssdm.execute(EXP +
                         "SELECT (AVG(?v) AS ?m) WHERE { ?s ex:nope ?v }")
        assert r.rows == [(None,)]


class TestAggregatesInExpressions:
    def test_arithmetic_over_aggregates(self, sales):
        r = sales.execute(EXP + """
            SELECT (MAX(?a) - MIN(?a) AS ?spread)
            WHERE { ?s ex:amount ?a }""")
        assert r.rows == [(25,)]

    def test_order_by_aggregate(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region WHERE { ?s ex:region ?region ; ex:amount ?a }
            GROUP BY ?region ORDER BY DESC(SUM(?a))""")
        assert r.column("region") == ["south", "north"]

    def test_duplicate_aggregate_deduplicated(self, sales):
        # SUM(?a) twice must compute once and be usable in both places
        r = sales.execute(EXP + """
            SELECT (SUM(?a) AS ?t) (SUM(?a) + 1 AS ?t1)
            WHERE { ?s ex:amount ?a }""")
        assert r.rows == [(70, 71)]

    def test_skips_error_rows(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:v 1 . ex:b ex:v "oops" . ex:c ex:v 3 .
        """)
        r = ssdm.execute(EXP + """
            SELECT (SUM(?v + 0) AS ?t) WHERE { ?s ex:v ?v }""")
        assert r.rows == [(4,)]


class TestNumericCoercion:
    """SUM/AVG accept every numeric runtime representation (regression:
    ``_numeric_sum`` used to reject anything but raw int/float, so
    ``Decimal`` bindings and wrapped ``xsd:decimal`` literals errored)."""

    def test_sum_of_decimals(self):
        from decimal import Decimal

        from repro.engine.aggregates import compute

        total = compute("SUM", [Decimal("1.10"), Decimal("2.20")])
        assert total == Decimal("3.30")

    def test_avg_of_decimals_stays_exact(self):
        from decimal import Decimal

        from repro.engine.aggregates import compute

        mean = compute("AVG", [Decimal("1.5"), Decimal("2.5")])
        assert mean == Decimal("2.0")

    def test_sum_of_wrapped_decimal_literals(self):
        # runtime() only unwraps int/float/bool/str literals, so an
        # xsd:decimal literal holding a Decimal reaches SUM still wrapped
        from decimal import Decimal

        from repro import Literal, XSD
        from repro.engine.aggregates import compute

        values = [Literal(Decimal("0.1"), XSD.decimal),
                  Literal(Decimal("0.2"), XSD.decimal)]
        assert compute("SUM", values) == Decimal("0.3")

    def test_sum_of_fractions(self):
        from fractions import Fraction

        from repro.engine.aggregates import compute

        total = compute("SUM", [Fraction(1, 3), Fraction(2, 3)])
        assert total == 1

    def test_mixed_decimal_and_float_degrades_to_float(self):
        from decimal import Decimal

        from repro.engine.aggregates import compute

        total = compute("SUM", [Decimal("1.5"), 2.5])
        assert total == pytest.approx(4.0)

    def test_sum_still_rejects_bools(self):
        from repro.engine.aggregates import compute
        from repro.exceptions import EvaluationError

        with pytest.raises(EvaluationError):
            compute("SUM", [1, True])

    def test_sum_still_rejects_strings(self):
        from repro.engine.aggregates import compute
        from repro.exceptions import EvaluationError

        with pytest.raises(EvaluationError):
            compute("SUM", [1, "2"])


class TestDistinctDedup:
    """DISTINCT aggregates dedupe via hashable keys (regression: the old
    list scan was O(n²) per group and the keys it built collided or
    crashed on mixed values)."""

    def test_large_duplicated_group(self):
        from repro.engine.aggregates import compute

        values = [i % 50 for i in range(20000)]
        assert compute("COUNT", values, distinct=True) == 50
        assert compute("SUM", values, distinct=True) == sum(range(50))

    def test_distinct_preserves_first_occurrence_order(self):
        from repro.engine.aggregates import _distinct

        assert _distinct([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_distinct_keeps_int_float_and_bool_apart(self):
        from repro.engine.aggregates import _distinct

        assert _distinct([1, 1.0, True, 1]) == [1, 1.0, True]

    def test_distinct_keeps_lang_tags_apart(self):
        from repro import Literal
        from repro.engine.aggregates import compute

        values = [Literal("a"), Literal("a", lang="en"), Literal("a")]
        assert compute("COUNT", values, distinct=True) == 2

    def test_distinct_arrays_by_content(self):
        from repro import NumericArray
        from repro.engine.aggregates import compute

        values = [NumericArray([1, 2]), NumericArray([1, 2]),
                  NumericArray([3, 4])]
        assert compute("COUNT", values, distinct=True) == 2

    def test_distinct_tolerates_opaque_values(self):
        # values no RDF term can represent dedupe by identity instead of
        # raising out of the whole aggregate
        from repro.engine.aggregates import compute

        opaque = object()
        values = [opaque, opaque, object(), 7]
        assert compute("COUNT", values, distinct=True) == 3

    def test_count_distinct_end_to_end(self, sales):
        r = sales.execute(EXP + """
            SELECT (COUNT(DISTINCT ?a) AS ?n) WHERE { ?s ex:amount ?a }""")
        assert r.rows == [(4,)]


class TestArrayAggregates:
    def test_avg_of_array_aggregates(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:arr (1 2 3) . ex:b ex:arr (4 5 6) .
        """)
        r = ssdm.execute(EXP + """
            SELECT (AVG(?m) AS ?grand) WHERE {
                ?s ex:arr ?a BIND(array_avg(?a) AS ?m) }""")
        assert r.rows == [(3.5,)]
