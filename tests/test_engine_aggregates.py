"""Grouping and aggregation (section 3.5)."""

import pytest

from repro import SSDM, URI

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture
def sales(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:s1 ex:region "north" ; ex:amount 10 ; ex:rep "ann" .
        ex:s2 ex:region "north" ; ex:amount 20 ; ex:rep "bob" .
        ex:s3 ex:region "south" ; ex:amount 5  ; ex:rep "ann" .
        ex:s4 ex:region "south" ; ex:amount 5  ; ex:rep "cid" .
        ex:s5 ex:region "south" ; ex:amount 30 ; ex:rep "ann" .
    """)
    return ssdm


class TestGroupBy:
    def test_count_per_group(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (COUNT(?s) AS ?n) WHERE {
                ?s ex:region ?region } GROUP BY ?region ORDER BY ?region""")
        assert r.rows == [("north", 2), ("south", 3)]

    def test_sum_avg(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (SUM(?a) AS ?total) (AVG(?a) AS ?mean)
            WHERE { ?s ex:region ?region ; ex:amount ?a }
            GROUP BY ?region ORDER BY ?region""")
        assert r.rows == [("north", 30, 15.0),
                          ("south", 40, 40 / 3)]

    def test_min_max(self, sales):
        r = sales.execute(EXP + """
            SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi)
            WHERE { ?s ex:amount ?a }""")
        assert r.rows == [(5, 30)]

    def test_count_star(self, sales):
        r = sales.execute(EXP +
                          "SELECT (COUNT(*) AS ?n) WHERE { ?s ex:rep ?r }")
        assert r.rows == [(5,)]

    def test_count_distinct(self, sales):
        r = sales.execute(EXP + """
            SELECT (COUNT(DISTINCT ?rep) AS ?n)
            WHERE { ?s ex:rep ?rep }""")
        assert r.rows == [(3,)]

    def test_sample_is_group_member(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (SAMPLE(?rep) AS ?any)
            WHERE { ?s ex:region ?region ; ex:rep ?rep }
            GROUP BY ?region ORDER BY ?region""")
        north = r.rows[0]
        assert north[1] in ("ann", "bob")

    def test_group_concat(self, sales):
        r = sales.execute(EXP + """
            SELECT (GROUP_CONCAT(?rep; SEPARATOR="|") AS ?all)
            WHERE { ?s ex:region "north" ; ex:rep ?rep }""")
        assert sorted(r.rows[0][0].split("|")) == ["ann", "bob"]

    def test_group_by_expression_with_alias(self, sales):
        r = sales.execute(EXP + """
            SELECT ?band (COUNT(?s) AS ?n)
            WHERE { ?s ex:amount ?a BIND(IF(?a >= 10, "big", "small")
                    AS ?band) }
            GROUP BY ?band ORDER BY ?band""")
        assert r.rows == [("big", 3), ("small", 2)]

    def test_multiple_group_keys(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region ?rep (SUM(?a) AS ?t)
            WHERE { ?s ex:region ?region ; ex:rep ?rep ; ex:amount ?a }
            GROUP BY ?region ?rep ORDER BY ?region ?rep""")
        assert ("south", "ann", 35) in r.rows
        assert len(r.rows) == 4


class TestHaving:
    def test_having_filters_groups(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region (SUM(?a) AS ?total)
            WHERE { ?s ex:region ?region ; ex:amount ?a }
            GROUP BY ?region HAVING (SUM(?a) > 35)""")
        assert r.rows == [("south", 40)]

    def test_having_on_count(self, sales):
        r = sales.execute(EXP + """
            SELECT ?rep WHERE { ?s ex:rep ?rep }
            GROUP BY ?rep HAVING (COUNT(?s) >= 2)""")
        assert r.rows == [("ann",)]


class TestImplicitGrouping:
    def test_aggregate_without_group_by(self, sales):
        r = sales.execute(EXP +
                          "SELECT (SUM(?a) AS ?t) WHERE { ?s ex:amount ?a }")
        assert r.rows == [(70,)]

    def test_empty_input_single_group(self, ssdm):
        r = ssdm.execute(EXP +
                         "SELECT (COUNT(?s) AS ?n) WHERE { ?s ex:nope ?v }")
        assert r.rows == [(0,)]

    def test_sum_of_empty_is_zero(self, ssdm):
        r = ssdm.execute(EXP +
                         "SELECT (SUM(?v) AS ?t) WHERE { ?s ex:nope ?v }")
        assert r.rows == [(0,)]

    def test_avg_of_empty_unbound(self, ssdm):
        r = ssdm.execute(EXP +
                         "SELECT (AVG(?v) AS ?m) WHERE { ?s ex:nope ?v }")
        assert r.rows == [(None,)]


class TestAggregatesInExpressions:
    def test_arithmetic_over_aggregates(self, sales):
        r = sales.execute(EXP + """
            SELECT (MAX(?a) - MIN(?a) AS ?spread)
            WHERE { ?s ex:amount ?a }""")
        assert r.rows == [(25,)]

    def test_order_by_aggregate(self, sales):
        r = sales.execute(EXP + """
            SELECT ?region WHERE { ?s ex:region ?region ; ex:amount ?a }
            GROUP BY ?region ORDER BY DESC(SUM(?a))""")
        assert r.column("region") == ["south", "north"]

    def test_duplicate_aggregate_deduplicated(self, sales):
        # SUM(?a) twice must compute once and be usable in both places
        r = sales.execute(EXP + """
            SELECT (SUM(?a) AS ?t) (SUM(?a) + 1 AS ?t1)
            WHERE { ?s ex:amount ?a }""")
        assert r.rows == [(70, 71)]

    def test_skips_error_rows(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:v 1 . ex:b ex:v "oops" . ex:c ex:v 3 .
        """)
        r = ssdm.execute(EXP + """
            SELECT (SUM(?v + 0) AS ?t) WHERE { ?s ex:v ?v }""")
        assert r.rows == [(4,)]


class TestArrayAggregates:
    def test_avg_of_array_aggregates(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:arr (1 2 3) . ex:b ex:arr (4 5 6) .
        """)
        r = ssdm.execute(EXP + """
            SELECT (AVG(?m) AS ?grand) WHERE {
                ?s ex:arr ?a BIND(array_avg(?a) AS ?m) }""")
        assert r.rows == [(3.5,)]
