"""SciSPARQL array queries (chapter 4), in memory and over every ASEI
back-end (the ``external_ssdm`` fixture parametrizes back-ends)."""

import numpy as np
import pytest

from repro import SSDM, NumericArray, ArrayProxy, URI

EXP = "PREFIX ex: <http://example.org/>\n"

TURTLE = """
@prefix ex: <http://example.org/> .
ex:m ex:val ((1 2 3) (4 5 6) (7 8 9)) ; ex:label "m" .
ex:v ex:val (10 20 30 40 50) ; ex:label "v" .
"""


@pytest.fixture(params=["resident", "external"])
def loaded(request, ssdm, external_ssdm):
    """The same data, resident and externalized (threshold 8 elements
    keeps the 9- and 5-element arrays... the 9-element matrix crosses
    it, the vector does not — both paths exercised)."""
    instance = ssdm if request.param == "resident" else external_ssdm
    instance.load_turtle_text(TURTLE)
    return instance


class TestDereference:
    def test_single_element(self, loaded):
        r = loaded.execute(EXP + "SELECT ?a[2,3] WHERE { ex:m ex:val ?a }")
        assert r.rows == [(6,)]

    def test_one_based_bounds(self, loaded):
        r = loaded.execute(EXP + "SELECT ?a[1,1] WHERE { ex:m ex:val ?a }")
        assert r.rows == [(1,)]

    def test_out_of_bounds_is_error(self, loaded):
        # errors in projected expressions give unbound, not a crash
        r = loaded.execute(EXP + "SELECT ?a[4,1] WHERE { ex:m ex:val ?a }")
        assert r.rows == [(None,)]

    def test_zero_subscript_is_error(self, loaded):
        r = loaded.execute(EXP + "SELECT ?a[0] WHERE { ex:v ex:val ?a }")
        assert r.rows == [(None,)]

    def test_row_projection(self, loaded):
        r = loaded.execute(EXP + "SELECT ?a[2] WHERE { ex:m ex:val ?a }")
        value = r.rows[0][0]
        assert _lists(value) == [4, 5, 6]

    def test_range(self, loaded):
        r = loaded.execute(EXP + "SELECT ?a[2:4] WHERE { ex:v ex:val ?a }")
        assert _lists(r.rows[0][0]) == [20, 30, 40]

    def test_range_with_stride(self, loaded):
        r = loaded.execute(EXP +
                           "SELECT ?a[1:2:5] WHERE { ex:v ex:val ?a }")
        assert _lists(r.rows[0][0]) == [10, 30, 50]

    def test_open_ranges(self, loaded):
        r = loaded.execute(EXP + "SELECT ?a[3:] WHERE { ex:v ex:val ?a }")
        assert _lists(r.rows[0][0]) == [30, 40, 50]
        r = loaded.execute(EXP + "SELECT ?a[:2] WHERE { ex:v ex:val ?a }")
        assert _lists(r.rows[0][0]) == [10, 20]

    def test_column_via_whole_dim(self, loaded):
        r = loaded.execute(EXP + "SELECT ?a[:,2] WHERE { ex:m ex:val ?a }")
        assert _lists(r.rows[0][0]) == [2, 5, 8]

    def test_variable_subscript(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?a[?i, ?i] WHERE { ex:m ex:val ?a .
                VALUES ?i { 1 2 3 } }""")
        assert sorted(row[0] for row in r.rows) == [1, 5, 9]

    def test_expression_subscript(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?a[1 + 1] WHERE { ex:v ex:val ?a }""")
        assert r.rows == [(20,)]

    def test_chained_subscript(self, loaded):
        r = loaded.execute(EXP +
                           "SELECT ?a[2][2] WHERE { ex:m ex:val ?a }")
        assert r.rows == [(5,)]


class TestFiltersOnArrays:
    def test_filter_on_element(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?l WHERE { ?s ex:val ?a ; ex:label ?l
                FILTER(?a[1,1] = 1) }""")
        assert r.rows == [("m",)]

    def test_filter_on_aggregate(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?l WHERE { ?s ex:val ?a ; ex:label ?l
                FILTER(array_sum(?a) > 100) }""")
        assert r.rows == [("v",)]

    def test_array_equality_constant(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?l WHERE { ?s ex:val ?a ; ex:label ?l
                FILTER(?a = (10 20 30 40 50)) }""")
        assert r.rows == [("v",)]

    def test_array_inequality(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?l WHERE { ?s ex:val ?a ; ex:label ?l
                FILTER(?a != (10 20 30 40 50)) }""")
        assert r.rows == [("m",)]


class TestArithmetic:
    def test_array_scalar(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (?a * 2 AS ?b) WHERE { ex:v ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [20, 40, 60, 80, 100]

    def test_array_array(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (?a + ?a AS ?b) WHERE { ex:v ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [20, 40, 60, 80, 100]

    def test_slice_arithmetic(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (?a[1:2] + ?a[4:5] AS ?b) WHERE { ex:v ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [50, 70]

    def test_shape_mismatch_drops(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?l WHERE { ?s ex:val ?a ; ex:label ?l
                FILTER(array_sum(?a[1:2] + ?a[1:3]) > 0) }""")
        assert r.rows == []


class TestBuiltins:
    def test_adims(self, loaded):
        r = loaded.execute(EXP +
                           "SELECT (adims(?a) AS ?d) WHERE "
                           "{ ex:m ex:val ?a }")
        assert _lists(r.rows[0][0]) == [3, 3]

    def test_adims_lazy_on_proxy(self, external_ssdm):
        external_ssdm.load_turtle_text(TURTLE)
        store = external_ssdm.array_store
        store.stats.reset()
        r = external_ssdm.execute(
            EXP + "SELECT (adims(?a) AS ?d) WHERE { ex:m ex:val ?a }"
        )
        assert _lists(r.rows[0][0]) == [3, 3]
        # shape comes from the descriptor: no chunks fetched
        assert store.stats.chunks_fetched == 0

    def test_aelt(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (aelt(?a, 3, 1) AS ?e) WHERE { ex:m ex:val ?a }""")
        assert r.rows == [(7,)]

    def test_array_constructor(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array(?a[1,1], ?a[2,2], ?a[3,3]) AS ?diag)
            WHERE { ex:m ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [1, 5, 9]

    def test_aggregates(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array_sum(?a) AS ?s) (array_avg(?a) AS ?m)
                   (array_min(?a) AS ?lo) (array_max(?a) AS ?hi)
                   (array_count(?a) AS ?n)
            WHERE { ex:m ex:val ?a }""")
        assert r.rows == [(45.0, 5.0, 1.0, 9.0, 9)]

    def test_aggregate_of_slice(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array_sum(?a[:,1]) AS ?s) WHERE { ex:m ex:val ?a }""")
        assert r.rows == [(12.0,)]

    def test_transpose(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (transpose(?a)[1,3] AS ?e) WHERE { ex:m ex:val ?a }""")
        assert r.rows == [(7,)]

    def test_isarray(self, loaded):
        r = loaded.execute(EXP + """
            SELECT ?l WHERE { ?s ex:val ?a ; ex:label ?l
                FILTER(ISARRAY(?a) && !ISARRAY(?l)) }""")
        assert len(r.rows) == 2


class TestSecondOrder:
    def test_array_map_with_closure(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array_map(FN(?x) ?x * ?x, ?a) AS ?sq)
            WHERE { ex:v ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [100, 400, 900, 1600, 2500]

    def test_closure_captures_environment(self, loaded):
        # ?k is bound outside the closure: a true lexical closure
        r = loaded.execute(EXP + """
            SELECT (array_map(FN(?x) ?x * ?k, ?a) AS ?scaled)
            WHERE { ex:v ex:val ?a BIND(3 AS ?k) }""")
        assert _lists(r.rows[0][0]) == [30, 60, 90, 120, 150]

    def test_two_array_map(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array_map(FN(?x ?y) ?x - ?y, ?a, ?a) AS ?z)
            WHERE { ex:v ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [0, 0, 0, 0, 0]

    def test_array_condense(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array_condense(FN(?x ?y) ?x + ?y, ?a) AS ?s)
            WHERE { ex:m ex:val ?a }""")
        assert r.rows == [(45.0,)]

    def test_array_condense_axis(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array_condense(FN(?x ?y) ?x + ?y, ?a, 1) AS ?cols)
            WHERE { ex:m ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [12, 15, 18]

    def test_array_build(self, loaded):
        r = loaded.execute(EXP + """
            SELECT (array_build(FN(?i ?j) ?i * 10 + ?j, 2, 3) AS ?b)
            WHERE { }""")
        assert _lists(r.rows[0][0]) == [[11, 12, 13], [21, 22, 23]]

    def test_named_function_as_argument(self, loaded):
        loaded.execute(
            EXP + "DEFINE FUNCTION ex:inc(?x) AS ?x + 1"
        )
        r = loaded.execute(EXP + """
            SELECT (array_map(ex:inc, ?a) AS ?b)
            WHERE { ex:v ex:val ?a }""")
        assert _lists(r.rows[0][0]) == [11, 21, 31, 41, 51]


class TestLazyResolution:
    def test_slice_fetches_only_needed_chunks(self, external_ssdm):
        store = external_ssdm.array_store
        big = np.arange(10000, dtype=np.float64).reshape(100, 100)
        external_ssdm.add(
            URI("http://example.org/big"),
            URI("http://example.org/val"),
            NumericArray(big),
        )
        store.stats.reset()
        r = external_ssdm.execute(EXP + """
            SELECT ?a[1,1:10] WHERE { ex:big ex:val ?a }""")
        assert _lists(r.rows[0][0]) == big[0, 0:10].tolist()
        total_chunks = store.meta(1).layout.chunk_count
        assert store.stats.chunks_fetched < total_chunks

    def test_projection_returns_proxy(self, external_ssdm):
        big = np.arange(10000, dtype=np.float64).reshape(100, 100)
        external_ssdm.add(
            URI("http://example.org/big"),
            URI("http://example.org/val"),
            NumericArray(big),
        )
        r = external_ssdm.execute(
            EXP + "SELECT ?a[5] WHERE { ex:big ex:val ?a }"
        )
        value = r.rows[0][0]
        assert isinstance(value, ArrayProxy)
        assert value.resolve().to_nested_lists() == big[4].tolist()


def _lists(value):
    if isinstance(value, ArrayProxy):
        value = value.resolve()
    assert isinstance(value, NumericArray)
    return value.to_nested_lists()
