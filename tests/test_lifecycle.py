"""Request-lifecycle unit tests: deadlines, cancellation, fault
injection, the single-writer mutex, and the error taxonomy.

(The old writer-fair read/write lock and its starvation tests are
gone: MVCC snapshot reads — see ``tests/test_mvcc.py`` — removed
readers from the locking picture entirely, so the only lock left to
test is mutual exclusion between mutators.)"""

import threading
import time

import pytest

from repro import SSDM
from repro.client.server import _WriteMutex
from repro.exceptions import (
    ConnectionClosedError,
    EvaluationError,
    ParseError,
    QueryError,
    RequestCancelledError,
    RequestTimeoutError,
    SciSparqlError,
    ServerOverloadedError,
    StorageError,
    error_code,
    error_from_code,
)
from repro.lifecycle import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    run_with_deadline,
)
from repro.storage import APRResolver, FaultPlan, MemoryArrayStore
from repro.storage.bufferpool import BufferPool


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() is None
        deadline.check()          # no raise

    def test_cancel_trips_the_token(self):
        deadline = Deadline(None)
        deadline.cancel()
        assert deadline.expired()
        with pytest.raises(RequestCancelledError):
            deadline.check()

    def test_budget_expires(self):
        deadline = Deadline(0.01)
        assert not deadline.expired()
        time.sleep(0.02)
        assert deadline.expired()
        with pytest.raises(RequestTimeoutError):
            deadline.check()

    def test_after_ms(self):
        assert Deadline.after_ms(None).remaining() is None
        remaining = Deadline.after_ms(5000).remaining()
        assert 4.0 < remaining <= 5.0

    def test_remaining_never_negative(self):
        deadline = Deadline(0.001)
        time.sleep(0.01)
        assert deadline.remaining() == 0.0

    def test_timeout_is_a_cancellation(self):
        # one except-clause catches both forms of lifecycle abort
        assert issubclass(RequestTimeoutError, RequestCancelledError)

    def test_timeout_is_not_suppressible_eval_error(self):
        # FILTER/BIND error suppression must never swallow a timeout
        assert not issubclass(RequestTimeoutError, EvaluationError)

    def test_cooperative_sleep_interrupted(self):
        deadline = Deadline(0.05)
        started = time.monotonic()
        with pytest.raises(RequestTimeoutError):
            deadline.sleep(10.0)
        assert time.monotonic() - started < 1.0

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        outer = Deadline(None)
        inner = Deadline(None)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_scope_of_none_clears(self):
        with deadline_scope(Deadline(None)):
            with deadline_scope(None):
                assert current_deadline() is None

    def test_check_deadline_helper(self):
        check_deadline()          # no ambient deadline: no-op
        expired = Deadline(0.0)
        with deadline_scope(expired):
            with pytest.raises(RequestTimeoutError):
                check_deadline()

    def test_run_with_deadline_bridges_threads(self):
        deadline = Deadline(None)
        seen = {}

        def worker():
            seen["deadline"] = current_deadline()

        thread = threading.Thread(
            target=run_with_deadline, args=(deadline, worker)
        )
        thread.start()
        thread.join()
        assert seen["deadline"] is deadline


class TestErrorTaxonomy:
    def test_codes(self):
        assert error_code(RequestTimeoutError("x")) == "TIMEOUT"
        assert error_code(RequestCancelledError("x")) == "CANCELLED"
        assert error_code(ParseError("x")) == "PARSE"
        assert error_code(QueryError("x")) == "EVAL"
        assert error_code(EvaluationError("x")) == "EVAL"
        assert error_code(StorageError("x")) == "STORAGE"
        assert error_code(ServerOverloadedError("x")) == "OVERLOAD"
        assert error_code(ConnectionClosedError("x")) == "CONNECTION"
        assert error_code(SciSparqlError("x")) == "INTERNAL"
        assert error_code(ValueError("x")) == "INTERNAL"

    def test_retryable_flags(self):
        assert ServerOverloadedError("x").retryable
        assert ConnectionClosedError("x").retryable
        assert not RequestTimeoutError("x").retryable
        assert not StorageError("x").retryable

    def test_round_trip_through_codes(self):
        for error in (RequestTimeoutError("t"), ServerOverloadedError("o"),
                      StorageError("s"), ParseError("p"), QueryError("q")):
            rebuilt = error_from_code(error_code(error), str(error))
            assert type(rebuilt) is type(error)

    def test_unknown_code_degrades_to_base(self):
        rebuilt = error_from_code("SOMETHING_NEW", "msg")
        assert type(rebuilt) is SciSparqlError


class TestFaultPlan:
    def test_error_every_is_deterministic(self):
        plan = FaultPlan(error_every=2)
        plan.on_read()
        with pytest.raises(StorageError):
            plan.on_read()
        plan.on_read()
        with pytest.raises(StorageError):
            plan.on_read()
        assert plan.snapshot()["injected_errors"] == 2

    def test_error_rate_sequence_is_seeded(self):
        def failures(plan):
            out = []
            for _ in range(200):
                try:
                    plan.on_read()
                    out.append(False)
                except StorageError:
                    out.append(True)
            return out

        first = failures(FaultPlan(error_rate=0.3, seed=7))
        second = failures(FaultPlan(error_rate=0.3, seed=7))
        assert first == second
        assert any(first) and not all(first)

    def test_latency_scales_with_chunk_count(self):
        plan = FaultPlan(read_latency=0.01)
        started = time.monotonic()
        plan.on_read(chunk_count=3)
        assert time.monotonic() - started >= 0.03
        assert plan.snapshot()["slept_seconds"] >= 0.03

    def test_latency_is_cooperative_with_deadline(self):
        plan = FaultPlan(read_latency=30.0)
        started = time.monotonic()
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(RequestTimeoutError):
                plan.on_read()
        assert time.monotonic() - started < 1.0

    def test_store_applies_faults(self):
        store = MemoryArrayStore(
            chunk_bytes=64, buffer_pool=BufferPool(1 << 20),
            faults=FaultPlan(error_every=1),
        )
        proxy = store.put(list(range(64)))
        with pytest.raises(StorageError):
            store.get_chunk(proxy.array_id, 0)


class TestWriteMutex:
    def test_exclusive_between_mutators(self):
        mutex = _WriteMutex()
        order = []
        with mutex.writing():
            def second():
                with mutex.writing(Deadline(5.0)):
                    order.append("second")

            thread = threading.Thread(target=second)
            thread.start()
            time.sleep(0.05)
            order.append("first")
        thread.join(5.0)
        assert order == ["first", "second"]

    def test_acquisition_bounded_by_deadline(self):
        mutex = _WriteMutex()
        with mutex.writing():
            started = time.monotonic()
            with pytest.raises(RequestTimeoutError):
                with mutex.writing(Deadline(0.05)):
                    pass                  # pragma: no cover
            assert time.monotonic() - started < 1.0

    def test_expired_deadline_fails_immediately(self):
        mutex = _WriteMutex()
        with mutex.writing():
            with pytest.raises(RequestTimeoutError):
                with mutex.writing(Deadline(0.0)):
                    pass                  # pragma: no cover

    def test_released_on_exit(self):
        mutex = _WriteMutex()
        with mutex.writing(Deadline(None)):
            assert mutex.locked()
        assert not mutex.locked()
        with mutex.writing(Deadline(1.0)):
            assert mutex.locked()
        assert not mutex.locked()


def _slow_array_ssdm(read_latency, pool=None):
    """An SSDM whose externalized array reads sleep per chunk."""

    class NoAggregateStore(MemoryArrayStore):
        supports_aggregates = False       # force chunk streaming

    pool = pool if pool is not None else BufferPool(4 << 20)
    store = NoAggregateStore(
        chunk_bytes=64, buffer_pool=pool,
        faults=FaultPlan(read_latency=read_latency),
    )
    store._default_resolver = APRResolver(store, strategy="prefetch")
    ssdm = SSDM(array_store=store, externalize_threshold=32)
    elements = " ".join(str(i) for i in range(256))
    ssdm.load_turtle_text(
        "@prefix ex: <http://e/> . ex:m ex:val (%s) ; ex:n 7 ." % elements
    )
    return ssdm, store, pool


SLOW_AGGREGATE = (
    "PREFIX ex: <http://e/> "
    "SELECT (array_sum(?a) AS ?s) WHERE { ex:m ex:val ?a }"
)


class TestExecuteDeadline:
    def test_expired_deadline_rejects_before_parse(self):
        ssdm = SSDM()
        with pytest.raises(RequestTimeoutError):
            ssdm.execute("ASK { ?s ?p ?o }", timeout=0.0)

    def test_slow_storage_query_times_out(self):
        ssdm, store, pool = _slow_array_ssdm(read_latency=0.02)
        started = time.monotonic()
        with pytest.raises(RequestTimeoutError):
            ssdm.execute(SLOW_AGGREGATE, timeout=0.2)
        # within 2x the deadline, not the ~5s the fetches would take
        assert time.monotonic() - started < 0.4
        # buffer-pool pins released on the abort path
        assert pool.stats()["pinned"] == 0

    def test_untimed_query_still_succeeds(self):
        ssdm, store, pool = _slow_array_ssdm(read_latency=0.0)
        result = ssdm.execute(SLOW_AGGREGATE)
        assert result.scalar() == pytest.approx(sum(range(256)))

    def test_cancel_aborts_solution_stream(self):
        ssdm = SSDM()
        for i in range(400):
            ssdm.load_turtle_text(
                "@prefix ex: <http://e/> . ex:s%d ex:p %d ." % (i, i)
            )
        deadline = Deadline(None)
        threading.Timer(0.05, deadline.cancel).start()
        started = time.monotonic()
        with pytest.raises(RequestCancelledError):
            # 400 x 400 cross join: far more work than the cancel window
            ssdm.execute(
                "PREFIX ex: <http://e/> SELECT ?a ?b "
                "WHERE { ?a ex:p ?x . ?b ex:p ?y }",
                deadline=deadline,
            )
        assert time.monotonic() - started < 5.0

    def test_storage_fault_surfaces_as_storage_error(self):
        ssdm, store, pool = _slow_array_ssdm(read_latency=0.0)
        store.faults = FaultPlan(error_every=1)
        with pytest.raises(StorageError):
            ssdm.execute(SLOW_AGGREGATE)
        assert pool.stats()["pinned"] == 0
