"""Final coverage round: multi-column views, path corner cases,
constant-folding soundness, and convenience APIs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SSDM, Literal, NumericArray, URI
from repro.algebra.rewriter import fold_constants
from repro.engine.bindings import Bindings
from repro.engine.expr import Evaluator
from repro.sparql import ast, parse_query, serialize_query

EXP = "PREFIX ex: <http://e/>\n"


class TestMultiColumnViews:
    def test_view_with_two_columns_returns_dicts(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:x 1 ; ex:y 2 .
        """)
        ssdm.execute(EXP + """
            DEFINE FUNCTION ex:pair(?s) AS
            SELECT ?x ?y WHERE { ?s ex:x ?x ; ex:y ?y }""")
        function = ssdm.functions.require(URI("http://e/pair"))
        result = ssdm.engine.call_view(
            function, [URI("http://e/a")]
        )
        assert result == [{"x": Literal(1), "y": Literal(2)}]


class TestPathCorners:
    def test_question_mark_both_unbound(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p ex:b ."
        )
        r = ssdm.execute(EXP + "SELECT ?x ?y WHERE { ?x ex:p? ?y }")
        pairs = set(r.rows)
        # reflexive pairs for every node plus the direct edge
        assert (URI("http://e/a"), URI("http://e/b")) in pairs
        assert (URI("http://e/a"), URI("http://e/a")) in pairs
        assert (URI("http://e/b"), URI("http://e/b")) in pairs

    def test_star_with_both_ends_bound(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p ex:b . ex:b ex:p ex:c .
        """)
        assert ssdm.execute(EXP + "ASK { ex:a ex:p* ex:c }") is True
        assert ssdm.execute(EXP + "ASK { ex:c ex:p* ex:a }") is False
        assert ssdm.execute(EXP + "ASK { ex:a ex:p* ex:a }") is True

    def test_sequence_driven_from_object(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p ex:b . ex:b ex:q ex:c .
            ex:x ex:p ex:y . ex:y ex:q ex:c .
        """)
        r = ssdm.execute(EXP +
                         "SELECT ?s WHERE { ?s ex:p/ex:q ex:c } "
                         "ORDER BY ?s")
        assert r.column("s") == [URI("http://e/a"), URI("http://e/x")]


class TestFoldingSoundness:
    numeric_expr = st.recursive(
        st.one_of(
            st.integers(-50, 50).map(lambda v: ast.TermExpr(Literal(v))),
            st.floats(-10, 10).map(
                lambda v: ast.TermExpr(Literal(round(v, 3)))
            ),
        ),
        lambda sub: st.tuples(
            st.sampled_from(["+", "-", "*", "/"]), sub, sub
        ).map(lambda t: ast.BinaryOp(*t)),
        max_leaves=8,
    )

    @given(numeric_expr)
    @settings(max_examples=150, deadline=None)
    def test_fold_preserves_value(self, expr):
        evaluator = Evaluator()
        folded = fold_constants(expr)
        try:
            original = evaluator.evaluate(expr, Bindings.EMPTY)
        except Exception:
            return                        # e.g. division by zero
        result = evaluator.evaluate(folded, Bindings.EMPTY)
        assert result == pytest.approx(original)


class TestConvenience:
    def test_serialize_query_reexported(self):
        query = parse_query("ASK { ?s ?p ?o }")
        assert "ASK" in serialize_query(query)

    def test_distinct_aggregate_over_arrays(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:v (1 2) . ex:b ex:v (1 2) . ex:c ex:v (3 4) .
        """)
        r = ssdm.execute(EXP + """
            SELECT (COUNT(DISTINCT ?a) AS ?n) WHERE { ?s ex:v ?a }""")
        assert r.rows == [(2,)]

    def test_bindings_repr_stable(self):
        b = Bindings({"x": 1, "a": 2})
        assert repr(b) == "{?a=2, ?x=1}"

    def test_result_column_missing_raises(self, foaf):
        r = foaf.execute("""PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?n WHERE { ?p foaf:name ?n }""")
        with pytest.raises(ValueError):
            r.column("nope")

    def test_numeric_array_from_bool_filter_result(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:v (1 2 3) ."
        )
        # IF inside a mapper producing 0/1 indicator values
        r = ssdm.execute(EXP + """
            SELECT (array_sum(array_map(FN(?x) IF(?x > 1, 1, 0), ?a))
                    AS ?count)
            WHERE { ex:a ex:v ?a }""")
        assert r.rows == [(2.0,)]
