"""User-defined functions, parameterized views, closures, and foreign
functions (sections 4.2-4.4)."""

import math

import pytest

from repro import SSDM, URI, EvaluationError
from repro.exceptions import UnknownFunctionError

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture
def data(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:a ex:v 3 ; ex:links ex:b , ex:c .
        ex:b ex:v 4 .
        ex:c ex:v 12 .
    """)
    return ssdm


class TestExpressionFunctions:
    def test_define_and_call(self, data):
        data.execute(EXP + "DEFINE FUNCTION ex:square(?x) AS ?x * ?x")
        r = data.execute(EXP + """
            SELECT (ex:square(?v) AS ?sq) WHERE { ex:a ex:v ?v }""")
        assert r.rows == [(9,)]

    def test_functions_compose(self, data):
        data.execute(EXP + "DEFINE FUNCTION ex:square(?x) AS ?x * ?x")
        data.execute(
            EXP + "DEFINE FUNCTION ex:hyp(?a ?b) AS "
            "SQRT(ex:square(?a) + ex:square(?b))"
        )
        r = data.execute(EXP + """
            SELECT (ex:hyp(?x, ?y) AS ?h) WHERE {
                ex:a ex:v ?x . ex:b ex:v ?y }""")
        assert r.rows == [(5.0,)]

    def test_redefinition_replaces(self, data):
        data.execute(EXP + "DEFINE FUNCTION ex:f(?x) AS ?x + 1")
        data.execute(EXP + "DEFINE FUNCTION ex:f(?x) AS ?x + 2")
        r = data.execute(EXP +
                         "SELECT (ex:f(1) AS ?r) WHERE { }")
        assert r.rows == [(3,)]

    def test_wrong_arity_drops_row(self, data):
        data.execute(EXP + "DEFINE FUNCTION ex:f(?x) AS ?x + 1")
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v FILTER(ex:f(?v, 2) > 0) }""")
        assert r.rows == []

    def test_unknown_function_drops_row(self, data):
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v FILTER(ex:nope(?v) > 0) }""")
        assert r.rows == []

    def test_zero_argument_function(self, data):
        data.execute(EXP + "DEFINE FUNCTION ex:answer() AS 42")
        r = data.execute(EXP + "SELECT (ex:answer() AS ?a) WHERE { }")
        assert r.rows == [(42,)]


class TestParameterizedViews:
    def test_view_returns_single_value(self, data):
        data.execute(EXP + """
            DEFINE FUNCTION ex:valueOf(?s) AS
            SELECT ?v WHERE { ?s ex:v ?v }""")
        r = data.execute(EXP + """
            SELECT (ex:valueOf(ex:b) AS ?v) WHERE { }""")
        assert r.rows == [(4,)]

    def test_view_used_per_row(self, data):
        data.execute(EXP + """
            DEFINE FUNCTION ex:valueOf(?s) AS
            SELECT ?v WHERE { ?s ex:v ?v }""")
        r = data.execute(EXP + """
            SELECT ?t (ex:valueOf(?t) AS ?v)
            WHERE { ex:a ex:links ?t } ORDER BY ?v""")
        assert r.column("v") == [4, 12]

    def test_view_with_aggregation(self, data):
        data.execute(EXP + """
            DEFINE FUNCTION ex:total() AS
            SELECT (SUM(?v) AS ?t) WHERE { ?s ex:v ?v }""")
        r = data.execute(EXP + "SELECT (ex:total() AS ?t) WHERE { }")
        assert r.rows == [(19,)]

    def test_bag_valued_view(self, data):
        # DAPLEX semantics: multiple results come back as a bag (list)
        data.execute(EXP + """
            DEFINE FUNCTION ex:allValues() AS
            SELECT ?v WHERE { ?s ex:v ?v }""")
        r = data.execute(EXP + "SELECT (ex:allValues() AS ?bag) WHERE { }")
        assert sorted(r.rows[0][0]) == [3, 4, 12]

    def test_view_with_filter_parameter(self, data):
        data.execute(EXP + """
            DEFINE FUNCTION ex:above(?lim) AS
            SELECT (COUNT(?s) AS ?n) WHERE { ?s ex:v ?v
                FILTER(?v > ?lim) }""")
        r = data.execute(EXP + "SELECT (ex:above(3.5) AS ?n) WHERE { }")
        assert r.rows == [(2,)]


class TestClosures:
    def test_closure_bound_to_variable(self, data):
        data.load_turtle_text(
            "@prefix ex: <http://e/> . ex:arr ex:val (1 2 3) ."
        )
        r = data.execute(EXP + """
            SELECT (array_map(?f, ?a) AS ?out) WHERE {
                ex:arr ex:val ?a BIND(FN(?x) ?x * 10 AS ?f) }""")
        assert r.rows[0][0].to_nested_lists() == [10, 20, 30]

    def test_closure_captures_at_bind_time(self, data):
        data.load_turtle_text(
            "@prefix ex: <http://e/> . ex:arr ex:val (1 2 3) ."
        )
        r = data.execute(EXP + """
            SELECT ?k (array_map(FN(?x) ?x + ?k, ?a) AS ?out) WHERE {
                ex:arr ex:val ?a . VALUES ?k { 100 200 } }
            ORDER BY ?k""")
        assert r.rows[0][1].to_nested_lists() == [101, 102, 103]
        assert r.rows[1][1].to_nested_lists() == [201, 202, 203]

    def test_closure_direct_call_unsupported_shape(self, data):
        # a closure is a value; calling it happens through second-order
        # functions -- using one where a number is expected drops the row
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v
                FILTER((FN(?x) ?x) + 1 > 0) }""")
        assert r.rows == []


class TestForeignFunctions:
    def test_register_and_call(self, data):
        data.register_function("http://e/cube", lambda x: x ** 3)
        r = data.execute(EXP + """
            SELECT (ex:cube(?v) AS ?c) WHERE { ex:a ex:v ?v }""")
        assert r.rows == [(27,)]

    def test_python_exception_becomes_row_drop(self, data):
        def boom(x):
            raise RuntimeError("nope")
        data.register_function("http://e/boom", boom)
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:v ?v FILTER(ex:boom(?v) > 0) }""")
        assert r.rows == []

    def test_foreign_function_in_map(self, data):
        data.load_turtle_text(
            "@prefix ex: <http://e/> . ex:arr ex:val (1 4 9) ."
        )
        data.register_function("http://e/sqrt", math.sqrt)
        r = data.execute(EXP + """
            SELECT (array_map(ex:sqrt, ?a) AS ?roots)
            WHERE { ex:arr ex:val ?a }""")
        assert r.rows[0][0].to_nested_lists() == [1, 2, 3]

    def test_cost_estimates_stored(self, data):
        foreign = data.register_function(
            "http://e/slow", lambda x: x, cost=500.0, fanout=2.0
        )
        assert foreign.cost == 500.0
        assert foreign.fanout == 2.0

    def test_registry_lookup(self, data):
        data.register_function("http://e/f", lambda: 1)
        assert URI("http://e/f") in data.functions
        with pytest.raises(UnknownFunctionError):
            data.functions.require(URI("http://e/missing"))
