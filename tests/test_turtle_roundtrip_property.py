"""Property: serialize(graph) -> load -> the same graph, for random
graphs mixing URIs, literals, language tags, and array values."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SSDM, Graph, Literal, NumericArray, URI

local_names = st.text(
    alphabet="abcdefgh", min_size=1, max_size=4
)

uris = local_names.map(lambda s: URI("http://example.org/" + s))

plain_literals = st.one_of(
    st.integers(-1000, 1000).map(Literal),
    st.booleans().map(Literal),
    st.text(alphabet="xyz ", max_size=6).map(Literal),
    st.text(alphabet="xyz", min_size=1, max_size=6).map(
        lambda s: Literal(s, lang="en")
    ),
)

array_values = st.lists(
    st.integers(-99, 99), min_size=1, max_size=6
).map(NumericArray)

values = st.one_of(uris, plain_literals, array_values)

triples = st.lists(st.tuples(uris, uris, values), max_size=20)


@given(triples)
@settings(max_examples=80, deadline=None)
def test_turtle_roundtrip(raw):
    graph = Graph()
    for s, p, v in raw:
        graph.add(s, p, v)
    text = graph.to_turtle()
    ssdm = SSDM()
    ssdm.load_turtle_text(text)
    assert len(ssdm.graph) == len(graph)
    for triple in graph.triples():
        assert triple in ssdm.graph, (triple, text)


@given(st.lists(st.lists(st.integers(-99, 99), min_size=2, max_size=4),
                min_size=2, max_size=4))
@settings(max_examples=50, deadline=None)
def test_matrix_roundtrip(rows):
    # rectangularize
    width = min(len(r) for r in rows)
    matrix = [r[:width] for r in rows]
    graph = Graph()
    graph.add(URI("http://e/m"), URI("http://e/val"),
              NumericArray(matrix))
    ssdm = SSDM()
    ssdm.load_turtle_text(graph.to_turtle())
    value = ssdm.graph.value(URI("http://e/m"), URI("http://e/val"))
    assert value == NumericArray(matrix)
