"""Query serialization: parse -> serialize -> parse is a fixpoint."""

import pytest

from repro.sparql import parse_query
from repro.sparql.serializer import serialize_query

ROUNDTRIP_QUERIES = [
    "SELECT * WHERE { ?s ?p ?o }",
    "SELECT DISTINCT ?s WHERE { ?s ?p ?o } LIMIT 3 OFFSET 1",
    "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:p 1 ; ex:q ?v "
    "FILTER(?v > 1 && ?v != 5) }",
    "PREFIX ex: <http://e/> SELECT (?a + 1 AS ?b) WHERE { ?s ex:p ?a }",
    "SELECT ?s WHERE { ?s ?p ?o OPTIONAL { ?o ?q ?r FILTER(?r < ?o) } }",
    "SELECT ?s WHERE { { ?s ?p 1 } UNION { ?s ?p 2 } UNION { ?s ?p 3 } }",
    "SELECT ?s WHERE { ?s ?p ?o MINUS { ?s ?q 1 } }",
    "PREFIX ex: <http://e/> SELECT ?s WHERE { GRAPH ex:g { ?s ?p ?o } }",
    "SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } }",
    "SELECT ?v WHERE { VALUES (?v ?w) { (1 2) (UNDEF 4) } }",
    "SELECT ?s WHERE { ?s ?p ?v BIND(?v * 2 AS ?d) FILTER(BOUND(?d)) }",
    "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p/ex:q ?y }",
    "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x (ex:p|^ex:q)+ ?y }",
    "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x !(ex:p|^ex:q) ?y }",
    "SELECT ?a (COUNT(DISTINCT ?b) AS ?n) WHERE { ?a ?p ?b } "
    "GROUP BY ?a HAVING (COUNT(DISTINCT ?b) > 1) ORDER BY DESC(?n)",
    'SELECT (GROUP_CONCAT(?n; SEPARATOR=", ") AS ?all) '
    "WHERE { ?s ?p ?n }",
    "SELECT ?a[2,3] WHERE { ?s ?p ?a }",
    "SELECT ?a[1:100] ?a[1:2:9] ?a[:,3] WHERE { ?s ?p ?a }",
    "SELECT (array_map(FN(?x) ?x * 2 + 1, ?a) AS ?b) WHERE { ?s ?p ?a }",
    "SELECT (array_sum(?a[1:3]) AS ?s) WHERE { ?s ?p ?a "
    "FILTER(?a = (1 2 3)) }",
    "SELECT ?s WHERE { ?s ?p ?v FILTER(?v IN (1, 2, 3)) }",
    "SELECT ?s WHERE { ?s ?p ?v FILTER(EXISTS { ?s ?q 1 }) }",
    "SELECT ?s WHERE { ?s ?p ?v FILTER(NOT EXISTS { ?s ?q 1 }) }",
    "SELECT ?x WHERE { { SELECT (MAX(?v) AS ?x) WHERE { ?s ?p ?v } } }",
    "PREFIX ex: <http://e/> SELECT ?s FROM ex:g1 FROM NAMED ex:g2 "
    "WHERE { ?s ?p ?o }",
    "ASK { ?s ?p 3.5 }",
    "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:q ?o } WHERE { ?s ex:p ?o }",
    "PREFIX ex: <http://e/> DESCRIBE ex:thing",
    "PREFIX ex: <http://e/> DEFINE FUNCTION ex:f(?x ?y) AS ?x * ?y + 1",
    "PREFIX ex: <http://e/> DEFINE FUNCTION ex:g(?s) AS "
    "SELECT ?v WHERE { ?s ex:p ?v }",
    "PREFIX ex: <http://e/> INSERT DATA { ex:s ex:p 1 . ex:s ex:q "
    '"x"@en }',
    "PREFIX ex: <http://e/> INSERT DATA { ex:s ex:val ((1 2) (3 4)) }",
    "PREFIX ex: <http://e/> DELETE DATA { ex:s ex:p 1 }",
    "PREFIX ex: <http://e/> DELETE { ?s ex:p ?o } INSERT { ?s ex:q ?o } "
    "WHERE { ?s ex:p ?o }",
    "PREFIX ex: <http://e/> WITH ex:g DELETE { ?s ex:p ?o } "
    "WHERE { ?s ex:p ?o }",
    "PREFIX ex: <http://e/> CLEAR GRAPH ex:g",
    "CLEAR ALL",
]


@pytest.mark.parametrize("text", ROUNDTRIP_QUERIES)
def test_parse_serialize_parse_fixpoint(text):
    first = parse_query(text)
    rendered = serialize_query(first)
    second = parse_query(rendered)
    assert first == second, rendered


def test_serialized_text_is_readable():
    query = parse_query(
        "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:p ?v "
        "FILTER(?v > 1) } ORDER BY ?s LIMIT 5"
    )
    text = serialize_query(query)
    assert "SELECT ?s" in text
    assert "FILTER" in text
    assert "LIMIT 5" in text


def test_roundtrip_preserves_semantics(foaf):
    original = """PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        SELECT ?n WHERE { ?a foaf:knows ?b . ?b foaf:name ?n }
        ORDER BY ?n"""
    first = foaf.execute(original)
    rendered = serialize_query(foaf.parse(original))
    second = foaf.execute(rendered)
    assert first.rows == second.rows
