"""Chunk layout arithmetic and run/chunk conversion."""

import numpy as np
import pytest

from repro.arrays.chunks import (
    ChunkLayout, assemble_from_chunks, chunks_of_runs,
    linear_indices_of_runs,
)
from repro.exceptions import StorageError


class TestChunkLayout:
    def test_exact_division(self):
        layout = ChunkLayout(element_count=16, itemsize=8, chunk_bytes=64)
        assert layout.elements_per_chunk == 8
        assert layout.chunk_count == 2

    def test_short_last_chunk(self):
        layout = ChunkLayout(10, 8, 32)
        assert layout.chunk_count == 3
        assert layout.chunk_extent(2) == 2

    def test_chunk_of(self):
        layout = ChunkLayout(10, 8, 32)
        assert layout.chunk_of(0) == 0
        assert layout.chunk_of(3) == 0
        assert layout.chunk_of(4) == 1

    def test_chunk_extent_beyond_array(self):
        layout = ChunkLayout(10, 8, 32)
        assert layout.chunk_extent(5) == 0

    def test_empty_array(self):
        layout = ChunkLayout(0, 8, 64)
        assert layout.chunk_count == 0

    def test_chunk_smaller_than_element_rejected(self):
        with pytest.raises(StorageError):
            ChunkLayout(10, 8, 4)

    def test_chunk_slices_cover_array(self):
        layout = ChunkLayout(10, 8, 32)
        covered = sum(count for _, _, count in layout.chunk_slices())
        assert covered == 10

    def test_non_multiple_chunk_bytes(self):
        # 20 bytes with 8-byte items -> 2 elements per chunk
        layout = ChunkLayout(5, 8, 20)
        assert layout.elements_per_chunk == 2
        assert layout.chunk_count == 3


class TestRunConversion:
    def test_linear_indices(self):
        indices = linear_indices_of_runs([(0, 1, 3), (10, 2, 2)])
        assert indices.tolist() == [0, 1, 2, 10, 12]

    def test_empty_runs(self):
        assert linear_indices_of_runs([]).tolist() == []

    def test_contiguous_run_chunks(self):
        assert chunks_of_runs([(0, 1, 10)], 4) == [0, 1, 2]

    def test_strided_run_chunks(self):
        # elements 0, 8, 16 with epc 4 -> chunks 0, 2, 4
        assert chunks_of_runs([(0, 8, 3)], 4) == [0, 2, 4]

    def test_stride_within_chunk(self):
        # elements 0, 2, 4, 6 with epc 8 -> all in chunk 0
        assert chunks_of_runs([(0, 2, 4)], 8) == [0]

    def test_first_touch_order_preserved(self):
        order = chunks_of_runs([(8, 1, 2), (0, 1, 2)], 4)
        assert order == [2, 0]

    def test_duplicates_suppressed(self):
        order = chunks_of_runs([(0, 1, 4), (2, 1, 4)], 4)
        assert order == [0, 1]

    def test_empty_run_skipped(self):
        assert chunks_of_runs([(0, 1, 0)], 4) == []

    def test_stride_larger_than_chunk(self):
        assert chunks_of_runs([(0, 100, 3)], 4) == [0, 25, 50]


class TestAssemble:
    def test_gather(self):
        chunks = {
            0: np.array([0.0, 1.0, 2.0, 3.0]),
            1: np.array([4.0, 5.0, 6.0, 7.0]),
        }
        indices = np.array([1, 5, 2], dtype=np.int64)
        out = assemble_from_chunks(indices, chunks, 4, np.float64)
        assert out.tolist() == [1.0, 5.0, 2.0]

    def test_missing_chunk_raises(self):
        with pytest.raises(StorageError):
            assemble_from_chunks(
                np.array([9], dtype=np.int64), {}, 4, np.float64
            )

    def test_empty_indices(self):
        out = assemble_from_chunks(
            np.empty(0, dtype=np.int64), {}, 4, np.float64
        )
        assert out.size == 0
