"""Data loaders: Turtle, NTriples, collection consolidation, Data Cube,
and file links."""

import numpy as np
import pytest

from repro import SSDM, URI, BlankNode, Literal, NumericArray, ArrayProxy
from repro.exceptions import ParseError, StorageError
from repro.rdf.namespace import RDF, QB
from repro.loaders.collections import consolidate_collections
from repro.loaders.datacube import SSDM_NS, consolidate_data_cube
from repro.loaders.filelink import NpyLinkStore


class TestTurtle:
    def test_basic_triples(self, ssdm):
        n = ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p ex:b .
            ex:a ex:q 5 .
        """)
        assert n == 2
        assert len(ssdm.graph) == 2

    def test_semicolon_comma(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p 1 , 2 ; ex:q 3 .
        """)
        assert len(ssdm.graph) == 3

    def test_a_keyword(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a a ex:Thing ."
        )
        assert ssdm.graph.value(URI("http://e/a"), RDF.type) == \
            URI("http://e/Thing")

    def test_blank_node_labels_shared(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            _:x ex:p 1 . _:x ex:q 2 .
        """)
        subjects = set(ssdm.graph.subjects())
        assert len(subjects) == 1

    def test_blank_node_property_list(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:knows [ ex:name "Nested" ] .
        """)
        nested = ssdm.graph.value(URI("http://e/a"), URI("http://e/knows"))
        assert isinstance(nested, BlankNode)
        assert ssdm.graph.value(nested, URI("http://e/name")) == \
            Literal("Nested")

    def test_literals(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            ex:a ex:s "text" ; ex:l "chat"@fr ; ex:i 5 ; ex:d 2.5 ;
                 ex:b true ; ex:n -7 ; ex:t "9"^^xsd:integer .
        """)
        g = ssdm.graph
        a = URI("http://e/a")
        assert g.value(a, URI("http://e/l")) == Literal("chat", lang="fr")
        assert g.value(a, URI("http://e/t")) == Literal(9)
        assert g.value(a, URI("http://e/n")) == Literal(-7)
        assert g.value(a, URI("http://e/b")) == Literal(True)

    def test_collection_consolidated_to_array(self, ssdm):
        n = ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:m ex:val ((1 2) (3 4)) .
        """)
        assert n == 1                       # one triple, not 13
        value = ssdm.graph.value(URI("http://e/m"), URI("http://e/val"))
        assert isinstance(value, NumericArray)
        assert value.shape == (2, 2)

    def test_collection_unconsolidated_mode(self, ssdm):
        n = ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:m ex:val ((1 2) (3 4)) .",
            consolidate=False,
        )
        # figure 4 of the dissertation: 13 triples for a 2x2 matrix
        assert n == 13

    def test_mixed_collection_stays_list(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:m ex:val (1 "two" 3) .
        """)
        assert ssdm.graph.count(None, RDF.first, None) == 3

    def test_empty_collection_is_nil(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:m ex:val () ."
        )
        assert ssdm.graph.value(
            URI("http://e/m"), URI("http://e/val")
        ) == RDF.nil

    def test_sparql_style_prefix(self, ssdm):
        ssdm.load_turtle_text(
            "PREFIX ex: <http://e/>\nex:a ex:p 1 ."
        )
        assert len(ssdm.graph) == 1

    def test_base_directive(self, ssdm):
        ssdm.load_turtle_text(
            "@base <http://base/> . <a> <p> 1 ."
        )
        assert ssdm.graph.value(
            URI("http://base/a"), URI("http://base/p")
        ) == Literal(1)

    def test_comments_ignored(self, ssdm):
        ssdm.load_turtle_text("""
            # a comment
            @prefix ex: <http://e/> . # inline
            ex:a ex:p 1 .
        """)
        assert len(ssdm.graph) == 1

    def test_malformed_raises(self, ssdm):
        with pytest.raises(ParseError):
            ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:p .")

    def test_load_into_named_graph(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 1 .",
            graph=URI("http://g/x"),
        )
        assert len(ssdm.graph) == 0
        assert len(ssdm.dataset.graph(URI("http://g/x"))) == 1

    def test_load_from_file(self, ssdm, tmp_path):
        path = tmp_path / "data.ttl"
        path.write_text("@prefix ex: <http://e/> . ex:a ex:p 1 .")
        assert ssdm.load_turtle(str(path)) == 1

    def test_ntriples(self, ssdm):
        from repro.loaders.ntriples import load_ntriples_text
        n = load_ntriples_text(ssdm, """
<http://e/a> <http://e/p> <http://e/b> .
<http://e/a> <http://e/q> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
""")
        assert n == 2
        assert ssdm.graph.value(
            URI("http://e/a"), URI("http://e/q")
        ) == Literal(5)


class TestCollectionConsolidation:
    def test_consolidates_numeric_list(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:m ex:val ((1 2) (3 4)) .",
            consolidate=False,
        )
        stats = consolidate_collections(ssdm.graph)
        assert stats["arrays"] == 1
        assert stats["triples_removed"] == 12
        value = ssdm.graph.value(URI("http://e/m"), URI("http://e/val"))
        assert value == NumericArray([[1, 2], [3, 4]])

    def test_leaves_mixed_list(self, ssdm):
        ssdm.load_turtle_text(
            '@prefix ex: <http://e/> . ex:m ex:val (1 "x") .',
            consolidate=False,
        )
        stats = consolidate_collections(ssdm.graph)
        assert stats["arrays"] == 0
        assert ssdm.graph.count(None, RDF.first, None) == 2

    def test_leaves_ragged_nesting(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:m ex:val ((1 2) (3)) .",
            consolidate=False,
        )
        stats = consolidate_collections(ssdm.graph)
        assert stats["arrays"] == 0

    def test_multiple_references_rewired(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:m ex:val (1 2 3) . "
            "ex:n ex:val (4 5) .",
            consolidate=False,
        )
        stats = consolidate_collections(ssdm.graph)
        assert stats["arrays"] == 2
        assert ssdm.graph.value(
            URI("http://e/n"), URI("http://e/val")
        ) == NumericArray([4, 5])

    def test_queryable_after_consolidation(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:m ex:val (5 6 7) .",
            consolidate=False,
        )
        consolidate_collections(ssdm.graph)
        r = ssdm.execute(
            "PREFIX ex: <http://e/> SELECT ?a[2] WHERE { ex:m ex:val ?a }"
        )
        assert r.rows == [(6,)]


DATACUBE_TTL = """
@prefix ex: <http://e/> .
@prefix qb: <http://purl.org/linked-data/cube#> .
ex:ds a qb:DataSet ; qb:structure ex:dsd .
ex:dsd qb:component [ qb:dimension ex:year ] ,
                    [ qb:dimension ex:region ] ,
                    [ qb:measure ex:amount ] .
ex:o11 a qb:Observation ; qb:dataSet ex:ds ;
    ex:year 2010 ; ex:region "north" ; ex:amount 10.0 .
ex:o12 a qb:Observation ; qb:dataSet ex:ds ;
    ex:year 2010 ; ex:region "south" ; ex:amount 20.0 .
ex:o21 a qb:Observation ; qb:dataSet ex:ds ;
    ex:year 2011 ; ex:region "north" ; ex:amount 30.0 .
ex:o22 a qb:Observation ; qb:dataSet ex:ds ;
    ex:year 2011 ; ex:region "south" ; ex:amount 40.0 .
"""


class TestDataCube:
    def test_consolidation_stats(self, ssdm):
        ssdm.load_turtle_text(DATACUBE_TTL)
        before = len(ssdm.graph)
        stats = consolidate_data_cube(ssdm)
        assert stats["datasets"] == 1
        assert stats["arrays"] == 1
        assert len(ssdm.graph) < before

    def test_dense_array_contents(self, ssdm):
        ssdm.load_turtle_text(DATACUBE_TTL)
        consolidate_data_cube(ssdm)
        r = ssdm.execute("""
            PREFIX ssdm: <http://udbl.uu.se/ssdm#>
            SELECT ?arr WHERE {
                <http://e/ds> ssdm:dataArray ?d .
                ?d ssdm:array ?arr }""")
        array = r.rows[0][0]
        # dimensions sort: region before year -> shape (2 regions, 2 years)
        assert array.shape == (2, 2)
        assert sorted(v for row in array.to_nested_lists()
                      for v in row) == [10.0, 20.0, 30.0, 40.0]

    def test_numeric_dimension_becomes_array(self, ssdm):
        ssdm.load_turtle_text(DATACUBE_TTL)
        consolidate_data_cube(ssdm)
        r = ssdm.execute("""
            PREFIX ssdm: <http://udbl.uu.se/ssdm#>
            SELECT ?vals WHERE {
                ?d ssdm:property <http://e/year> ; ssdm:values ?vals }""")
        assert r.rows[0][0].to_nested_lists() == [2010, 2011]

    def test_observations_removed(self, ssdm):
        ssdm.load_turtle_text(DATACUBE_TTL)
        consolidate_data_cube(ssdm)
        assert ssdm.graph.count(None, QB.dataSet, None) == 0

    def test_incomplete_dataset_skipped(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            @prefix qb: <http://purl.org/linked-data/cube#> .
            ex:ds a qb:DataSet .
        """)
        stats = consolidate_data_cube(ssdm)
        assert stats["datasets"] == 0

    def test_dimension_inference_without_dsd(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            @prefix qb: <http://purl.org/linked-data/cube#> .
            ex:ds a qb:DataSet .
            ex:o1 a qb:Observation ; qb:dataSet ex:ds ;
                ex:dim "a" ; ex:m 1.5 .
            ex:o2 a qb:Observation ; qb:dataSet ex:ds ;
                ex:dim "b" ; ex:m 2.5 .
        """)
        stats = consolidate_data_cube(ssdm)
        assert stats["datasets"] == 1


class TestFileLinks:
    def test_link_and_query(self, ssdm, tmp_path):
        data = np.arange(100, dtype=np.float64)
        path = str(tmp_path / "a.npy")
        np.save(path, data)
        proxy = ssdm.link_file(
            URI("http://e/r"), URI("http://e/data"), path
        )
        assert isinstance(proxy, ArrayProxy)
        r = ssdm.execute("""
            SELECT (array_sum(?a) AS ?s) ?a[5]
            WHERE { <http://e/r> <http://e/data> ?a }""")
        assert r.rows[0][0] == data.sum()
        assert r.rows[0][1] == 4.0

    def test_link_2d(self, ssdm, tmp_path):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        path = str(tmp_path / "m.npy")
        np.save(path, data)
        store = NpyLinkStore(chunk_bytes=32)
        proxy = store.link(path)
        assert proxy.shape == (3, 4)
        out = proxy.subscript([None, 1]).resolve()
        assert out.to_nested_lists() == data[:, 1].tolist()

    def test_store_is_read_only(self, tmp_path):
        store = NpyLinkStore()
        with pytest.raises(StorageError):
            store.put(NumericArray([1, 2]))

    def test_missing_file_raises(self):
        store = NpyLinkStore()
        with pytest.raises(StorageError):
            store.link("/nonexistent/file.npy")

    def test_shared_store_on_ssdm(self, ssdm, tmp_path):
        for name in ("x", "y"):
            path = str(tmp_path / ("%s.npy" % name))
            np.save(path, np.ones(10))
            ssdm.link_file(
                URI("http://e/" + name), URI("http://e/data"), path
            )
        assert len(ssdm.graph) == 2
        assert ssdm._npy_link_store is not None
