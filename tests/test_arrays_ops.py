"""Array arithmetic, aggregates, and second-order functions."""

import numpy as np
import pytest

from repro.arrays import (
    NumericArray, array_avg, array_build, array_condense, array_map,
    array_max, array_min, array_sum,
)
from repro.arrays.ops import elementwise, elementwise_unary, array_count
from repro.exceptions import EvaluationError, TypeMismatchError


@pytest.fixture
def a():
    return NumericArray([[1.0, 2.0], [3.0, 4.0]])


class TestElementwise:
    def test_array_plus_scalar(self, a):
        out = elementwise(np.add, a, 10)
        assert out.to_nested_lists() == [[11, 12], [13, 14]]

    def test_scalar_minus_array(self, a):
        out = elementwise(np.subtract, 10, a)
        assert out.to_nested_lists() == [[9, 8], [7, 6]]

    def test_array_times_array(self, a):
        out = elementwise(np.multiply, a, a)
        assert out.to_nested_lists() == [[1, 4], [9, 16]]

    def test_scalar_scalar_gives_scalar(self):
        assert elementwise(np.add, 2, 3) == 5

    def test_shape_mismatch_rejected(self, a):
        with pytest.raises(TypeMismatchError):
            elementwise(np.add, a, NumericArray([1.0, 2.0, 3.0]))

    def test_non_numeric_rejected(self, a):
        with pytest.raises(TypeMismatchError):
            elementwise(np.add, a, "x")

    def test_unary_negate(self, a):
        out = elementwise_unary(np.negative, a)
        assert out.to_nested_lists() == [[-1, -2], [-3, -4]]


class TestAggregates:
    def test_sum(self, a):
        assert array_sum(a) == 10.0

    def test_avg(self, a):
        assert array_avg(a) == 2.5

    def test_min_max(self, a):
        assert array_min(a) == 1.0
        assert array_max(a) == 4.0

    def test_count(self, a):
        assert array_count(a) == 4
        assert array_count(3.5) == 1

    def test_scalar_passthrough(self):
        assert array_sum(5) == 5.0

    def test_empty_array_errors(self):
        empty = NumericArray(np.empty((0,)))
        with pytest.raises(EvaluationError):
            array_sum(empty)

    def test_non_array_rejected(self):
        with pytest.raises(TypeMismatchError):
            array_sum("x")

    def test_aggregate_over_view(self, a):
        from repro.arrays import Span
        col = a.subscript([None, 1])
        assert array_sum(col) == 6.0


class TestArrayMap:
    def test_single_array(self, a):
        out = array_map(lambda x: x * 2, a)
        assert out.to_nested_lists() == [[2, 4], [6, 8]]

    def test_multiple_arrays(self, a):
        out = array_map(lambda x, y: x + y, a, a)
        assert out.to_nested_lists() == [[2, 4], [6, 8]]

    def test_vectorized_path(self, a):
        fn = lambda x: x + 1
        fn.numpy_op = np.vectorize(lambda x: x + 1)
        out = array_map(fn, a)
        assert out.to_nested_lists() == [[2, 3], [4, 5]]

    def test_shape_mismatch(self, a):
        with pytest.raises(TypeMismatchError):
            array_map(lambda x, y: x, a, NumericArray([1.0]))

    def test_no_arrays_rejected(self):
        with pytest.raises(EvaluationError):
            array_map(lambda x: x)

    def test_non_array_rejected(self):
        with pytest.raises(TypeMismatchError):
            array_map(lambda x: x, 42)


class TestArrayCondense:
    def test_whole_array(self, a):
        assert array_condense(lambda x, y: x + y, a) == 10.0

    def test_max_reducer(self, a):
        assert array_condense(lambda x, y: max(x, y), a) == 4.0

    def test_axis_reduction(self, a):
        out = array_condense(lambda x, y: x + y, a, axis=0)
        assert out.to_nested_lists() == [4, 6]

    def test_axis_one(self, a):
        out = array_condense(lambda x, y: x + y, a, axis=1)
        assert out.to_nested_lists() == [3, 7]

    def test_vectorized_reducer(self, a):
        fn = lambda x, y: x + y
        fn.numpy_op = np.add
        assert array_condense(fn, a) == 10.0

    def test_single_element(self):
        assert array_condense(lambda x, y: x + y, NumericArray([7.0])) == 7.0

    def test_empty_errors(self):
        with pytest.raises(EvaluationError):
            array_condense(lambda x, y: x + y, NumericArray(np.empty(0)))


class TestArrayBuild:
    def test_one_based_indexes(self):
        out = array_build((2, 3), lambda i, j: 10 * i + j)
        assert out.to_nested_lists() == [[11, 12, 13], [21, 22, 23]]

    def test_vector(self):
        out = array_build((4,), lambda i: i * i)
        assert out.to_nested_lists() == [1, 4, 9, 16]

    def test_empty_shape_ok(self):
        out = array_build((0,), lambda i: i)
        assert out.element_count == 0

    def test_negative_extent_rejected(self):
        with pytest.raises(EvaluationError):
            array_build((-1,), lambda i: i)
