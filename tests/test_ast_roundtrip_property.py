"""Property: random expression ASTs survive serialize -> parse.

Random expression trees (arithmetic, comparisons, logic, built-ins,
subscripts, closures) are planted into a SELECT query, rendered to text,
and re-parsed; the parse must reproduce the AST exactly.  This fuzzes
the parser's precedence handling against the serializer's
parenthesization.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.term import Literal, URI
from repro.sparql import ast, parse_query
from repro.sparql.serializer import serialize_query

variables = st.sampled_from("abcde").map(ast.Var)

literals = st.one_of(
    st.integers(0, 99).map(lambda v: ast.TermExpr(Literal(v))),
    st.floats(0.5, 9.5).map(
        lambda v: ast.TermExpr(Literal(round(v, 2)))
    ),
    st.sampled_from(["x", "yz"]).map(
        lambda s: ast.TermExpr(Literal(s))
    ),
    st.booleans().map(lambda b: ast.TermExpr(Literal(b))),
    st.just(ast.TermExpr(URI("http://e/u"))),
)


def expressions(depth=3):
    if depth == 0:
        return st.one_of(variables, literals)
    sub = expressions(depth - 1)
    return st.one_of(
        variables,
        literals,
        st.tuples(
            st.sampled_from(["+", "-", "*", "/", "=", "!=", "<", ">",
                             "<=", ">=", "&&", "||"]),
            sub, sub,
        ).map(lambda t: ast.BinaryOp(*t)),
        st.tuples(st.sampled_from(["!", "-"]), sub).map(
            lambda t: ast.UnaryOp(*t)
        ),
        st.tuples(
            st.sampled_from(["ABS", "STR", "CEIL", "SQRT"]), sub
        ).map(lambda t: ast.FunctionCall(t[0], [t[1]])),
        st.tuples(sub, sub).map(
            lambda t: ast.FunctionCall("CONCAT", list(t))
        ),
        st.tuples(variables, sub).map(
            lambda t: ast.ArraySubscript(t[0], [t[1]])
        ),
        st.tuples(variables, sub, sub).map(
            lambda t: ast.ArraySubscript(
                t[0], [ast.RangeSubscript(t[1], None, t[2])]
            )
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: ast.InExpr(t[0], [t[1], t[2]])
        ),
        st.tuples(variables, sub).map(
            lambda t: ast.Closure([t[0]], t[1])
        ),
    )


@given(expressions())
@settings(max_examples=300, deadline=None)
def test_expression_roundtrip(expr):
    query = ast.SelectQuery(
        [(expr, ast.Var("out"))],
        ast.GroupPattern([
            ast.TriplePattern(ast.Var("s"), ast.Var("p"), ast.Var("o"))
        ]),
    )
    text = serialize_query(query)
    reparsed = parse_query(text)
    assert reparsed.projection[0][0] == expr, text


@given(st.lists(st.tuples(
    st.sampled_from("st"), st.sampled_from("pq"),
    st.one_of(st.sampled_from("ou").map(str),
              st.integers(0, 9).map(str)),
), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_pattern_roundtrip(raw):
    patterns = []
    for s, p, o in raw:
        subject = ast.Var(s)
        predicate = ast.Var(p)
        value = ast.Var(o) if o.isalpha() else Literal(int(o))
        patterns.append(ast.TriplePattern(subject, predicate, value))
    query = ast.SelectQuery("*", ast.GroupPattern(patterns))
    text = serialize_query(query)
    reparsed = parse_query(text)
    assert reparsed.where == query.where, text
