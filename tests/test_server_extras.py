"""Additional client/server protocol coverage: wire round-trips for
every term kind, the request lifecycle (deadlines, structured errors,
admission control), retry/reconnect behaviour, and deterministic
fault-injection integration."""

import json
import socket
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import SSDM, NumericArray, URI
from repro.client import SSDMClient, SSDMServer
from repro.client.server import deserialize_value, serialize_value
from repro.exceptions import (
    ConnectionClosedError,
    RequestTimeoutError,
    ServerOverloadedError,
    StorageError,
)
from repro.rdf.term import BlankNode, Literal
from repro.storage import APRResolver, FaultPlan, MemoryArrayStore
from repro.storage.bufferpool import BufferPool


@pytest.fixture
def server():
    ssdm = SSDM()
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:a ex:p 1 ; ex:name "Ann" .
    """)
    instance = SSDMServer(ssdm).start()
    yield instance
    instance.stop()


def test_construct_ships_ntriples(server):
    client = SSDMClient("127.0.0.1", server.server_address[1])
    text = client.query(
        "PREFIX ex: <http://e/> "
        "CONSTRUCT { ?s ex:q ?v } WHERE { ?s ex:p ?v }"
    )
    client.close()
    assert isinstance(text, str)
    assert "<http://e/q>" in text


def test_unknown_op_rejected(server):
    raw = socket.create_connection(
        ("127.0.0.1", server.server_address[1]), 5.0
    )
    handle = raw.makefile("rwb")
    handle.write(b'{"op": "frobnicate"}\n')
    handle.flush()
    response = json.loads(handle.readline())
    raw.close()
    assert response["ok"] is False
    assert "unknown op" in response["error"]


def test_malformed_json_reported(server):
    raw = socket.create_connection(
        ("127.0.0.1", server.server_address[1]), 5.0
    )
    handle = raw.makefile("rwb")
    handle.write(b"this is not json\n")
    handle.flush()
    response = json.loads(handle.readline())
    raw.close()
    assert response["ok"] is False


def test_two_concurrent_clients(server):
    port = server.server_address[1]
    first = SSDMClient("127.0.0.1", port)
    second = SSDMClient("127.0.0.1", port)
    assert first.query("PREFIX ex: <http://e/> ASK { ex:a ex:p 1 }")
    assert second.query("PREFIX ex: <http://e/> ASK { ex:a ex:p 1 }")
    # interleave: updates from one are visible to the other
    first.update("PREFIX ex: <http://e/> INSERT DATA { ex:b ex:p 2 }")
    assert second.query("PREFIX ex: <http://e/> ASK { ex:b ex:p 2 }")
    first.close()
    second.close()


def test_blank_lines_skipped(server):
    raw = socket.create_connection(
        ("127.0.0.1", server.server_address[1]), 5.0
    )
    handle = raw.makefile("rwb")
    handle.write(b"\n\n")
    handle.write(
        b'{"op": "query", "text": '
        b'"PREFIX ex: <http://e/> ASK { ex:a ex:p 1 }"}\n'
    )
    handle.flush()
    response = json.loads(handle.readline())
    raw.close()
    assert response["ok"] is True
    assert response["result"] is True


# -- wire-protocol round trips: every term kind -------------------------------------

_texts = st.text(max_size=24)
_uris = st.builds(URI, st.text(min_size=1, max_size=40))
_bnode_labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12
)
_plain_literals = st.builds(
    Literal,
    st.one_of(
        st.booleans(),
        st.integers(min_value=-10**12, max_value=10**12),
        st.floats(allow_nan=False, allow_infinity=False),
        _texts,
    ),
)
_lang_literals = st.builds(
    lambda value, lang: Literal(value, lang=lang),
    _texts, st.sampled_from(["en", "fr", "de", "en-GB", "pt-BR"]),
)
_typed_literals = st.builds(
    lambda value: Literal(value, URI("http://e/opaque-datatype")),
    _texts,
)
_arrays = st.one_of(
    st.builds(
        NumericArray,
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e9, max_value=1e9),
            min_size=1, max_size=8,
        ),
    ),
    st.builds(
        NumericArray,
        st.integers(min_value=1, max_value=3).flatmap(
            lambda width: st.lists(
                st.lists(st.integers(min_value=-100, max_value=100),
                         min_size=width, max_size=width),
                min_size=1, max_size=4,
            )
        ),
    ),
)
_terms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**12, max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    _texts,
    _uris,
    st.builds(BlankNode, _bnode_labels),
    _plain_literals,
    _lang_literals,
    _typed_literals,
    _arrays,
)


class TestWireRoundTrip:
    @given(term=_terms)
    @settings(max_examples=200, deadline=None)
    def test_every_term_kind_round_trips(self, term):
        wire = json.loads(json.dumps(serialize_value(term)))
        assert deserialize_value(wire) == term

    def test_lang_literal_keeps_its_tag(self):
        # regression: the lang field used to be dropped client-side
        literal = Literal("chat", lang="fr")
        back = deserialize_value(json.loads(json.dumps(
            serialize_value(literal)
        )))
        assert back == literal
        assert back.lang == "fr"
        assert back.datatype == Literal.LANG_STRING

    def test_repr_fallback_is_serializable(self):
        wire = serialize_value(object())
        assert set(wire) == {"@repr"}
        payload = json.loads(json.dumps(wire))
        assert deserialize_value(payload) == payload   # opaque, kept as-is

    def test_lang_literal_over_the_wire(self, server):
        client = SSDMClient("127.0.0.1", server.server_address[1])
        client.update(
            'PREFIX ex: <http://e/> '
            'INSERT DATA { ex:a ex:label "chat"@fr }'
        )
        result = client.query(
            "PREFIX ex: <http://e/> SELECT ?l WHERE { ex:a ex:label ?l }"
        )
        client.close()
        assert result.rows == [(Literal("chat", lang="fr"),)]
        assert result.rows[0][0].lang == "fr"


# -- lifecycle integration: timeouts, overload, retry, faults ------------------------


def _slow_server(read_latency, max_concurrent=8, default_timeout_ms=None,
                 max_queue=0):
    """A server whose externalized-array reads sleep per chunk.

    ``max_queue=0`` (the default here) disables the admission queue so
    these lifecycle tests keep the original binary shed-at-capacity
    semantics; queueing behaviour has its own tests in
    ``test_governor.py``.
    """

    class NoAggregateStore(MemoryArrayStore):
        supports_aggregates = False       # force chunk streaming

    pool = BufferPool(4 << 20)
    store = NoAggregateStore(
        chunk_bytes=64, buffer_pool=pool,
        faults=FaultPlan(read_latency=read_latency),
    )
    store._default_resolver = APRResolver(store, strategy="prefetch")
    ssdm = SSDM(array_store=store, externalize_threshold=32)
    elements = " ".join(str(i) for i in range(256))
    ssdm.load_turtle_text(
        "@prefix ex: <http://e/> . ex:m ex:val (%s) ; ex:n 7 ." % elements
    )
    instance = SSDMServer(
        ssdm, max_concurrent=max_concurrent,
        default_timeout_ms=default_timeout_ms, max_queue=max_queue,
    ).start()
    return instance, store, pool


SLOW_AGGREGATE = (
    "PREFIX ex: <http://e/> "
    "SELECT (array_sum(?a) AS ?s) WHERE { ex:m ex:val ?a }"
)
QUICK_ASK = "PREFIX ex: <http://e/> ASK { ex:m ex:n 7 }"


class TestRequestLifecycle:
    def test_timeout_ms_yields_structured_timeout_response(self):
        server, store, pool = _slow_server(read_latency=0.02)
        try:
            raw = socket.create_connection(
                ("127.0.0.1", server.server_address[1]), 5.0
            )
            handle = raw.makefile("rwb")
            request = {"op": "query", "text": SLOW_AGGREGATE,
                       "timeout_ms": 150}
            started = time.monotonic()
            handle.write((json.dumps(request) + "\n").encode())
            handle.flush()
            response = json.loads(handle.readline())
            elapsed = time.monotonic() - started
            raw.close()
            assert response["ok"] is False
            assert response["code"] == "TIMEOUT"
            assert elapsed < 2 * 0.150 + 0.15     # bounded, not ~5s
        finally:
            server.stop()

    def test_timeout_releases_pins_and_queued_update_completes(self):
        """The acceptance scenario: a timed-out query answers within 2x
        its deadline, releases its buffer-pool pins, and a concurrently
        queued update (blocked behind the query's read lock) completes."""
        server, store, pool = _slow_server(read_latency=0.02)
        port = server.server_address[1]
        try:
            pinned_before = pool.stats()["pinned"]
            querier = SSDMClient("127.0.0.1", port, retries=0)
            updater = SSDMClient("127.0.0.1", port, retries=0)
            outcome = {}

            def run_query():
                started = time.monotonic()
                try:
                    querier.query(SLOW_AGGREGATE, timeout_ms=300)
                    outcome["error"] = None
                except Exception as error:
                    outcome["error"] = error
                outcome["elapsed"] = time.monotonic() - started

            thread = threading.Thread(target=run_query)
            thread.start()
            time.sleep(0.1)       # query holds the read lock, fetching
            count = updater.update(
                "PREFIX ex: <http://e/> INSERT DATA { ex:x ex:n 1 }",
                timeout_ms=10000,
            )
            assert count == 1     # writer got in once the query timed out
            thread.join(5.0)
            assert isinstance(outcome["error"], RequestTimeoutError)
            assert outcome["elapsed"] < 2 * 0.300
            assert pool.stats()["pinned"] == pinned_before
            stats = updater.stats()
            assert stats["server"]["timeouts"] >= 1
            querier.close()
            updater.close()
        finally:
            server.stop()

    def test_overload_shed_and_client_retry(self):
        server, store, pool = _slow_server(
            read_latency=0.02, max_concurrent=1
        )
        port = server.server_address[1]
        try:
            slow = SSDMClient("127.0.0.1", port, retries=0)
            blocked = {}

            def run_slow():
                try:
                    slow.query(SLOW_AGGREGATE, timeout_ms=400)
                except RequestTimeoutError:
                    pass

            thread = threading.Thread(target=run_slow)
            thread.start()
            time.sleep(0.1)       # the single admission slot is taken
            # a no-retry client is shed immediately with OVERLOAD
            shed = SSDMClient("127.0.0.1", port, retries=0)
            with pytest.raises(ServerOverloadedError):
                shed.query(QUICK_ASK)
            shed.close()
            # a retrying client backs off past the slow query's timeout
            patient = SSDMClient(
                "127.0.0.1", port, retries=4, backoff=0.2
            )
            assert patient.query(QUICK_ASK) is True
            assert patient.retries_performed >= 1
            stats = patient.stats()
            assert stats["server"]["shed"] >= 1
            patient.close()
            thread.join(5.0)
            slow.close()
        finally:
            server.stop()

    def test_injected_storage_fault_maps_to_storage_code(self):
        server, store, pool = _slow_server(read_latency=0.0)
        store.faults = FaultPlan(error_every=1)
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port, retries=0)
            with pytest.raises(StorageError):
                client.query(SLOW_AGGREGATE)
            assert pool.stats()["pinned"] == 0
            client.close()
        finally:
            server.stop()

    def test_default_timeout_applies_without_request_field(self):
        server, store, pool = _slow_server(
            read_latency=0.02, default_timeout_ms=150
        )
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port, retries=0)
            with pytest.raises(RequestTimeoutError):
                client.query(SLOW_AGGREGATE)
            client.close()
        finally:
            server.stop()

    def test_bad_timeout_ms_rejected(self, server):
        raw = socket.create_connection(
            ("127.0.0.1", server.server_address[1]), 5.0
        )
        handle = raw.makefile("rwb")
        handle.write((json.dumps({
            "op": "query", "text": QUICK_ASK, "timeout_ms": "soonish",
        }) + "\n").encode())
        handle.flush()
        response = json.loads(handle.readline())
        raw.close()
        assert response["ok"] is False
        assert "timeout_ms" in response["error"]


class TestConnectionRobustness:
    def test_eof_is_a_clear_connection_error(self):
        """Regression: a dropped connection used to surface as a bare
        JSONDecodeError on b""."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]

        def close_on_request():
            conn, _ = listener.accept()
            conn.recv(4096)
            conn.close()

        thread = threading.Thread(target=close_on_request, daemon=True)
        thread.start()
        client = SSDMClient("127.0.0.1", port, retries=0)
        with pytest.raises(ConnectionClosedError):
            client.query(QUICK_ASK)
        client.close()
        listener.close()

    def test_retry_reconnects_after_dropped_connection(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]

        def flaky_server():
            # first connection: read the request, drop without replying
            conn, _ = listener.accept()
            conn.recv(4096)
            conn.close()
            # second connection (the reconnect): answer properly
            conn, _ = listener.accept()
            reader = conn.makefile("rb")
            reader.readline()
            conn.sendall(b'{"ok": true, "result": true}\n')
            conn.close()

        thread = threading.Thread(target=flaky_server, daemon=True)
        thread.start()
        client = SSDMClient("127.0.0.1", port, retries=2, backoff=0.01)
        assert client.query(QUICK_ASK) is True
        assert client.retries_performed == 1
        client.close()
        listener.close()

    def test_update_not_replayed_after_connection_loss(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        accepted = []

        def drop_everything():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                accepted.append(1)
                conn.recv(4096)
                conn.close()

        thread = threading.Thread(target=drop_everything, daemon=True)
        thread.start()
        client = SSDMClient("127.0.0.1", port, retries=3, backoff=0.01)
        with pytest.raises(ConnectionClosedError):
            client.update("INSERT DATA { <http://e/a> <http://e/p> 1 }")
        # one request connection (+1 reconnect), but no replay of the op
        assert client.retries_performed == 0
        client.close()
        listener.close()

    def test_unserializable_response_reports_internal_error(self, server):
        # force a payload json.dumps cannot encode: the handler must
        # answer with an INTERNAL error instead of killing the socket
        server.ssdm_dispatch = lambda request: {"ok": True, "x": object()}
        raw = socket.create_connection(
            ("127.0.0.1", server.server_address[1]), 5.0
        )
        handle = raw.makefile("rwb")
        handle.write((json.dumps({"op": "query", "text": QUICK_ASK})
                      + "\n").encode())
        handle.flush()
        response = json.loads(handle.readline())
        raw.close()
        assert response["ok"] is False
        assert response["code"] == "INTERNAL"
        assert "serializable" in response["error"]

    def test_stats_include_server_lifecycle_block(self, server):
        client = SSDMClient("127.0.0.1", server.server_address[1])
        client.query(QUICK_ASK)
        stats = client.stats()
        client.close()
        block = stats["server"]
        assert block["requests"] >= 1
        assert block["active"] >= 0
        assert "shed" in block and "timeouts" in block
