"""Additional client/server protocol coverage."""

import json
import socket

import pytest

from repro import SSDM
from repro.client import SSDMClient, SSDMServer


@pytest.fixture
def server():
    ssdm = SSDM()
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:a ex:p 1 ; ex:name "Ann" .
    """)
    instance = SSDMServer(ssdm).start()
    yield instance
    instance.stop()


def test_construct_ships_ntriples(server):
    client = SSDMClient("127.0.0.1", server.server_address[1])
    text = client.query(
        "PREFIX ex: <http://e/> "
        "CONSTRUCT { ?s ex:q ?v } WHERE { ?s ex:p ?v }"
    )
    client.close()
    assert isinstance(text, str)
    assert "<http://e/q>" in text


def test_unknown_op_rejected(server):
    raw = socket.create_connection(
        ("127.0.0.1", server.server_address[1]), 5.0
    )
    handle = raw.makefile("rwb")
    handle.write(b'{"op": "frobnicate"}\n')
    handle.flush()
    response = json.loads(handle.readline())
    raw.close()
    assert response["ok"] is False
    assert "unknown op" in response["error"]


def test_malformed_json_reported(server):
    raw = socket.create_connection(
        ("127.0.0.1", server.server_address[1]), 5.0
    )
    handle = raw.makefile("rwb")
    handle.write(b"this is not json\n")
    handle.flush()
    response = json.loads(handle.readline())
    raw.close()
    assert response["ok"] is False


def test_two_concurrent_clients(server):
    port = server.server_address[1]
    first = SSDMClient("127.0.0.1", port)
    second = SSDMClient("127.0.0.1", port)
    assert first.query("PREFIX ex: <http://e/> ASK { ex:a ex:p 1 }")
    assert second.query("PREFIX ex: <http://e/> ASK { ex:a ex:p 1 }")
    # interleave: updates from one are visible to the other
    first.update("PREFIX ex: <http://e/> INSERT DATA { ex:b ex:p 2 }")
    assert second.query("PREFIX ex: <http://e/> ASK { ex:b ex:p 2 }")
    first.close()
    second.close()


def test_blank_lines_skipped(server):
    raw = socket.create_connection(
        ("127.0.0.1", server.server_address[1]), 5.0
    )
    handle = raw.makefile("rwb")
    handle.write(b"\n\n")
    handle.write(
        b'{"op": "query", "text": '
        b'"PREFIX ex: <http://e/> ASK { ex:a ex:p 1 }"}\n'
    )
    handle.flush()
    response = json.loads(handle.readline())
    raw.close()
    assert response["ok"] is True
    assert response["result"] is True
