"""Durability layer: WAL round-trips, crash recovery, checksummed reads.

Three families of guarantees are exercised:

- **Journal codec** — hypothesis round-trips of the N-Triples-based
  record encoding over every update kind and over randomized RDF terms
  (URIs, blank nodes, plain/lang/typed literals, numeric arrays).
- **Crash recovery** — a simulated-crash matrix (crash before the WAL
  append, after it, and torn writes at every durable-write position)
  across the persistent stores, asserting the reopened instance equals
  exactly the pre-update or the post-update dataset — never anything in
  between.
- **Checksummed storage** — bit flips and truncations surface as typed
  ``CORRUPT`` errors (never wrong results, never cached), and
  ``verify()`` / ``repair()`` report and quarantine the damage.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    SSDM,
    BlankNode,
    CorruptionError,
    FaultPlan,
    FileArrayStore,
    Literal,
    NumericArray,
    SimulatedCrash,
    SqlArrayStore,
    StorageError,
    URI,
)
from repro.storage.durability import (
    DatasetJournal,
    WriteAheadLog,
    decode_triple,
    encode_triple,
    payload_crc,
)

EX = "PREFIX ex: <http://example.org/> "


# -- helpers --------------------------------------------------------------------------


def make_store(kind, base, faults=None):
    os.makedirs(base, exist_ok=True)
    if kind == "file":
        return FileArrayStore(
            os.path.join(base, "arrays"), chunk_bytes=64, faults=faults
        )
    return SqlArrayStore(
        os.path.join(base, "arrays.db"), chunk_bytes=64, faults=faults
    )


def open_ssdm(base, kind, faults=None):
    store = make_store(kind, base, faults=faults)
    ssdm = SSDM.open(
        os.path.join(base, "journal"), array_store=store,
        faults=faults, externalize_threshold=4,
    )
    ssdm.prefix("ex", "http://example.org/")
    return ssdm


def dataset_lines(ssdm):
    """A canonical, store-independent image of the whole dataset."""
    out = {}
    graphs = [("", ssdm.dataset.default_graph)]
    graphs.extend(
        (name.value, graph)
        for name, graph in ssdm.dataset.named_graphs().items()
    )
    for name, graph in graphs:
        out[name] = sorted(
            encode_triple(*triple) for triple in graph.triples()
        )
    return {name: lines for name, lines in out.items() if lines}


# -- WAL framing ----------------------------------------------------------------------


class TestWriteAheadLog:
    @given(payloads=st.lists(st.binary(min_size=0, max_size=200),
                             max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_append_scan_roundtrip(self, tmp_path_factory, payloads):
        path = str(tmp_path_factory.mktemp("wal") / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        for payload in payloads:
            wal.append(payload)
        wal.close()
        recovered = WriteAheadLog(path).recover()
        assert [p for _, p in recovered] == payloads
        assert [s for s, _ in recovered] == list(
            range(1, len(payloads) + 1)
        )

    def test_torn_tail_is_truncated(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        for i in range(3):
            wal.append(b"record-%d" % i)
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 5)
        fresh = WriteAheadLog(path)
        records = fresh.recover()
        assert [p for _, p in records] == [b"record-0", b"record-1"]
        assert fresh.truncated_bytes > 0
        # the log is clean again: appends extend the surviving prefix
        assert fresh.append(b"record-2b") == 3
        fresh.close()
        final = [p for _, p in WriteAheadLog(path).recover()]
        assert final == [b"record-0", b"record-1", b"record-2b"]

    def test_corrupt_record_stops_recovery(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(b"a" * 50)
        second_start = os.path.getsize(path)
        wal.append(b"b" * 50)
        wal.append(b"c" * 50)
        wal.close()
        with open(path, "r+b") as handle:
            handle.seek(second_start + 30)
            handle.write(b"\xff")
        records = WriteAheadLog(path).recover()
        assert [p for _, p in records] == [b"a" * 50]

    def test_torn_write_injection_truncates_frame(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, faults=FaultPlan(torn_write=2))
        wal.append(b"first")
        with pytest.raises(SimulatedCrash):
            wal.append(b"second")
        wal.close()
        assert [p for _, p in WriteAheadLog(path).recover()] == [b"first"]

    def test_crc_detects_any_single_bit_flip(self):
        body = b"\x00" * 8 + b"\x00\x00\x00\x05" + b"hello"
        reference = payload_crc(body)
        for byte in range(len(body)):
            flipped = bytearray(body)
            flipped[byte] ^= 0x40
            assert payload_crc(bytes(flipped)) != reference


# -- the triple codec -----------------------------------------------------------------


_SAFE_CHARS = st.characters(
    blacklist_categories=("Cs",)       # no lone surrogates (not UTF-8)
)
_URI_TEXT = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789:/#.-_", min_size=1,
    max_size=30,
).map(lambda s: "http://example.org/" + s)
_LITERALS = st.one_of(
    st.text(alphabet=_SAFE_CHARS, max_size=40).map(Literal),
    st.tuples(
        st.text(alphabet=_SAFE_CHARS, max_size=20),
        st.sampled_from(["en", "de", "sv"]),
    ).map(lambda pair: Literal(pair[0], lang=pair[1])),
    st.integers(min_value=-10**12, max_value=10**12).map(Literal),
    st.floats(allow_nan=False, allow_infinity=False).map(Literal),
    st.booleans().map(Literal),
)
_ARRAYS = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=12
).map(lambda data: NumericArray(np.asarray(data, dtype=np.float64)))
_SUBJECTS = st.one_of(
    _URI_TEXT.map(URI),
    st.integers(min_value=0, max_value=10**6).map(
        lambda n: BlankNode("b%d" % n)
    ),
)
_VALUES = st.one_of(_SUBJECTS, _LITERALS, _ARRAYS)


class TestTripleCodec:
    @given(_SUBJECTS, _URI_TEXT.map(URI), _VALUES)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, subject, prop, value):
        line = encode_triple(subject, prop, value)
        back_s, back_p, back_v = decode_triple(line)
        assert back_s == subject
        assert back_p == prop
        if isinstance(value, NumericArray):
            assert np.array_equal(back_v.to_numpy(), value.to_numpy())
        else:
            assert back_v == value

    def test_proxy_roundtrip_references_store_id(self, tmp_path):
        from repro import Span

        store = FileArrayStore(str(tmp_path), chunk_bytes=64)
        proxy = store.put(np.arange(32, dtype=np.float64))
        view = proxy.subscript([Span(2, 9)])
        line = encode_triple(URI("http://e/s"), URI("http://e/p"), view)
        # chunks never get copied into the record
        assert len(line) < 300
        _, _, decoded = decode_triple(line, store)
        assert decoded.array_id == view.array_id
        assert decoded.shape == view.shape
        assert decoded.offset == view.offset
        assert np.array_equal(
            decoded.resolve().to_numpy(), view.resolve().to_numpy()
        )

    def test_proxy_without_store_is_an_error(self, tmp_path):
        store = FileArrayStore(str(tmp_path), chunk_bytes=64)
        proxy = store.put(np.arange(32, dtype=np.float64))
        line = encode_triple(URI("http://e/s"), URI("http://e/p"), proxy)
        with pytest.raises(StorageError):
            decode_triple(line, None)

    def test_replayed_blank_labels_do_not_collide(self, tmp_path):
        line = "_:b%d <http://e/p> \"x\" ." % (BlankNode._counter + 50)
        replayed, _, _ = decode_triple(line)
        fresh = BlankNode()
        assert fresh.label != replayed.label

    def test_garbage_line_raises_corruption(self):
        for line in ["", "<u> <p>", "<u <p> <o> .", '<u> <p> "x" . extra']:
            with pytest.raises(CorruptionError):
                decode_triple(line)


# -- journal records over every update kind -------------------------------------------


UPDATE_STATEMENTS = {
    "insert": EX + 'INSERT DATA { ex:x ex:val ((1 2 3 4 5 6 7 8) '
                   '(9 10 11 12 13 14 15 16)) . ex:x ex:tag "fresh" }',
    "delete": EX + 'DELETE DATA { ex:seed ex:name "Seed" }',
    "modify": EX + 'DELETE { ?s ex:name ?n } INSERT { ?s ex:name "New" } '
                   'WHERE { ?s ex:name ?n }',
    "clear": "CLEAR ALL",
}


def seed_instance(base, kind, faults=None):
    """A durable SSDM with one plain triple and one externalized array."""
    ssdm = open_ssdm(base, kind, faults=faults)
    ssdm.execute(EX + 'INSERT DATA { ex:seed ex:name "Seed" }')
    ssdm.execute(
        EX + "INSERT DATA { ex:seed ex:data (1 2 3 4 5 6 7 8 9 10) }"
    )
    return ssdm


class TestJournaledUpdates:
    @pytest.mark.parametrize("kind", sorted(UPDATE_STATEMENTS))
    @pytest.mark.parametrize("store_kind", ["file", "sql"])
    def test_every_update_kind_replays(self, tmp_path, store_kind, kind):
        base = str(tmp_path)
        ssdm = seed_instance(base, store_kind)
        ssdm.execute(UPDATE_STATEMENTS[kind])
        expected = dataset_lines(ssdm)
        ssdm.close()
        reopened = open_ssdm(base, store_kind)
        assert dataset_lines(reopened) == expected
        reopened.close()

    def test_named_graph_updates_replay(self, tmp_path):
        base = str(tmp_path)
        ssdm = open_ssdm(base, "file")
        ssdm.execute(
            EX + 'INSERT DATA { GRAPH ex:g { ex:a ex:p "in-g" } }'
        )
        ssdm.execute(EX + 'INSERT DATA { ex:a ex:p "in-default" }')
        expected = dataset_lines(ssdm)
        assert len(expected) == 2
        ssdm.close()
        reopened = open_ssdm(base, "file")
        assert dataset_lines(reopened) == expected
        # clearing just the named graph replays too
        reopened.execute(EX + "CLEAR GRAPH ex:g")
        cleared = dataset_lines(reopened)
        reopened.close()
        final = open_ssdm(base, "file")
        assert dataset_lines(final) == cleared
        final.close()

    def test_snapshot_compacts_and_preserves_state(self, tmp_path):
        base = str(tmp_path)
        ssdm = seed_instance(base, "file")
        for i in range(10):
            ssdm.execute(
                EX + 'INSERT DATA { ex:s ex:v "%d" }' % i
            )
            ssdm.execute(
                EX + 'DELETE DATA { ex:s ex:v "%d" }' % i
            )
        before = os.path.getsize(
            os.path.join(base, "journal", "wal.log")
        )
        expected = dataset_lines(ssdm)
        ssdm.snapshot()
        after = os.path.getsize(os.path.join(base, "journal", "wal.log"))
        assert after < before
        ssdm.close()
        reopened = open_ssdm(base, "file")
        assert dataset_lines(reopened) == expected
        assert reopened.stats()["durability"]["journal"][
            "records_replayed"
        ] <= 3
        reopened.close()

    def test_updates_without_journal_still_work(self, ssdm):
        ssdm.prefix("ex", "http://example.org/")
        assert ssdm.journal is None
        assert ssdm.execute(EX + 'INSERT DATA { ex:a ex:p "v" }') == 1
        assert ssdm.snapshot() is None


# -- term-dictionary persistence ------------------------------------------------------


class TestDictionaryPersistence:
    """The WAL's term→id records reconstruct a byte-identical ID space.

    Dictionary IDs are engine-internal, so equality of query *results*
    would hold even with divergent IDs; these tests pin the stronger
    invariant the sorted permutation indexes rely on — after replay,
    every pre-crash ID resolves to the very same term.
    """

    def test_replay_reconstructs_identical_id_space(self, tmp_path):
        base = str(tmp_path)
        ssdm = open_ssdm(base, "file")
        ssdm.execute(EX + 'INSERT DATA { ex:a ex:p "x" . ex:b ex:p "y" }')
        ssdm.execute(EX + "INSERT DATA { ex:b ex:q ex:a }")
        ssdm.execute(EX + 'DELETE DATA { ex:b ex:p "y" }')
        original = list(ssdm.dataset.term_dictionary.term_list())
        assert original
        ssdm.close()
        reopened = open_ssdm(base, "file")
        assert list(
            reopened.dataset.term_dictionary.term_list()
        ) == original
        reopened.close()

    def test_pinned_id_resolves_to_same_term_after_reopen(self, tmp_path):
        base = str(tmp_path)
        ssdm = open_ssdm(base, "file")
        ssdm.execute(EX + 'INSERT DATA { ex:a ex:p "payload" }')
        term = Literal("payload")
        tid = ssdm.dataset.term_dictionary.try_encode(term)
        assert tid is not None
        ssdm.close()
        reopened = open_ssdm(base, "file")
        assert reopened.dataset.term_dictionary.decode(tid) == term
        reopened.close()

    def test_crash_after_wal_keeps_dictionary_and_log_in_step(
        self, tmp_path
    ):
        base = str(tmp_path)
        ssdm = open_ssdm(base, "file")
        ssdm.execute(EX + 'INSERT DATA { ex:a ex:p "before" }')
        faults = FaultPlan(crash_after_wal=True)
        ssdm.journal.faults = faults
        ssdm.journal.wal.faults = faults
        with pytest.raises(SimulatedCrash):
            ssdm.execute(EX + 'INSERT DATA { ex:b ex:q "after" }')
        # the record is durable, so the in-memory dictionary committed
        # the new assignments before the crash point fired
        in_memory = list(ssdm.dataset.term_dictionary.term_list())
        assert Literal("after") in in_memory
        ssdm.close()
        reopened = open_ssdm(base, "file")
        assert list(
            reopened.dataset.term_dictionary.term_list()
        ) == in_memory
        reopened.close()

    def test_crash_before_wal_assigns_nothing(self, tmp_path):
        base = str(tmp_path)
        ssdm = open_ssdm(base, "file")
        ssdm.execute(EX + 'INSERT DATA { ex:a ex:p "before" }')
        pre = list(ssdm.dataset.term_dictionary.term_list())
        faults = FaultPlan(crash_before_wal=True)
        ssdm.journal.faults = faults
        ssdm.journal.wal.faults = faults
        with pytest.raises(SimulatedCrash):
            ssdm.execute(EX + 'INSERT DATA { ex:b ex:q "lost" }')
        assert list(ssdm.dataset.term_dictionary.term_list()) == pre
        ssdm.close()
        reopened = open_ssdm(base, "file")
        assert list(reopened.dataset.term_dictionary.term_list()) == pre
        reopened.close()

    def test_snapshot_compacts_dead_assignments(self, tmp_path):
        base = str(tmp_path)
        ssdm = open_ssdm(base, "file")
        ssdm.execute(EX + 'INSERT DATA { ex:keep ex:p "kept" }')
        for i in range(8):
            ssdm.execute(EX + 'INSERT DATA { ex:s ex:v "%d" }' % i)
            ssdm.execute(EX + 'DELETE DATA { ex:s ex:v "%d" }' % i)
        bloated = len(ssdm.dataset.term_dictionary)
        expected = ssdm.execute(EX + "SELECT ?v WHERE { ex:keep ex:p ?v }")
        ssdm.snapshot()
        # compaction swaps in a fresh dictionary holding only live terms
        dictionary = ssdm.dataset.term_dictionary
        assert len(dictionary) < bloated
        assert Literal("0") not in dictionary
        # queries keep working against the remapped indexes
        after = ssdm.execute(EX + "SELECT ?v WHERE { ex:keep ex:p ?v }")
        assert after.rows == expected.rows
        compacted = list(ssdm.dataset.term_dictionary.term_list())
        ssdm.close()
        # replaying the rewritten log reproduces the compacted space
        reopened = open_ssdm(base, "file")
        assert list(
            reopened.dataset.term_dictionary.term_list()
        ) == compacted
        reopened.close()


# -- the simulated-crash matrix -------------------------------------------------------


def run_crash_experiment(tmp_path, store_kind, kind, faults):
    """Seed, crash during one update, reopen.

    Returns ``(pre, post, got, crashed)``: the dataset images before
    and after the update (from a fault-free twin), the image the
    crashed-and-recovered instance converged to, and whether the fault
    plan actually fired.
    """
    base = str(tmp_path)
    # a fault-free twin computes the exact post-update image
    twin_base = os.path.join(base, "twin")
    twin = seed_instance(twin_base, store_kind)
    pre = dataset_lines(twin)
    twin.execute(UPDATE_STATEMENTS[kind])
    post = dataset_lines(twin)
    twin.close()

    crash_base = os.path.join(base, "crash")
    victim = seed_instance(crash_base, store_kind)
    victim.journal.faults = faults
    victim.journal.wal.faults = faults
    victim.array_store.faults = faults
    crashed = False
    try:
        victim.execute(UPDATE_STATEMENTS[kind])
    except SimulatedCrash:
        crashed = True
    victim.close()

    recovered = open_ssdm(crash_base, store_kind)
    got = dataset_lines(recovered)
    recovered.close()
    return pre, post, got, crashed


class TestCrashMatrix:
    @pytest.mark.parametrize("kind", sorted(UPDATE_STATEMENTS))
    @pytest.mark.parametrize("store_kind", ["file", "sql"])
    def test_crash_before_wal_loses_the_update(
        self, tmp_path, store_kind, kind
    ):
        pre, post, got, crashed = run_crash_experiment(
            tmp_path, store_kind, kind, FaultPlan(crash_before_wal=True)
        )
        assert crashed
        assert got == pre

    @pytest.mark.parametrize("kind", sorted(UPDATE_STATEMENTS))
    @pytest.mark.parametrize("store_kind", ["file", "sql"])
    def test_crash_after_wal_replays_the_update(
        self, tmp_path, store_kind, kind
    ):
        pre, post, got, crashed = run_crash_experiment(
            tmp_path, store_kind, kind, FaultPlan(crash_after_wal=True)
        )
        assert crashed
        assert got == post

    @pytest.mark.parametrize("position", [1, 2, 3, 4])
    @pytest.mark.parametrize("store_kind", ["file", "sql"])
    def test_torn_write_at_every_position_converges(
        self, tmp_path, store_kind, position
    ):
        """Tear the Nth durable write of an array-inserting update.

        The insert of a 16-element array makes two chunk writes and
        then one WAL append; whichever of them tears, recovery must
        land on exactly the pre- or post-update image (a torn chunk
        write or torn WAL append loses the update; positions past the
        last durable write of the statement cannot crash it at all, so
        those runs are skipped).
        """
        faults = FaultPlan(torn_write=position)
        pre, post, got, crashed = run_crash_experiment(
            tmp_path, store_kind, "insert", faults
        )
        if not crashed:
            assert got == post
            pytest.skip(
                "update finished before durable write %d" % position
            )
        assert got in (pre, post)


# -- checksummed chunk storage --------------------------------------------------------


class TestChecksummedReads:
    @pytest.mark.parametrize("store_kind", ["file", "sql"])
    def test_bit_flip_is_typed_corrupt_never_wrong_results(
        self, tmp_path, store_kind
    ):
        faults = FaultPlan(bit_flip_rate=1.0)
        store = make_store(store_kind, str(tmp_path), faults=faults)
        proxy = store.put(np.arange(40, dtype=np.float64))
        with pytest.raises(CorruptionError) as caught:
            store.get_chunk(proxy.array_id, 0)
        assert caught.value.code == "CORRUPT"
        assert caught.value.retryable is False
        assert isinstance(caught.value, StorageError)
        assert store.stats.snapshot()["corrupt_chunks"] >= 1

    @pytest.mark.parametrize("store_kind", ["file", "sql"])
    def test_corrupt_chunks_never_enter_the_buffer_pool(
        self, tmp_path, store_kind
    ):
        faults = FaultPlan(bit_flip_rate=1.0)
        store = make_store(store_kind, str(tmp_path), faults=faults)
        data = np.arange(40, dtype=np.float64)
        proxy = store.put(data)
        with pytest.raises(CorruptionError):
            proxy.resolve()
        # heal the medium: the pool must re-fetch, not serve the
        # corrupt bytes it must never have admitted
        faults.bit_flip_rate = 0.0
        assert np.array_equal(
            proxy.resolve().to_numpy().reshape(-1), data
        )

    def test_short_read_raises_storage_error(self, tmp_path):
        store = FileArrayStore(str(tmp_path), chunk_bytes=64)
        proxy = store.put(np.arange(40, dtype=np.float64))
        path = os.path.join(str(tmp_path), "array_%d.bin" % proxy.array_id)
        os.truncate(path, os.path.getsize(path) - 3)
        last = proxy.store.meta(proxy.array_id).layout.chunk_count - 1
        with pytest.raises(StorageError) as caught:
            store.get_chunk(proxy.array_id, last)
        assert isinstance(caught.value, CorruptionError)
        assert "short read" in str(caught.value)

    def test_sql_put_is_transactional(self, tmp_path):
        db = os.path.join(str(tmp_path), "arrays.db")
        store = SqlArrayStore(db, chunk_bytes=64,
                              faults=FaultPlan(torn_write=3))
        with pytest.raises(SimulatedCrash):
            store.put(np.arange(100, dtype=np.float64))
        reopened = SqlArrayStore(db, chunk_bytes=64)
        assert reopened._all_array_ids() == []
        with reopened._db_lock:
            count = reopened._connection.execute(
                "SELECT COUNT(*) FROM chunks"
            ).fetchone()[0]
        assert count == 0

    def test_file_put_crash_leaves_no_visible_array(self, tmp_path):
        directory = os.path.join(str(tmp_path), "arrays")
        store = FileArrayStore(directory, chunk_bytes=64,
                               faults=FaultPlan(torn_write=3))
        with pytest.raises(SimulatedCrash):
            store.put(np.arange(100, dtype=np.float64))
        reopened = FileArrayStore(directory, chunk_bytes=64)
        assert reopened._all_array_ids() == []

    def test_legacy_file_arrays_without_sidecar_stay_readable(
        self, tmp_path
    ):
        store = FileArrayStore(str(tmp_path), chunk_bytes=64)
        data = np.arange(40, dtype=np.float64)
        proxy = store.put(data)
        os.remove(os.path.join(
            str(tmp_path), "array_%d.crc" % proxy.array_id
        ))
        reopened = FileArrayStore(str(tmp_path), chunk_bytes=64)
        assert np.array_equal(
            reopened.get_chunk(proxy.array_id, 0),
            data[:8],
        )


# -- verify / repair ------------------------------------------------------------------


def corrupt_first_chunk(store_kind, base, array_id):
    if store_kind == "file":
        path = os.path.join(base, "arrays", "array_%d.bin" % array_id)
        with open(path, "r+b") as handle:
            handle.seek(4)
            byte = handle.read(1)
            handle.seek(4)
            handle.write(bytes([byte[0] ^ 0xFF]))
    else:
        import sqlite3

        con = sqlite3.connect(os.path.join(base, "arrays.db"))
        row = con.execute(
            "SELECT chunk_id, data FROM chunks WHERE array_id=?"
            " ORDER BY chunk_id LIMIT 1",
            (array_id,),
        ).fetchone()
        blob = bytearray(row[1])
        blob[4] ^= 0xFF
        con.execute(
            "UPDATE chunks SET data=? WHERE array_id=? AND chunk_id=?",
            (bytes(blob), array_id, row[0]),
        )
        con.commit()
        con.close()


class TestVerifyRepair:
    @pytest.mark.parametrize("store_kind", ["file", "sql"])
    def test_verify_reports_and_repair_quarantines(
        self, tmp_path, store_kind
    ):
        base = str(tmp_path)
        store = make_store(store_kind, base)
        good = store.put(np.arange(40, dtype=np.float64))
        bad = store.put(np.arange(100, 140, dtype=np.float64))
        store.close() if hasattr(store, "close") else None
        corrupt_first_chunk(store_kind, base, bad.array_id)

        fresh = make_store(store_kind, base)
        report = fresh.verify()
        assert report["arrays_checked"] == 2
        assert report["corrupt"] and not report["quarantined"]
        assert all(
            array_id == bad.array_id
            for array_id, _ in report["corrupt"]
        )

        report = fresh.repair()
        assert report["quarantined"] == report["corrupt"]
        assert fresh.stats.snapshot()["chunks_quarantined"] >= 1
        assert fresh.last_verify["quarantined"]

        # the good array still reads; the quarantined one is missing,
        # not silently wrong
        assert np.array_equal(
            fresh.get_chunk(good.array_id, 0),
            np.arange(8, dtype=np.float64),
        )
        with pytest.raises(StorageError):
            fresh.get_chunk(bad.array_id, 0)

    def test_memory_store_verify_is_clean(self):
        from repro import MemoryArrayStore

        store = MemoryArrayStore(chunk_bytes=64)
        store.put(np.arange(40, dtype=np.float64))
        report = store.verify()
        assert report["corrupt"] == []
        assert report["missing"] == []
        assert report["chunks_checked"] > 0

    def test_verify_surfaces_in_ssdm_stats(self, tmp_path):
        ssdm = open_ssdm(str(tmp_path), "file")
        ssdm.execute(
            EX + "INSERT DATA { ex:s ex:data (1 2 3 4 5 6 7 8) }"
        )
        assert ssdm.stats()["durability"]["last_verify"] is None
        ssdm.array_store.verify()
        stats = ssdm.stats()["durability"]
        assert stats["last_verify"]["arrays_checked"] == 1
        assert stats["journal"]["records_appended"] == 1
        ssdm.close()
