"""The shared chunk buffer pool and the APR prefetch pipeline.

Covers the pool's accounting invariants (hits + misses == lookups),
oversized-chunk rejection, O(array) invalidation, pinning,
prefetch-hit/wasted-prefetch bookkeeping, in-flight deduplication, and
thread-safety under concurrent resolvers and concurrent server clients.
"""

import threading

import numpy as np
import pytest

from repro import (
    SSDM, MemoryArrayStore, NumericArray, SqlArrayStore, URI,
    APRResolver, Strategy,
)
from repro.client import SSDMClient, SSDMServer
from repro.exceptions import StorageError
from repro.storage.bufferpool import BufferPool, shared_pool
from repro.storage.cache import ChunkCache


def chunk(n=16, value=1.0):
    return np.full(n, value)


class TestAdmission:
    def test_oversized_chunk_is_rejected_and_counted(self):
        pool = BufferPool(max_bytes=64)
        big = np.zeros(64)  # 512 bytes > budget
        assert pool.put("a", 0, big) is False
        assert pool.get("a", 0) is None
        stats = pool.stats()
        assert stats["rejected"] == 1
        assert stats["entries"] == 0
        assert stats["bytes"] == 0

    def test_chunkcache_rejects_oversized_instead_of_keeping_it(self):
        # the old ChunkCache admitted chunks larger than its whole
        # budget (its eviction loop stopped at one resident entry)
        cache = ChunkCache(max_bytes=64)
        assert cache.put(1, 0, np.zeros(64)) is False
        assert len(cache) == 0
        assert cache.stats()["rejected"] == 1

    def test_fitting_chunks_evict_lru_not_newest(self):
        pool = BufferPool(max_bytes=3 * chunk().nbytes)
        for cid in range(4):
            pool.put("a", cid, chunk())
        assert pool.get("a", 0) is None       # evicted (oldest)
        assert pool.get("a", 3) is not None   # newest resident
        assert pool.stats()["evictions"] == 1


class TestCounters:
    def test_hits_plus_misses_equals_lookups(self):
        pool = BufferPool()
        pool.put("a", 0, chunk())
        pool.get("a", 0)          # hit
        pool.get("a", 1)          # miss
        pool.get("b", 0)          # miss
        cached, owned, waiting = pool.claim("a", [0, 1, 2])
        stats = pool.stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["hits"] == 2      # get + claim on chunk 0
        assert stats["misses"] == 4
        pool.fail("a", owned, StorageError("cleanup"))

    def test_reset_counters_keeps_contents(self):
        pool = BufferPool()
        pool.put("a", 0, chunk())
        pool.get("a", 0)
        pool.reset_counters()
        stats = pool.stats()
        assert stats["lookups"] == 0
        assert stats["entries"] == 1


class TestInvalidation:
    def test_invalidate_one_array_leaves_others(self):
        pool = BufferPool()
        for cid in range(5):
            pool.put("a", cid, chunk())
            pool.put("b", cid, chunk())
        pool.invalidate("a")
        assert all(pool.get("a", cid) is None for cid in range(5))
        assert all(pool.get("b", cid) is not None for cid in range(5))

    def test_two_level_index_drops_empty_array_buckets(self):
        pool = BufferPool()
        pool.put("a", 0, chunk())
        pool.invalidate("a", 0)
        assert "a" not in pool._arrays

    def test_invalidate_marks_inflight_stale(self):
        pool = BufferPool()
        cached, owned, waiting = pool.claim("a", [0])
        assert owned == [0]
        pool.invalidate("a")
        pool.publish("a", {0: chunk()})
        # the stale result was delivered to any waiter but not admitted
        assert pool.get("a", 0) is None

    def test_store_put_invalidates_recycled_ids(self):
        store = MemoryArrayStore(chunk_bytes=128)
        proxy = store.put(NumericArray(list(range(64))))
        APRResolver(store, strategy=Strategy.PREFETCH).resolve([proxy])
        key = store.pool_key(proxy.array_id)
        assert store.buffer_pool._arrays.get(key)
        store.invalidate_cached(proxy.array_id)
        assert not store.buffer_pool._arrays.get(key)


class TestPinning:
    def test_pinned_chunks_survive_pressure(self):
        pool = BufferPool(max_bytes=2 * chunk().nbytes)
        pool.put("a", 0, chunk())
        pool.pin("a", [0])
        pool.put("a", 1, chunk())
        pool.put("a", 2, chunk())   # pressure: someone must go
        assert pool.get("a", 0) is not None
        pool.unpin("a", [0])
        # deferred eviction applies once the pin drops
        assert pool.current_bytes <= pool.max_bytes

    def test_pins_nest(self):
        pool = BufferPool(max_bytes=chunk().nbytes)
        pool.put("a", 0, chunk())
        pool.pin("a", [0])
        pool.pin("a", [0])
        pool.unpin("a", [0])
        pool.put("a", 1, chunk())   # chunk 0 still pinned
        assert pool.get("a", 0) is not None


class TestPrefetchAccounting:
    def test_prefetched_entry_first_hit_counts_once(self):
        pool = BufferPool()
        pool.put("a", 0, chunk(), prefetched=True)
        pool.get("a", 0)
        pool.get("a", 0)
        stats = pool.stats()
        assert stats["prefetch_hits"] == 1
        assert stats["hits"] == 2

    def test_evicted_unused_prefetch_counts_as_wasted(self):
        pool = BufferPool(max_bytes=chunk().nbytes)
        pool.put("a", 0, chunk(), prefetched=True)
        pool.put("a", 1, chunk())   # evicts the prefetched entry
        assert pool.stats()["wasted_prefetches"] == 1

    def test_invalidated_unused_prefetch_counts_as_wasted(self):
        pool = BufferPool()
        pool.put("a", 0, chunk(), prefetched=True)
        pool.invalidate("a")
        assert pool.stats()["wasted_prefetches"] == 1


class TestInFlight:
    def test_claim_partitions_cached_owned_waiting(self):
        pool = BufferPool()
        pool.put("a", 0, chunk())
        cached1, owned1, waiting1 = pool.claim("a", [0, 1])
        assert list(cached1) == [0] and owned1 == [1] and not waiting1
        cached2, owned2, waiting2 = pool.claim("a", [1])
        assert not cached2 and not owned2 and list(waiting2) == [1]
        assert pool.stats()["inflight_waits"] == 1
        pool.publish("a", {1: chunk(value=7.0)})
        got = pool.wait(waiting2[1], timeout=5)
        assert got[0] == 7.0

    def test_fail_propagates_to_waiters(self):
        pool = BufferPool()
        _, owned, _ = pool.claim("a", [0])
        _, _, waiting = pool.claim("a", [0])
        pool.fail("a", owned, StorageError("backend down"))
        with pytest.raises(StorageError):
            pool.wait(waiting[0], timeout=5)


class _CountingStore(MemoryArrayStore):
    """Counts how many times each chunk is physically read."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.read_counts = {}
        self._count_lock = threading.Lock()

    def _read_chunk(self, array_id, chunk_id):
        with self._count_lock:
            key = (array_id, chunk_id)
            self.read_counts[key] = self.read_counts.get(key, 0) + 1
        return super()._read_chunk(array_id, chunk_id)


class TestConcurrentResolvers:
    def test_no_double_fetch_across_four_threads(self):
        store = _CountingStore(chunk_bytes=256,
                               buffer_pool=BufferPool())
        data = list(range(2048))
        proxy = store.put(NumericArray(data))
        barrier = threading.Barrier(4)
        results = [None] * 4
        errors = []

        def resolve(slot):
            try:
                resolver = APRResolver(store, strategy=Strategy.PREFETCH)
                barrier.wait(timeout=10)
                results[slot] = resolver.resolve([proxy])[0]
            except Exception as error:  # surface in the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=resolve, args=(slot,))
            for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        for result in results:
            assert result.to_nested_lists() == data
        # in-flight dedup: no chunk was read from the store twice
        assert all(
            count == 1 for count in store.read_counts.values()
        ), store.read_counts
        stats = store.buffer_pool.stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["inflight"] == 0
        assert stats["pinned"] == 0

    def test_concurrent_sql_store_resolvers(self):
        store = SqlArrayStore(chunk_bytes=256,
                              buffer_pool=BufferPool())
        data = list(range(1024))
        proxy = store.put(NumericArray(data))
        errors = []

        def resolve():
            try:
                resolver = APRResolver(store, strategy=Strategy.PREFETCH)
                out = resolver.resolve([proxy])[0]
                assert out.to_nested_lists() == data
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=resolve) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors


class TestServerConcurrency:
    def test_four_clients_share_the_pool(self):
        store = SqlArrayStore(chunk_bytes=512,
                              default_strategy="prefetch",
                              buffer_pool=BufferPool())
        ssdm = SSDM(array_store=store, externalize_threshold=16)
        data = [float(v) for v in range(4096)]
        ssdm.add(URI("http://e/m"), URI("http://e/val"),
                 NumericArray(data))
        server = SSDMServer(ssdm).start()
        port = server.server_address[1]
        query = ("SELECT ?a WHERE { <http://e/m> <http://e/val> ?a }")
        errors = []

        def fetch():
            try:
                client = SSDMClient("127.0.0.1", port)
                try:
                    result = client.query(query)
                    assert result.rows[0][0].to_nested_lists() == data
                finally:
                    client.close()
            except Exception as error:
                errors.append(error)

        try:
            threads = [threading.Thread(target=fetch) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            stats = store.buffer_pool.stats()
            assert stats["hits"] + stats["misses"] == stats["lookups"]
            assert stats["inflight"] == 0
            # four identical queries, one working set: every chunk hit
            # the SQL back-end exactly once — the other three clients
            # were served by pool hits or by waiting on fetches already
            # in flight (perfectly overlapped requests are all "misses")
            chunk_count = store.meta(1).layout.chunk_count
            assert store.stats.snapshot()["chunks_fetched"] == chunk_count
            assert stats["hits"] + stats["inflight_waits"] >= (
                3 * chunk_count
            )
        finally:
            server.stop()

    def test_server_stats_and_explain_ops(self):
        store = SqlArrayStore(chunk_bytes=512,
                              default_strategy="prefetch",
                              buffer_pool=BufferPool())
        ssdm = SSDM(array_store=store, externalize_threshold=16)
        ssdm.add(URI("http://e/m"), URI("http://e/val"),
                 NumericArray([float(v) for v in range(256)]))
        server = SSDMServer(ssdm).start()
        try:
            client = SSDMClient(
                "127.0.0.1", server.server_address[1]
            )
            try:
                query = (
                    "SELECT ?a WHERE { <http://e/m> <http://e/val> ?a }"
                )
                client.query(query)
                stats = client.stats()
                assert stats["buffer_pool"]["lookups"] == (
                    stats["buffer_pool"]["hits"]
                    + stats["buffer_pool"]["misses"]
                )
                assert stats["storage"]["chunks_fetched"] > 0
                assert stats["last_resolve"]["strategy"] == "prefetch"
                explained = client.explain(query)
                assert "plan" in explained
                assert "buffer_pool" in explained["stats"]
            finally:
                client.close()
        finally:
            server.stop()


class TestResolveStats:
    def test_resolver_records_per_resolve_statistics(self):
        store = MemoryArrayStore(chunk_bytes=256,
                                 buffer_pool=BufferPool())
        proxy = store.put(NumericArray(list(range(512))))
        resolver = APRResolver(store, strategy=Strategy.PREFETCH)
        resolver.resolve([proxy])
        first = store.last_resolve_stats
        assert first["strategy"] == "prefetch"
        assert first["chunks_fetched"] > 0
        assert first["cache_hit_ratio"] == 0.0
        resolver.resolve([proxy])
        second = store.last_resolve_stats
        assert second["chunks_fetched"] == 0
        assert second["cache_hit_ratio"] == 1.0
        assert resolver.last_stats is second

    def test_ssdm_stats_exposes_pool_counters(self):
        store = MemoryArrayStore(chunk_bytes=256,
                                 buffer_pool=BufferPool())
        ssdm = SSDM(array_store=store, externalize_threshold=16)
        stats = ssdm.stats()
        assert stats["storage"]["requests"] == 0
        assert stats["buffer_pool"]["lookups"] == 0
        assert stats["last_resolve"] is None


class TestUpdateInvalidation:
    def test_delete_data_drops_pooled_chunks(self):
        store = MemoryArrayStore(chunk_bytes=256,
                                 buffer_pool=BufferPool())
        ssdm = SSDM(array_store=store, externalize_threshold=16)
        ssdm.add(URI("http://e/m"), URI("http://e/val"),
                 NumericArray(list(range(512))))
        result = ssdm.execute(
            "SELECT ?a WHERE { <http://e/m> <http://e/val> ?a }"
        )
        proxy = result.scalar()
        APRResolver(store, strategy=Strategy.PREFETCH).resolve([proxy])
        key = store.pool_key(proxy.array_id)
        assert store.buffer_pool._arrays.get(key)
        ssdm.execute(
            "DELETE WHERE { <http://e/m> <http://e/val> ?a }"
        )
        assert not store.buffer_pool._arrays.get(key)

    def test_clear_graph_drops_pooled_chunks(self):
        store = MemoryArrayStore(chunk_bytes=256,
                                 buffer_pool=BufferPool())
        ssdm = SSDM(array_store=store, externalize_threshold=16)
        ssdm.add(URI("http://e/m"), URI("http://e/val"),
                 NumericArray(list(range(512))))
        proxy = ssdm.execute(
            "SELECT ?a WHERE { <http://e/m> <http://e/val> ?a }"
        ).scalar()
        APRResolver(store, strategy=Strategy.PREFETCH).resolve([proxy])
        key = store.pool_key(proxy.array_id)
        assert store.buffer_pool._arrays.get(key)
        ssdm.execute("CLEAR ALL")
        assert not store.buffer_pool._arrays.get(key)
