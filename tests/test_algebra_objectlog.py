"""ObjectLog rendering and DNF normalization (section 5.4.4-5.4.5)."""

import pytest

from repro import SSDM
from repro.sparql import parse_query
from repro.algebra import translate
from repro.algebra.objectlog import (
    disjunctive_normal_form, modifiers_of, to_objectlog,
)
from repro.algebra.rewriter import rewrite


def dnf_of(text):
    plan, columns = translate(parse_query(text))
    _, pattern = modifiers_of(plan)
    return disjunctive_normal_form(pattern), columns


class TestDNF:
    def test_single_bgp_one_disjunct(self):
        disjuncts, _ = dnf_of("SELECT ?s WHERE { ?s ?p ?o . ?o ?q ?r }")
        assert len(disjuncts) == 1
        assert len(disjuncts[0]) == 2
        assert all(a.kind == "triple" for a in disjuncts[0])

    def test_union_two_disjuncts(self):
        disjuncts, _ = dnf_of(
            "SELECT ?s WHERE { { ?s ?p 1 } UNION { ?s ?p 2 } }"
        )
        assert len(disjuncts) == 2

    def test_union_distributes_over_conjunction(self):
        disjuncts, _ = dnf_of(
            "PREFIX ex: <http://e/> SELECT ?s WHERE { "
            "?s ex:a ?x { ?s ex:b 1 } UNION { ?s ex:b 2 } }"
        )
        assert len(disjuncts) == 2
        # the shared pattern appears in both disjuncts
        assert all(
            any(a.kind == "triple" and "ex:a" not in "" for a in conj)
            for conj in disjuncts
        )
        assert all(len(conj) == 2 for conj in disjuncts)

    def test_nested_unions_multiply(self):
        disjuncts, _ = dnf_of(
            "PREFIX ex: <http://e/> SELECT ?s WHERE { "
            "{ ?s ex:a 1 } UNION { ?s ex:a 2 } "
            "{ ?s ex:b 1 } UNION { ?s ex:b 2 } }"
        )
        assert len(disjuncts) == 4          # 2 x 2

    def test_filter_attached_to_every_disjunct(self):
        disjuncts, _ = dnf_of(
            "SELECT ?s WHERE { { ?s ?p ?v } UNION { ?v ?p ?s } "
            "FILTER(?v > 1) }"
        )
        assert len(disjuncts) == 2
        assert all(
            any(a.kind == "filter" for a in conj) for conj in disjuncts
        )

    def test_optional_is_nested_atom(self):
        disjuncts, _ = dnf_of(
            "SELECT ?s WHERE { ?s ?p ?o OPTIONAL { ?o ?q ?r } }"
        )
        kinds = [a.kind for a in disjuncts[0]]
        assert "optional" in kinds

    def test_empty_pattern(self):
        disjuncts, _ = dnf_of("SELECT (1 + 1 AS ?x) WHERE { }")
        assert disjuncts == [[]] or all(
            a.kind == "bind" for a in disjuncts[0]
        )


class TestRendering:
    def test_rule_per_disjunct(self):
        ssdm = SSDM()
        text = ssdm.explain(
            "SELECT ?s WHERE { { ?s ?p 1 } UNION { ?s ?p 2 } }",
            objectlog=True,
        )
        assert text.count(":-") == 2
        assert "query(?s)" in text

    def test_triple_predicates_rendered(self):
        ssdm = SSDM()
        text = ssdm.explain(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
            'SELECT ?n WHERE { ?p foaf:name ?n FILTER(?n != "x") }',
            objectlog=True,
        )
        assert "triple(?p, <http://xmlns.com/foaf/0.1/name>, ?n)" in text
        assert "filter(ne(?n," in text

    def test_modifiers_annotated(self):
        ssdm = SSDM()
        text = ssdm.explain(
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 2",
            objectlog=True,
        )
        assert "% distinct" in text
        assert "% order(asc ?s)" in text
        assert "% slice(limit=2" in text

    def test_array_expressions_rendered(self):
        ssdm = SSDM()
        text = ssdm.explain(
            "SELECT (array_sum(?a[1:2:9, 3]) AS ?x) "
            "WHERE { ?s ?p ?a }",
            objectlog=True,
        )
        assert "aref(?a, [1:2:9, 3])" in text
        assert "array_sum" in text

    def test_path_rendered(self):
        ssdm = SSDM()
        text = ssdm.explain(
            "PREFIX ex: <http://e/> SELECT ?x WHERE "
            "{ ?x (ex:p|^ex:q)+ ?y }",
            objectlog=True,
        )
        assert "path(?x," in text
        assert "+" in text

    def test_closure_rendered(self):
        ssdm = SSDM()
        text = ssdm.explain(
            "SELECT (array_map(FN(?v) ?v*2, ?a) AS ?b) "
            "WHERE { ?s ?p ?a }",
            objectlog=True,
        )
        assert "closure((?v), times(?v," in text
