"""Resource governor: per-query budgets, cost-based admission queueing,
graceful degradation under pressure, and the replica circuit breaker.

Covers the overload acceptance scenario end to end: over-budget queries
abort with the typed non-retryable ``RESOURCE`` code while cheap queries
keep completing, shed requests carry ``retry_after_ms`` pacing hints,
batch work is shed before interactive work, killed queries leave zero
buffer-pool pins behind, and the ``memory_pressure`` fault knob trips
the degradation ladder deterministically.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro import SSDM
from repro.client import SSDMClient, SSDMServer
from repro.exceptions import (
    ResourceExhaustedError,
    RequestTimeoutError,
    SciSparqlError,
    ServerOverloadedError,
    error_code,
    error_from_code,
)
from repro.governor import (
    BATCH,
    INTERACTIVE,
    AdmissionQueue,
    CircuitBreaker,
    ResourceGovernor,
    ResourceScope,
    current_scope,
    get_governor,
    resource_scope,
    set_governor,
)
from repro.lifecycle import Deadline
from repro.replication import ReplicaSetClient
from repro.storage import APRResolver, FaultPlan, MemoryArrayStore
from repro.storage.bufferpool import BufferPool


@pytest.fixture(autouse=True)
def _clean_global_governor():
    """Every test runs against a fresh process governor and leaves none
    of its forced-pressure state behind."""
    previous = set_governor(ResourceGovernor())
    yield
    set_governor(previous)


# -- per-query budgets (ResourceScope) -----------------------------------------------


class TestResourceScope:
    def test_rows_budget_enforced_cumulatively(self):
        scope = ResourceScope(max_rows=10, max_bytes=None)
        for _ in range(10):
            scope.charge_rows(1, "test")
        with pytest.raises(ResourceExhaustedError) as info:
            scope.charge_rows(1, "test operator")
        assert "rows" in str(info.value)
        assert "test operator" in str(info.value)
        assert scope.exhausted_dimension == "rows"

    def test_bytes_budget_enforced(self):
        scope = ResourceScope(max_rows=None, max_bytes=100)
        scope.charge_bytes(100, "test")
        with pytest.raises(ResourceExhaustedError):
            scope.charge_bytes(1, "test")
        assert scope.exhausted_dimension == "bytes"

    def test_check_rows_precheck_does_not_charge(self):
        scope = ResourceScope(max_rows=10, max_bytes=None)
        scope.charge_rows(5, "test")
        with pytest.raises(ResourceExhaustedError):
            scope.check_rows(6, "bulk")
        assert scope.rows == 5          # the refused bulk was not recorded
        scope.check_rows(5, "bulk")     # exactly at budget is fine

    def test_none_budgets_are_unbounded(self):
        scope = ResourceScope(max_rows=None, max_bytes=None)
        scope.charge_rows(10**9, "test")
        scope.charge_bytes(10**12, "test")
        assert scope.remaining_rows() is None
        assert scope.remaining_bytes() is None

    def test_resource_code_is_typed_and_not_retryable(self):
        error = ResourceExhaustedError("over budget")
        assert error_code(error) == "RESOURCE"
        assert error.retryable is False
        revived = error_from_code("RESOURCE", "over budget")
        assert isinstance(revived, ResourceExhaustedError)
        assert revived.retryable is False

    def test_ambient_scope_installs_nests_and_restores(self):
        assert current_scope() is None
        outer = ResourceScope()
        inner = ResourceScope()
        with resource_scope(outer):
            assert current_scope() is outer
            with resource_scope(inner):
                assert current_scope() is inner
            with resource_scope(None):   # uncharged background work
                assert current_scope() is None
            assert current_scope() is outer
        assert current_scope() is None

    def test_governor_scope_registers_and_unregisters(self):
        governor = ResourceGovernor(max_query_rows=7)
        with governor.scope() as scope:
            assert current_scope() is scope
            assert scope.max_rows == 7
            assert governor.snapshot()["active_scopes"] == 1
        assert current_scope() is None
        assert governor.snapshot()["active_scopes"] == 0
        assert governor.snapshot()["counters"]["queries"] == 1


# -- engine materialization points charge the scope ----------------------------------


def _distinct_dataset(n=64):
    ssdm = SSDM()
    rows = " ".join(
        "ex:s%d ex:p %d ." % (i, i) for i in range(n)
    )
    ssdm.load_turtle_text("@prefix ex: <http://e/> . " + rows)
    return ssdm


DISTINCT_QUERY = (
    "PREFIX ex: <http://e/> SELECT DISTINCT ?s ?v WHERE { ?s ex:p ?v }"
)
CHEAP_QUERY = (
    "PREFIX ex: <http://e/> ASK { ex:s0 ex:p 0 }"
)


class TestEngineBudgets:
    def test_over_budget_distinct_aborts_cheap_query_completes(self):
        ssdm = _distinct_dataset()
        governor = ResourceGovernor(max_query_rows=16)
        with pytest.raises(ResourceExhaustedError):
            with governor.scope():
                ssdm.select(DISTINCT_QUERY)
        # the abort is accounted, and an in-budget query still runs
        assert governor.snapshot()["counters"]["resource_aborts"] == 1
        with governor.scope():
            assert ssdm.ask(CHEAP_QUERY) is True

    def test_within_budget_query_unaffected(self):
        ssdm = _distinct_dataset(8)
        governor = ResourceGovernor()      # default generous budgets
        with governor.scope():
            result = ssdm.select(DISTINCT_QUERY)
        assert len(result.rows) == 8

    def test_byte_budget_kills_wide_materialization(self):
        ssdm = _distinct_dataset()
        governor = ResourceGovernor(max_query_bytes=64)
        with pytest.raises(ResourceExhaustedError):
            with governor.scope():
                ssdm.select(DISTINCT_QUERY)

    def test_cartesian_product_pre_checked_before_allocation(self):
        ssdm = _distinct_dataset(64)
        governor = ResourceGovernor(max_query_rows=200)
        with pytest.raises(ResourceExhaustedError):
            with governor.scope():
                # 64 x 64 cross product: the idjoin fast path knows the
                # cardinality before materializing and must refuse
                ssdm.select(
                    "PREFIX ex: <http://e/> SELECT ?a ?b "
                    "WHERE { ?a ex:p ?x . ?b ex:p ?y }"
                )

    def test_no_ambient_scope_means_no_budget(self):
        ssdm = _distinct_dataset()
        assert current_scope() is None
        result = ssdm.select(DISTINCT_QUERY)   # embedded, ungoverned
        assert len(result.rows) == 64


# -- pressure signal & graceful degradation ------------------------------------------


class TestPressureDegradation:
    def test_forced_pressure_trips_ladder(self):
        governor = ResourceGovernor(pressure_threshold=0.75)
        assert governor.pressure() == 0.0
        assert governor.speculation_allowed() is True
        assert governor.pool_soft_limit(1000) == 1000
        governor.set_forced_pressure(0.9)
        assert governor.under_pressure() is True
        assert governor.speculation_allowed() is False
        assert governor.pool_soft_limit(1000) == 500
        governor.set_forced_pressure(None)
        assert governor.speculation_allowed() is True

    def test_charged_bytes_drive_pressure(self):
        governor = ResourceGovernor(
            capacity_bytes=1000, pressure_threshold=0.75,
            max_query_bytes=None,
        )
        with governor.scope() as scope:
            assert governor.under_pressure() is False
            scope.charge_bytes(800, "test")
            assert governor.pressure() == pytest.approx(0.8)
            assert governor.under_pressure() is True
            assert governor.speculation_allowed() is False
        # the query finished: its charges no longer count
        assert governor.pressure() == 0.0

    def test_fault_plan_memory_pressure_knob(self):
        plan = FaultPlan(memory_pressure=0.95)
        try:
            assert plan.memory_pressure == 0.95
            assert get_governor().pressure() >= 0.95
            assert get_governor().speculation_allowed() is False
            assert get_governor().pool_soft_limit(1 << 20) == (1 << 19)
            assert plan.snapshot()["memory_pressure"] == 0.95
        finally:
            plan.set_memory_pressure(None)
        assert get_governor().pressure() == 0.0

    def test_pool_evicts_to_soft_limit_under_pressure(self):
        pool = BufferPool(max_bytes=4096)
        chunk = np.zeros(128, dtype=np.uint8)     # 128 bytes each
        for i in range(24):                       # 3072 bytes: fits
            pool.put("arr", i, chunk)
        assert pool.stats()["bytes"] == 3072
        get_governor().set_forced_pressure(1.0)
        pool.put("arr", 99, chunk)                # any insert re-evicts
        assert pool.stats()["bytes"] <= 2048      # shrunk soft limit
        get_governor().set_forced_pressure(None)

    def test_snapshot_shape(self):
        snapshot = ResourceGovernor().snapshot()
        for key in ("active_scopes", "charged_rows", "charged_bytes",
                    "pressure", "under_pressure", "counters",
                    "last_exhausted"):
            assert key in snapshot


# -- admission queue -----------------------------------------------------------------


class TestAdmissionQueue:
    def test_admits_under_capacity(self):
        queue = AdmissionQueue(max_active=2, max_queue=4)
        queue.admit(INTERACTIVE)
        queue.admit(BATCH)
        assert queue.active == 2
        queue.release(0.01)
        queue.release(0.01)
        assert queue.active == 0
        assert queue.counters["admitted"] == 2

    def test_binary_shed_when_queue_disabled(self):
        queue = AdmissionQueue(max_active=1, max_queue=0)
        queue.admit(INTERACTIVE)
        with pytest.raises(ServerOverloadedError) as info:
            queue.admit(INTERACTIVE)
        assert info.value.retry_after_ms >= 10
        assert queue.counters["shed_interactive"] == 1

    def test_batch_shed_first_when_queue_full(self):
        queue = AdmissionQueue(max_active=1, max_queue=1, max_wait_ms=5000)
        queue.admit(INTERACTIVE)

        outcomes = {}
        queued = threading.Event()

        def wait_batch():
            queued.set()
            try:
                queue.admit(BATCH)
                outcomes["batch"] = "admitted"
            except ServerOverloadedError:
                outcomes["batch"] = "shed"

        thread = threading.Thread(target=wait_batch)
        thread.start()
        queued.wait()
        for _ in range(100):          # until the waiter is parked
            if queue.depth == 1:
                break
            time.sleep(0.01)
        assert queue.depth == 1

        # queue full: an arriving batch request is shed outright...
        with pytest.raises(ServerOverloadedError):
            queue.admit(BATCH)
        # ...but an interactive request displaces the queued batch one
        admitted = {}

        def wait_interactive():
            queue.admit(INTERACTIVE)
            admitted["interactive"] = True

        inter = threading.Thread(target=wait_interactive)
        inter.start()
        thread.join(5.0)
        assert outcomes["batch"] == "shed"
        assert queue.counters["displaced"] == 1
        queue.release(0.01)           # frees the slot -> interactive in
        inter.join(5.0)
        assert admitted.get("interactive") is True
        assert queue.counters["shed_batch"] >= 2

    def test_wait_bounded_by_max_wait_ms(self):
        queue = AdmissionQueue(max_active=1, max_queue=4, max_wait_ms=80)
        queue.admit(INTERACTIVE)
        started = time.monotonic()
        with pytest.raises(ServerOverloadedError):
            queue.admit(BATCH)
        elapsed = time.monotonic() - started
        assert 0.05 <= elapsed < 1.0
        assert queue.counters["shed_wait_timeout"] == 1

    def test_wait_bounded_by_request_deadline(self):
        queue = AdmissionQueue(max_active=1, max_queue=4, max_wait_ms=5000)
        queue.admit(INTERACTIVE)
        started = time.monotonic()
        with pytest.raises(ServerOverloadedError):
            queue.admit(INTERACTIVE, deadline=Deadline.after_ms(60))
        assert time.monotonic() - started < 1.0

    def test_queued_request_admitted_on_release(self):
        queue = AdmissionQueue(max_active=1, max_queue=4, max_wait_ms=5000)
        queue.admit(INTERACTIVE)
        admitted = threading.Event()

        def waiter():
            queue.admit(INTERACTIVE)
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        queue.release(0.02)
        assert admitted.wait(5.0)
        thread.join(5.0)
        assert queue.counters["queued"] == 1

    def test_retry_after_hint_clamped(self):
        queue = AdmissionQueue(max_active=1, max_queue=4)
        assert 10 <= queue.retry_after_ms() <= 5000
        queue._service_ewma = 10_000.0      # absurd service time
        queue._active = 5
        assert queue.retry_after_ms() == 5000

    def test_snapshot_shape(self):
        queue = AdmissionQueue(max_active=2, max_queue=3)
        snapshot = queue.snapshot()
        assert snapshot["max_active"] == 2
        assert snapshot["max_queue"] == 3
        assert "service_ewma_ms" in snapshot
        assert "counters" in snapshot


# -- circuit breaker -----------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_seconds=5,
                                 clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.on_failure()
        assert breaker.allow() is True       # still under threshold
        breaker.on_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False
        assert breaker.times_opened == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.on_failure()
        breaker.on_success()
        breaker.on_failure()
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=5,
                                 clock=clock)
        breaker.on_failure()
        assert breaker.allow() is False
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow() is True       # the single probe
        assert breaker.allow() is False      # nobody else piles on
        breaker.on_success()
        assert breaker.state == "closed"
        assert breaker.allow() is True

    def test_half_open_probe_failure_rearms(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=5,
                                 clock=clock)
        breaker.on_failure()
        clock.advance(5.0)
        assert breaker.allow() is True
        breaker.on_failure()                 # probe failed
        assert breaker.allow() is False      # re-armed for a new window
        assert breaker.times_opened == 2
        clock.advance(5.0)
        assert breaker.allow() is True       # next probe window


# -- server integration: admission, demotion, RESOURCE over the wire -----------------


def _dataset_turtle(n=64):
    rows = " ".join("ex:s%d ex:p %d ." % (i, i) for i in range(n))
    return "@prefix ex: <http://e/> . " + rows


def _governed_server(**kwargs):
    ssdm = SSDM()
    ssdm.load_turtle_text(_dataset_turtle())
    return SSDMServer(ssdm, **kwargs).start()


class TestServerGovernance:
    def test_resource_abort_over_the_wire(self):
        server = _governed_server(
            governor=ResourceGovernor(max_query_rows=16)
        )
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port)
            with pytest.raises(ResourceExhaustedError):
                client.query(DISTINCT_QUERY)
            assert client.retries_performed == 0     # non-retryable
            # cheap queries keep completing on the same server
            assert client.query(CHEAP_QUERY) is True
            stats = client.stats()
            assert stats["server"]["resource_aborts"] == 1
            assert stats["governor"]["counters"]["resource_aborts"] == 1
            client.close()
        finally:
            server.stop()

    def test_invalid_priority_rejected(self):
        server = _governed_server()
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port)
            with pytest.raises(SciSparqlError) as info:
                client.query(CHEAP_QUERY, priority="urgent")
            assert "priority" in str(info.value)
            assert "urgent" in str(info.value)
            client.close()
        finally:
            server.stop()

    def test_expensive_query_demoted_to_batch_lane(self):
        server = _governed_server(batch_cost_threshold=0.0)
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port)
            client.query(DISTINCT_QUERY)
            stats = client.stats()
            assert stats["server"]["demoted_batch"] >= 1
            client.close()
        finally:
            server.stop()

    def test_stats_expose_admission_and_governor(self):
        server = _governed_server()
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port)
            client.query(CHEAP_QUERY)
            stats = client.stats()
            admission = stats["server"]["admission"]
            assert admission["max_active"] == server.max_concurrent
            assert admission["counters"]["admitted"] >= 1
            assert stats["governor"]["active_scopes"] == 0
            client.close()
        finally:
            server.stop()


def _slow_storm_server(max_concurrent=1, max_queue=2, queue_wait_ms=200.0):
    """A server whose array reads sleep, so capacity is easy to saturate."""

    class NoAggregateStore(MemoryArrayStore):
        supports_aggregates = False

    pool = BufferPool(4 << 20)
    store = NoAggregateStore(
        chunk_bytes=64, buffer_pool=pool,
        faults=FaultPlan(read_latency=0.02),
    )
    store._default_resolver = APRResolver(store, strategy="prefetch")
    ssdm = SSDM(array_store=store, externalize_threshold=32)
    elements = " ".join(str(i) for i in range(256))
    ssdm.load_turtle_text(
        "@prefix ex: <http://e/> . ex:m ex:val (%s) ; ex:n 7 ." % elements
    )
    server = SSDMServer(
        ssdm, max_concurrent=max_concurrent, max_queue=max_queue,
        queue_wait_ms=queue_wait_ms,
    ).start()
    return server, pool


SLOW_AGGREGATE = (
    "PREFIX ex: <http://e/> "
    "SELECT (array_sum(?a) AS ?s) WHERE { ex:m ex:val ?a }"
)
QUICK_ASK = "PREFIX ex: <http://e/> ASK { ex:m ex:n 7 }"


class TestOverloadStorm:
    def test_mixed_priority_storm_sheds_batch_first(self):
        """Overload at 5x capacity with mixed priorities: the queued
        batch requests are displaced (typed OVERLOAD with a pacing
        hint) while every interactive request completes."""
        server, pool = _slow_storm_server(
            max_concurrent=1, max_queue=2, queue_wait_ms=2500.0,
        )
        port = server.server_address[1]
        results = {"completed": [], "shed": [], "other": []}
        lock = threading.Lock()

        def worker(priority):
            client = SSDMClient("127.0.0.1", port, retries=0)
            try:
                client.query(SLOW_AGGREGATE, priority=priority,
                             timeout_ms=10_000)
                with lock:
                    results["completed"].append(priority)
            except ServerOverloadedError as error:
                with lock:
                    results["shed"].append((priority, error.retry_after_ms))
            except SciSparqlError as error:
                with lock:
                    results["other"].append((priority, error_code(error)))
            finally:
                client.close()

        # one interactive occupant takes the single slot...
        threads = [threading.Thread(target=worker, args=(INTERACTIVE,))]
        threads[0].start()
        time.sleep(0.15)
        # ...two batch requests fill the queue...
        for _ in range(2):
            thread = threading.Thread(target=worker, args=(BATCH,))
            threads.append(thread)
            thread.start()
        time.sleep(0.15)
        # ...then two interactive arrivals find the queue full and must
        # displace the queued batch work
        for _ in range(2):
            thread = threading.Thread(target=worker, args=(INTERACTIVE,))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join(30.0)

        assert results["completed"] == [INTERACTIVE] * 3
        assert sorted(p for p, _ in results["shed"]) == [BATCH, BATCH]
        assert not results["other"], results["other"]
        # every shed response carried a usable pacing hint
        for _, hint in results["shed"]:
            assert hint is not None and 10 <= hint <= 5000
        stats_client = SSDMClient("127.0.0.1", port, retries=0)
        stats = stats_client.stats()
        assert stats["server"]["shed"] == 2
        assert stats["server"]["admission"]["counters"]["displaced"] == 2
        stats_client.close()
        server.stop()

    def test_shed_client_honors_retry_after_and_recovers(self):
        server, pool = _slow_storm_server(
            max_concurrent=1, max_queue=0,
        )
        port = server.server_address[1]
        try:
            slow = SSDMClient("127.0.0.1", port, retries=0)

            def run_slow():
                try:
                    slow.query(SLOW_AGGREGATE, timeout_ms=400)
                except RequestTimeoutError:
                    pass

            thread = threading.Thread(target=run_slow)
            thread.start()
            time.sleep(0.1)
            patient = SSDMClient("127.0.0.1", port, retries=5,
                                 backoff=0.1, max_backoff=0.5)
            assert patient.query(QUICK_ASK) is True
            assert patient.retries_performed >= 1
            patient.close()
            thread.join(5.0)
            slow.close()
        finally:
            server.stop()


# -- pin hygiene: killed queries leave no pins behind --------------------------------


class TestPinRelease:
    def test_governor_kill_releases_all_pins(self):
        """A query aborted mid-flight by its byte budget must drop every
        buffer-pool pin on the way out (acceptance criterion)."""
        server, pool = _slow_storm_server(max_concurrent=4)
        server.governor.max_query_bytes = 256     # < one array working set
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port)
            with pytest.raises(ResourceExhaustedError):
                client.query(SLOW_AGGREGATE, timeout_ms=10_000)
            stats = pool.stats()
            assert stats["pinned"] == 0
            assert stats["pinned_bytes"] == 0
            client.close()
        finally:
            server.stop()

    def test_deadline_kill_releases_all_pins(self):
        server, pool = _slow_storm_server(max_concurrent=4)
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port, retries=0)
            with pytest.raises(RequestTimeoutError):
                client.query(SLOW_AGGREGATE, timeout_ms=150)
            for _ in range(100):      # the worker unwinds asynchronously
                stats = pool.stats()
                if stats["pinned"] == 0:
                    break
                time.sleep(0.02)
            assert stats["pinned"] == 0
            assert stats["pinned_bytes"] == 0
            client.close()
        finally:
            server.stop()


# -- client backoff honors the pacing hint -------------------------------------------


class TestClientBackoff:
    def test_pause_honors_hint_but_is_capped(self):
        server = _governed_server()
        port = server.server_address[1]
        try:
            client = SSDMClient("127.0.0.1", port, max_backoff=0.5)
            # a huge (bogus) hint can never stall the client past the cap
            huge = ServerOverloadedError("x", retry_after_ms=60_000)
            assert client._pause_for(huge, 0.05) == 0.5
            # a modest hint raises the pause above the exponential guess
            modest = ServerOverloadedError("x", retry_after_ms=200)
            pause = client._pause_for(modest, 0.05)
            assert 0.16 <= pause <= 0.24          # 200ms +- 20% jitter
            # no hint: plain jittered exponential delay
            bare = ServerOverloadedError("x")
            pause = client._pause_for(bare, 0.1)
            assert 0.08 <= pause <= 0.12
            client.close()
        finally:
            server.stop()


# -- replica-set circuit breaker -----------------------------------------------------


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestReplicaBreaker:
    def test_reads_route_around_dead_endpoint(self):
        ssdm = SSDM()
        ssdm.load_turtle_text(_dataset_turtle(8))
        server = SSDMServer(ssdm).start()
        live = "127.0.0.1:%d" % server.server_address[1]
        dead = "127.0.0.1:%d" % _free_port()
        replicas = ReplicaSetClient(
            [dead, live], breaker_threshold=1, breaker_recovery=60.0,
        )
        try:
            for _ in range(3):
                assert replicas.query(CHEAP_QUERY) is True
            # after the first connect failure the dead endpoint's breaker
            # is open and later reads skip it instead of re-dialing
            assert replicas.breaker_skips >= 1
            snapshots = replicas.breakers()
            assert snapshots[dead]["state"] == "open"
            assert snapshots[live]["state"] == "closed"
        finally:
            replicas.close()
            server.stop()

    def test_breaker_probe_readmits_recovered_endpoint(self):
        ssdm = SSDM()
        ssdm.load_turtle_text(_dataset_turtle(8))
        server = SSDMServer(ssdm).start()
        live = "127.0.0.1:%d" % server.server_address[1]
        replicas = ReplicaSetClient(
            [live], breaker_threshold=1, breaker_recovery=0.05,
        )
        try:
            breaker = replicas._breaker(replicas._normalize(live))
            breaker.on_failure()          # simulate a failed read
            assert breaker.state == "open"
            time.sleep(0.06)              # recovery window elapses
            assert replicas.query(CHEAP_QUERY) is True
            assert breaker.state == "closed"
        finally:
            replicas.close()
            server.stop()
