"""OrderBy→Slice fusion into the streaming top-k operator.

Pins three things: the optimizer rewrites ``ORDER BY ... LIMIT k`` (with
or without an intervening Project) into a ``TopK`` node, the fused plan
returns exactly what sort-then-slice returned, and the fused evaluation
does asymptotically less comparison work than a full sort — counted by
instrumenting the ``_Directional`` sort-key wrapper.
"""

import pytest

from repro import SSDM
from repro.algebra.logical import OrderBy, Slice, TopK
from repro.engine import eval as eval_mod

EX = "PREFIX ex: <http://e/>\n"


@pytest.fixture()
def ssdm():
    instance = SSDM()
    yield instance
    instance.close()


def _iter_nodes(node):
    yield node
    for field in node._fields:
        value = getattr(node, field)
        if hasattr(value, "_fields"):
            yield from _iter_nodes(value)


def _plan_ops(node):
    return [type(child).__name__ for child in _iter_nodes(node)]


def _load_scores(ssdm, n):
    rows = "\n".join(
        "ex:s%d ex:score %d ." % (i, (i * 7919) % n) for i in range(n)
    )
    ssdm.execute(EX + "INSERT DATA {\n%s\n}" % rows)


def _run_plan(ssdm, plan, columns):
    """Evaluate a logical plan directly; rows as mapping tuples."""
    return [
        tuple(solution.mapping().get(name) for name in columns)
        for solution in ssdm.engine.run(plan, graph=ssdm.graph)
    ]


class TestFusionRewrite:
    def test_order_limit_fuses_through_project(self, ssdm):
        plan, _ = ssdm.plan(
            EX + "SELECT ?s WHERE { ?s ex:score ?v } ORDER BY ?v LIMIT 3"
        )
        ops = _plan_ops(plan)
        assert "TopK" in ops
        assert "Slice" not in ops and "OrderBy" not in ops

    def test_offset_is_preserved(self, ssdm):
        plan, _ = ssdm.plan(
            EX + "SELECT ?s WHERE { ?s ex:score ?v } "
            "ORDER BY ?v LIMIT 3 OFFSET 2"
        )
        topk = next(
            node for node in _iter_nodes(plan) if isinstance(node, TopK)
        )
        assert topk.limit == 3 and topk.offset == 2

    def test_plain_limit_stays_slice(self, ssdm):
        plan, _ = ssdm.plan(
            EX + "SELECT ?s WHERE { ?s ex:score ?v } LIMIT 3"
        )
        ops = _plan_ops(plan)
        assert "Slice" in ops and "TopK" not in ops

    def test_plain_order_by_stays_sort(self, ssdm):
        plan, _ = ssdm.plan(
            EX + "SELECT ?s WHERE { ?s ex:score ?v } ORDER BY ?v"
        )
        ops = _plan_ops(plan)
        assert "OrderBy" in ops and "TopK" not in ops

    def test_distinct_blocks_fusion(self, ssdm):
        plan, _ = ssdm.plan(
            EX + "SELECT DISTINCT ?v WHERE { ?s ex:score ?v } "
            "ORDER BY ?v LIMIT 3"
        )
        ops = _plan_ops(plan)
        assert "TopK" not in ops
        assert "OrderBy" in ops and "Slice" in ops


class TestFusionParity:
    def _unfused(self, node):
        """Rebuild the pre-fusion plan: Slice over OrderBy."""
        if isinstance(node, TopK):
            return Slice(
                OrderBy(self._unfused(node.input), node.keys),
                limit=node.limit, offset=node.offset,
            )
        for field in node._fields:
            value = getattr(node, field)
            if hasattr(value, "_fields"):
                setattr(node, field, self._unfused(value))
        return node

    @pytest.mark.parametrize("modifiers", [
        "ORDER BY ?v LIMIT 5",
        "ORDER BY DESC(?v) ?s LIMIT 7",
        "ORDER BY ?v LIMIT 4 OFFSET 3",
        "ORDER BY ?v LIMIT 100",       # limit larger than the input
    ])
    def test_fused_matches_sort_then_slice(self, ssdm, modifiers):
        _load_scores(ssdm, 40)
        query = EX + "SELECT ?s ?v WHERE { ?s ex:score ?v } " + modifiers
        plan, columns = ssdm.plan(query)
        assert any(isinstance(n, TopK) for n in _iter_nodes(plan))
        fused = _run_plan(ssdm, plan, columns)
        unfused_plan, _ = ssdm.plan(query)
        unfused = _run_plan(ssdm, self._unfused(unfused_plan), columns)
        assert fused == unfused
        assert len(fused) > 0

    def test_limit_zero_yields_nothing(self, ssdm):
        _load_scores(ssdm, 10)
        result = ssdm.execute(
            EX + "SELECT ?s WHERE { ?s ex:score ?v } ORDER BY ?v LIMIT 0"
        )
        assert result.rows == []


class TestComparisonWork:
    def _count_comparisons(self, ssdm, query, monkeypatch):
        counter = {"lt": 0}
        original = eval_mod._Directional.__lt__

        def counting_lt(self, other):
            counter["lt"] += 1
            return original(self, other)

        monkeypatch.setattr(eval_mod._Directional, "__lt__", counting_lt)
        ssdm.execute(query)
        monkeypatch.undo()
        return counter["lt"]

    def test_topk_compares_far_less_than_full_sort(self, ssdm,
                                                   monkeypatch):
        n, k = 2000, 5
        _load_scores(ssdm, n)
        base = EX + "SELECT ?s WHERE { ?s ex:score ?v } ORDER BY ?v"
        full = self._count_comparisons(ssdm, base, monkeypatch)
        topk = self._count_comparisons(
            ssdm, base + " LIMIT %d" % k, monkeypatch
        )
        # nsmallest is O(n log k): ~one comparison per element against
        # the heap root plus sifts for the few that displace an entry.
        # A full sort is O(n log n) — over 5x more at n=2000, k=5.
        assert topk < full / 4
        assert topk < 3 * n
