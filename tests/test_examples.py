"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; each must execute without
errors in a fresh interpreter (imports included), printing something.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
