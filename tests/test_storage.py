"""ASEI back-ends: storage, retrieval strategies, SPD, cache, proxies.

The ``array_store`` fixture parametrizes over all three back-ends so every
test here runs against memory, file, and SQLite storage.
"""

import numpy as np
import pytest

from repro.arrays import ArrayProxy, NumericArray, Span
from repro.exceptions import StorageError
from repro.storage import (
    APRResolver, ChunkCache, FileArrayStore, MemoryArrayStore,
    SequencePatternDetector, SqlArrayStore, Strategy,
)
from repro.storage.spd import detect_patterns


@pytest.fixture
def data():
    return np.arange(1000, dtype=np.float64).reshape(20, 50)


@pytest.fixture
def stored(array_store, data):
    return array_store.put(NumericArray(data))


class TestPutAndMeta:
    def test_put_returns_whole_proxy(self, stored, data):
        assert isinstance(stored, ArrayProxy)
        assert stored.shape == (20, 50)
        assert stored.is_whole_array()

    def test_meta(self, array_store, stored):
        meta = array_store.meta(stored.array_id)
        assert meta.shape == (20, 50)
        assert meta.element_type == "f8"
        assert meta.layout.element_count == 1000

    def test_unknown_array_id(self, array_store):
        with pytest.raises(StorageError):
            array_store.meta(999_999)

    def test_proxy_lookup(self, array_store, stored):
        again = array_store.proxy(stored.array_id)
        assert again == stored

    def test_stats_track_stores(self, array_store, data):
        before = array_store.stats.arrays_stored
        array_store.put(NumericArray(data))
        assert array_store.stats.arrays_stored == before + 1

    def test_int_array_roundtrip(self, array_store):
        proxy = array_store.put(NumericArray([[1, 2], [3, 4]]))
        out = proxy.resolve()
        assert out.to_nested_lists() == [[1, 2], [3, 4]]
        assert out.element_type == "i8"


class TestResolution:
    def test_whole_array(self, stored, data):
        out = stored.resolve()
        assert np.array_equal(out.to_numpy(), data)

    def test_row(self, stored, data):
        out = stored.subscript([3]).resolve()
        assert out.to_nested_lists() == data[3].tolist()

    def test_column(self, stored, data):
        out = stored.subscript([None, 7]).resolve()
        assert out.to_nested_lists() == data[:, 7].tolist()

    def test_block(self, stored, data):
        out = stored.subscript([Span(2, 5), Span(10, 14)]).resolve()
        assert out.to_nested_lists() == data[2:5, 10:14].tolist()

    def test_strided(self, stored, data):
        out = stored.subscript([Span(0, 20, 3), 0]).resolve()
        assert out.to_nested_lists() == data[::3, 0].tolist()

    def test_single_element(self, stored, data):
        assert stored.subscript([4, 9]).resolve() == data[4, 9]

    def test_transposed_view(self, stored, data):
        out = stored.transpose().resolve()
        assert np.array_equal(out.to_numpy(), data.T)

    def test_nested_lazy_subscripts(self, stored, data):
        view = stored.subscript([Span(5, 15)]).subscript([None, Span(0, 10)])
        out = view.resolve()
        assert np.array_equal(out.to_numpy(), data[5:15, 0:10])

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_all_strategies_same_answer(self, array_store, stored, data,
                                        strategy):
        resolver = APRResolver(array_store, strategy=strategy,
                               buffer_size=8)
        out = resolver.resolve([stored.subscript([None, 13])])[0]
        assert out.to_nested_lists() == data[:, 13].tolist()

    def test_bag_resolution_shares_requests(self, array_store, stored):
        resolver = APRResolver(array_store, strategy=Strategy.SPD)
        array_store.stats.reset()
        views = [stored.subscript([i]) for i in range(5)]
        outs = resolver.resolve(views)
        assert len(outs) == 5
        # five contiguous rows are one arithmetic chunk sequence
        assert array_store.stats.requests <= 2

    def test_foreign_proxy_rejected(self, array_store, data):
        other = MemoryArrayStore(chunk_bytes=256)
        foreign = other.put(NumericArray(data))
        resolver = APRResolver(array_store)
        with pytest.raises(StorageError):
            resolver.resolve([foreign])


class TestStrategyTraffic:
    """The round-trip counts the paper's Experiment 1 compares."""

    def test_single_issues_one_request_per_chunk(self, array_store, stored):
        array_store.stats.reset()
        APRResolver(array_store, strategy=Strategy.SINGLE).resolve(
            [stored.subscript([None, 0])]
        )
        stats = array_store.stats.snapshot()
        assert stats["requests"] == stats["chunks_fetched"]
        assert stats["requests"] > 1

    def test_buffer_batches(self, array_store, stored):
        array_store.stats.reset()
        APRResolver(
            array_store, strategy=Strategy.BUFFER, buffer_size=16
        ).resolve([stored.subscript([None, 0])])
        stats = array_store.stats.snapshot()
        assert stats["requests"] < stats["chunks_fetched"]

    def test_spd_beats_buffer_on_column(self, array_store, stored):
        view = stored.subscript([None, 0])
        array_store.stats.reset()
        APRResolver(
            array_store, strategy=Strategy.BUFFER, buffer_size=4
        ).resolve([view])
        buffered = array_store.stats.requests
        array_store.stats.reset()
        APRResolver(array_store, strategy=Strategy.SPD).resolve([view])
        assert array_store.stats.requests < buffered

    def test_spd_single_request_when_stride_aligns(self):
        # row stride 64 = exactly two 32-element chunks: the column's
        # chunk-id stream is one arithmetic sequence
        store = MemoryArrayStore(chunk_bytes=256)
        data = np.arange(20 * 64, dtype=np.float64).reshape(20, 64)
        proxy = store.put(NumericArray(data))
        store.stats.reset()
        out = APRResolver(store, strategy=Strategy.SPD).resolve(
            [proxy.subscript([None, 0])]
        )[0]
        assert store.stats.requests == 1
        assert out.to_nested_lists() == data[:, 0].tolist()

    def test_buffer_size_one_equals_single(self, array_store, stored):
        view = stored.subscript([None, 3])
        array_store.stats.reset()
        APRResolver(
            array_store, strategy=Strategy.BUFFER, buffer_size=1
        ).resolve([view])
        buffered = array_store.stats.requests
        array_store.stats.reset()
        APRResolver(array_store, strategy=Strategy.SINGLE).resolve([view])
        assert buffered == array_store.stats.requests


class TestAggregates:
    def test_whole_array_sum(self, array_store, stored, data):
        resolver = APRResolver(array_store)
        assert resolver.resolve_aggregate(stored, "sum") == pytest.approx(
            data.sum()
        )

    def test_view_avg(self, array_store, stored, data):
        resolver = APRResolver(array_store)
        view = stored.subscript([None, 4])
        assert resolver.resolve_aggregate(view, "avg") == pytest.approx(
            data[:, 4].mean()
        )

    def test_min_max(self, array_store, stored, data):
        resolver = APRResolver(array_store)
        assert resolver.resolve_aggregate(stored, "min") == data.min()
        assert resolver.resolve_aggregate(stored, "max") == data.max()

    def test_count(self, array_store, stored):
        resolver = APRResolver(array_store)
        assert resolver.resolve_aggregate(stored, "count") == 1000

    def test_unknown_op(self, array_store, stored):
        with pytest.raises(StorageError):
            APRResolver(array_store).resolve_aggregate(stored, "median")

    def test_delegation_counted(self, array_store, stored):
        if not array_store.supports_aggregates:
            pytest.skip("back-end does not delegate aggregates")
        array_store.stats.reset()
        APRResolver(array_store).resolve_aggregate(stored, "sum")
        assert array_store.stats.aggregates_delegated == 1


class TestPersistence:
    def test_file_store_reopen(self, tmp_path, data):
        store = FileArrayStore(str(tmp_path / "s"), chunk_bytes=256)
        proxy = store.put(NumericArray(data))
        array_id = proxy.array_id
        reopened = FileArrayStore(str(tmp_path / "s"), chunk_bytes=256)
        out = reopened.proxy(array_id).resolve()
        assert np.array_equal(out.to_numpy(), data)

    def test_sql_store_file_reopen(self, tmp_path, data):
        path = str(tmp_path / "arrays.db")
        store = SqlArrayStore(path, chunk_bytes=256)
        proxy = store.put(NumericArray(data))
        array_id = proxy.array_id
        store.close()
        reopened = SqlArrayStore(path, chunk_bytes=256)
        out = reopened.proxy(array_id).resolve()
        assert np.array_equal(out.to_numpy(), data)

    def test_file_store_id_recovery(self, tmp_path, data):
        store = FileArrayStore(str(tmp_path / "s"))
        first = store.put(NumericArray(data)).array_id
        reopened = FileArrayStore(str(tmp_path / "s"))
        second = reopened.put(NumericArray(data)).array_id
        assert second > first


class TestSPD:
    def test_pure_arithmetic_sequence(self):
        assert detect_patterns([0, 3, 6, 9]) == [("range", 0, 9, 3)]

    def test_short_run_stays_single(self):
        assert detect_patterns([0, 5]) == [("single", 0), ("single", 5)]

    def test_mixed(self):
        out = detect_patterns([0, 2, 4, 6, 11, 13])
        assert out == [("range", 0, 6, 2), ("single", 11), ("single", 13)]

    def test_run_break_restarts(self):
        out = detect_patterns([0, 1, 2, 3, 10, 11, 12, 13])
        assert out == [("range", 0, 3, 1), ("range", 10, 13, 1)]

    def test_decreasing_never_ranges(self):
        out = detect_patterns([9, 6, 3, 0])
        assert all(kind == "single" for kind, *_ in out)

    def test_min_run_respected(self):
        assert detect_patterns([0, 1, 2], min_run=4) == [
            ("single", 0), ("single", 1), ("single", 2)
        ]

    def test_empty_stream(self):
        assert detect_patterns([]) == []

    def test_single_element(self):
        assert detect_patterns([7]) == [("single", 7)]

    def test_invalid_min_run(self):
        with pytest.raises(ValueError):
            SequencePatternDetector(min_run=1)

    def test_streaming_matches_batch(self):
        stream = [0, 4, 8, 12, 13, 14, 15, 40]
        detector = SequencePatternDetector()
        streamed = []
        for cid in stream:
            streamed.extend(detector.feed(cid))
        streamed.extend(detector.flush())
        assert streamed == detect_patterns(stream)

    def test_coverage_equals_input(self):
        stream = [0, 2, 4, 6, 7, 8, 20, 25, 30, 35, 99]
        covered = []
        for emission in detect_patterns(stream):
            if emission[0] == "range":
                covered.extend(
                    range(emission[1], emission[2] + 1, emission[3])
                )
            else:
                covered.append(emission[1])
        assert covered == stream


class TestCache:
    def test_hit_after_put(self):
        cache = ChunkCache()
        cache.put(1, 0, np.zeros(4))
        assert cache.get(1, 0) is not None
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = ChunkCache()
        assert cache.get(1, 0) is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = ChunkCache(max_bytes=100)
        cache.put(1, 0, np.zeros(8))          # 64 bytes
        cache.put(1, 1, np.zeros(8))          # 64 bytes -> evicts chunk 0
        assert cache.get(1, 0) is None
        assert cache.get(1, 1) is not None

    def test_touch_refreshes_lru(self):
        cache = ChunkCache(max_bytes=150)
        cache.put(1, 0, np.zeros(8))
        cache.put(1, 1, np.zeros(8))
        cache.get(1, 0)                        # refresh 0
        cache.put(1, 2, np.zeros(8))           # evicts 1, not 0
        assert cache.get(1, 0) is not None
        assert cache.get(1, 1) is None

    def test_invalidate_array(self):
        cache = ChunkCache()
        cache.put(1, 0, np.zeros(4))
        cache.put(2, 0, np.zeros(4))
        cache.invalidate(1)
        assert cache.get(1, 0) is None
        assert cache.get(2, 0) is not None

    def test_invalidate_all(self):
        cache = ChunkCache()
        cache.put(1, 0, np.zeros(4))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_resolver_uses_cache(self, array_store, stored):
        cache = ChunkCache()
        resolver = APRResolver(array_store, cache=cache)
        view = stored.subscript([None, 2])
        resolver.resolve([view])
        array_store.stats.reset()
        resolver.resolve([view])
        assert array_store.stats.requests == 0
        assert cache.hits > 0


class TestProxyValueSemantics:
    def test_equal_views_equal(self, array_store, stored):
        assert stored.subscript([1]) == stored.subscript([1])

    def test_different_views_differ(self, array_store, stored):
        assert stored.subscript([1]) != stored.subscript([2])

    def test_hashable(self, array_store, stored):
        assert len({stored.subscript([1]), stored.subscript([1])}) == 1

    def test_element_count(self, array_store, stored):
        assert stored.element_count == 1000
        assert stored.subscript([0]).element_count == 50

    def test_whole_array_flag(self, array_store, stored):
        assert stored.is_whole_array()
        assert not stored.subscript([0]).is_whole_array()
        assert not stored.transpose().is_whole_array()
