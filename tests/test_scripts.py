"""CLI contracts of the ops scripts.

``fsck_store.py`` is a CI/ops gate: exit 0 only when no damage was
found, exit 1 when corruption or a torn WAL tail exists (even if
``--repair`` fixed it — the gate is "damage happened"), exit 2 on
usage errors; ``--json`` prints exactly one machine-readable document.
"""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "scripts")
)

import fsck_store  # noqa: E402

from repro import SSDM, FileArrayStore  # noqa: E402
from repro.storage.durability import DatasetJournal  # noqa: E402

EX = "PREFIX ex: <http://example.org/> "


def make_wal(tmp_path, torn=False):
    directory = str(tmp_path / "wal")
    ssdm = SSDM.open(directory)
    ssdm.execute(EX + "INSERT DATA { ex:s ex:p 1 }")
    ssdm.execute(EX + "INSERT DATA { ex:s ex:p 2 }")
    ssdm.close()
    if torn:
        log = os.path.join(directory, DatasetJournal.LOG_NAME)
        with open(log, "r+b") as handle:
            handle.truncate(os.path.getsize(log) - 2)
    return directory


class TestFsckWal:
    def test_clean_wal_exits_zero(self, tmp_path, capsys):
        directory = make_wal(tmp_path)
        assert fsck_store.main(["--wal", directory, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["kind"] == "wal"
        assert doc["report"]["records_intact"] == 2
        assert doc["report"]["last_seq"] == 2
        assert doc["report"]["bytes_torn"] == 0

    def test_torn_tail_exits_nonzero(self, tmp_path, capsys):
        directory = make_wal(tmp_path, torn=True)
        assert fsck_store.main(["--wal", directory, "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["report"]["records_intact"] == 1
        assert doc["report"]["bytes_torn"] > 0

    def test_repair_truncates_but_still_reports_damage(
        self, tmp_path, capsys
    ):
        directory = make_wal(tmp_path, torn=True)
        assert fsck_store.main(
            ["--wal", directory, "--repair", "--json"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["repaired"] is True
        # after the repair a fresh check is clean
        assert fsck_store.main(["--wal", directory, "--json"]) == 0

    def test_missing_wal_is_a_usage_error(self, tmp_path):
        assert fsck_store.main(["--wal", str(tmp_path / "nope")]) == 2


class TestFsckStore:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        store = FileArrayStore(str(tmp_path / "store"))
        store.put([[1, 2], [3, 4]])
        assert fsck_store.main(
            ["--file", str(tmp_path / "store"), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["kind"] == "store"
        assert doc["report"]["corrupt"] == []

    def test_corrupt_chunk_exits_nonzero(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        store = FileArrayStore(directory)
        proxy = store.put(list(range(64)))
        data = os.path.join(directory, "array_%d.bin" % proxy.array_id)
        with open(data, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\xff" * 8)
        assert fsck_store.main(["--file", directory, "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["report"]["corrupt"]

    def test_missing_database_is_a_usage_error(self, tmp_path):
        assert fsck_store.main(
            ["--sql", str(tmp_path / "absent.db")]
        ) == 2


class TestRunReplica:
    def test_bad_upstream_is_a_usage_error(self, tmp_path):
        import run_replica
        with pytest.raises(SystemExit) as excinfo:
            run_replica.main([
                "--data", str(tmp_path / "r"),
                "--upstream", "not-an-endpoint",
            ])
        assert excinfo.value.code == 2
