"""Optimizer soundness: for random graphs, the rewritten + cost-optimized
plan returns exactly the same solution multiset as the raw translation.

This is the key invariant behind section 5.4.5's rewriting machinery —
normalization and predicate reordering must never change query results.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import SSDM, Literal, URI
from repro.algebra.optimizer import optimize
from repro.algebra.rewriter import rewrite
from repro.algebra.translator import translate

QUERIES = [
    # plain joins
    "SELECT ?a ?b WHERE { ?a <http://e/p0> ?x . ?x <http://e/p1> ?b }",
    # join + filter
    """SELECT ?a WHERE { ?a <http://e/p0> ?v . ?a <http://e/p1> ?w
       FILTER(?v < ?w) }""",
    # optional with condition referencing both sides
    """SELECT ?a ?w WHERE { ?a <http://e/p0> ?v
       OPTIONAL { ?a <http://e/p1> ?w FILTER(?w > ?v) } }""",
    # union under a shared pattern plus filter
    """SELECT ?a ?v WHERE { ?a <http://e/p0> ?v
       { ?a <http://e/p1> ?u } UNION { ?a <http://e/p2> ?u }
       FILTER(?v != 0) }""",
    # minus
    """SELECT ?a WHERE { ?a <http://e/p0> ?v
       MINUS { ?a <http://e/p1> ?v } }""",
    # bind + filter over computed value
    """SELECT ?a ?d WHERE { ?a <http://e/p0> ?v
       BIND(?v * 2 AS ?d) FILTER(?d >= 2) }""",
    # aggregation
    """SELECT ?a (SUM(?v) AS ?t) WHERE { ?a ?p ?v
       FILTER(ISNUMERIC(?v)) } GROUP BY ?a""",
    # exists
    """SELECT ?a WHERE { ?a <http://e/p0> ?v
       FILTER(EXISTS { ?a <http://e/p1> ?w }) }""",
    # property path
    "SELECT ?a ?b WHERE { ?a <http://e/p0>+ ?b }",
]


triples_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),          # subject
        st.integers(0, 2),          # predicate
        st.one_of(st.integers(0, 4), st.integers(10, 13)),
    ),
    min_size=0, max_size=25,
)


def build_ssdm(raw_triples):
    ssdm = SSDM()
    for s, p, o in raw_triples:
        subject = URI("http://e/s%d" % s)
        predicate = URI("http://e/p%d" % p)
        if o >= 10:
            value = Literal(o - 10)
        else:
            value = URI("http://e/s%d" % o)
        ssdm.graph.add(subject, predicate, value)
    return ssdm


def run_plan(ssdm, plan, columns):
    rows = []
    for solution in ssdm.engine.run(plan):
        rows.append(tuple(
            repr(solution.get(name)) for name in columns
        ))
    return Counter(rows)


@pytest.mark.parametrize("query_text", QUERIES)
@given(raw_triples=triples_strategy)
@settings(max_examples=25, deadline=None)
def test_optimized_equals_raw(query_text, raw_triples):
    ssdm = build_ssdm(raw_triples)
    parsed = ssdm.parse(query_text)
    raw_plan, columns = translate(parsed)
    optimized_plan = optimize(rewrite(raw_plan), ssdm.graph)
    raw_result = run_plan(ssdm, raw_plan, columns)
    optimized_result = run_plan(ssdm, optimized_plan, columns)
    assert raw_result == optimized_result
