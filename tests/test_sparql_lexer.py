"""Tokenizer: token kinds, tricky ambiguities, error reporting."""

import pytest

from repro.exceptions import ParseError
from repro.sparql.lexer import (
    BLANK, DECIMAL, DOUBLE, EOF, INTEGER, IRI, LANGTAG, NAME, PNAME, PUNCT,
    STRING, VAR, Lexer,
)


def kinds(text):
    return [t.kind for t in Lexer(text).tokens()[:-1]]


def values(text):
    return [t.value for t in Lexer(text).tokens()[:-1]]


class TestBasicTokens:
    def test_iri(self):
        tokens = Lexer("<http://example.org/x>").tokens()
        assert tokens[0].kind == IRI
        assert tokens[0].value == "http://example.org/x"

    def test_var_question_and_dollar(self):
        assert values("?x $y") == ["x", "y"]
        assert kinds("?x $y") == [VAR, VAR]

    def test_blank_node(self):
        tokens = Lexer("_:b1").tokens()
        assert tokens[0].kind == BLANK and tokens[0].value == "b1"

    def test_pname(self):
        tokens = Lexer("foaf:name").tokens()
        assert tokens[0].kind == PNAME
        assert tokens[0].value == ("foaf", "name")

    def test_default_prefix_pname(self):
        tokens = Lexer(":alice").tokens()
        assert tokens[0].value == ("", "alice")

    def test_numbers(self):
        assert kinds("42 3.5 1e3 .5") == [INTEGER, DECIMAL, DOUBLE, DECIMAL]
        assert values("42 3.5") == [42, 3.5]

    def test_keywords_are_names(self):
        assert kinds("SELECT where FiLtEr") == [NAME, NAME, NAME]

    def test_langtag(self):
        tokens = Lexer('"chat"@fr-BE').tokens()
        assert tokens[1].kind == LANGTAG and tokens[1].value == "fr-BE"

    def test_eof_terminated(self):
        assert Lexer("").tokens()[-1].kind == EOF


class TestStrings:
    def test_double_quoted(self):
        assert values('"hello"') == ["hello"]

    def test_single_quoted(self):
        assert values("'hello'") == ["hello"]

    def test_escapes(self):
        assert values(r'"a\tb\nc\"d"') == ["a\tb\nc\"d"]

    def test_unicode_escape(self):
        assert values(r'"é"') == ["é"]

    def test_long_string(self):
        assert values('"""multi\nline"""') == ["multi\nline"]

    def test_unterminated(self):
        with pytest.raises(ParseError):
            Lexer('"oops').tokens()

    def test_newline_in_short_string(self):
        with pytest.raises(ParseError):
            Lexer('"a\nb"').tokens()

    def test_bad_escape(self):
        with pytest.raises(ParseError):
            Lexer(r'"\q"').tokens()


class TestAmbiguities:
    def test_colon_number_is_range_not_pname(self):
        # ?a[1:3] must tokenize ':' as punctuation
        assert kinds("1:3") == [INTEGER, PUNCT, INTEGER]

    def test_pname_does_not_swallow_dot(self):
        tokens = Lexer(":s :p :o.").tokens()
        assert tokens[2].value == ("", "o")
        assert tokens[3].value == "."

    def test_less_than_operator(self):
        assert kinds("?x < 3") == [VAR, PUNCT, INTEGER]

    def test_iri_vs_less_than(self):
        assert kinds("<http://x> < 3") == [IRI, PUNCT, INTEGER]

    def test_question_mark_path_modifier(self):
        # '?' not followed by a name char is punctuation
        assert kinds("p? ") == [NAME, PUNCT]

    def test_double_caret(self):
        assert values('"5"^^xsd:integer')[1] == "^^"

    def test_logical_operators(self):
        assert values("&& || != <= >=") == ["&&", "||", "!=", "<=", ">="]

    def test_comment_skipped(self):
        assert kinds("?x # comment\n?y") == [VAR, VAR]


class TestPositions:
    def test_line_column_tracking(self):
        tokens = Lexer("?x\n  ?y").tokens()
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            Lexer("?x ☃").tokens()
        except ParseError as error:
            assert error.line == 1
            assert error.column == 4
        else:
            pytest.fail("expected ParseError")
