"""W3C SPARQL results-JSON encoding with the SSDM array extension."""

import json

import pytest

from repro import SSDM, Literal, NumericArray, URI
from repro.client.results_format import (
    ARRAY_DATATYPE, from_sparql_json, to_sparql_json,
)
from repro.ssdm import QueryResult


class TestEncoding:
    def test_select_structure(self, foaf):
        result = foaf.execute("""
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?name WHERE { ?p foaf:name ?name } ORDER BY ?name""")
        raw = json.loads(to_sparql_json(result))
        assert raw["head"]["vars"] == ["name"]
        assert raw["results"]["bindings"][0]["name"] == {
            "type": "literal", "value": "Alice"
        }

    def test_ask_boolean(self):
        assert json.loads(to_sparql_json(True))["boolean"] is True

    def test_typed_numbers(self):
        result = QueryResult(["i", "d"], [(5, 2.5)])
        raw = json.loads(to_sparql_json(result))
        cell = raw["results"]["bindings"][0]
        assert cell["i"]["datatype"].endswith("integer")
        assert cell["d"]["datatype"].endswith("double")

    def test_unbound_omitted(self):
        result = QueryResult(["a", "b"], [(1, None)])
        raw = json.loads(to_sparql_json(result))
        assert "b" not in raw["results"]["bindings"][0]

    def test_array_as_typed_literal(self):
        result = QueryResult(["m"], [(NumericArray([[1, 2], [3, 4]]),)])
        raw = json.loads(to_sparql_json(result))
        cell = raw["results"]["bindings"][0]["m"]
        assert cell["datatype"] == ARRAY_DATATYPE
        assert cell["value"] == "((1 2) (3 4))"

    def test_language_tag(self):
        result = QueryResult(["t"], [(Literal("chat", lang="fr"),)])
        raw = json.loads(to_sparql_json(result))
        assert raw["results"]["bindings"][0]["t"]["xml:lang"] == "fr"


class TestRoundTrip:
    def test_scalar_roundtrip(self):
        result = QueryResult(
            ["u", "i", "s", "b"],
            [(URI("http://e/x"), 7, "text", True)],
        )
        columns, rows = from_sparql_json(to_sparql_json(result))
        assert columns == ["u", "i", "s", "b"]
        assert rows == [(URI("http://e/x"), 7, "text", True)]

    def test_array_roundtrip(self):
        array = NumericArray([[1, 2], [3, 4]])
        result = QueryResult(["m"], [(array,)])
        _, rows = from_sparql_json(to_sparql_json(result))
        assert rows[0][0] == array

    def test_float_array_roundtrip(self):
        array = NumericArray([1.5, -2.25])
        result = QueryResult(["v"], [(array,)])
        _, rows = from_sparql_json(to_sparql_json(result))
        assert rows[0][0] == array

    def test_unbound_roundtrip(self):
        result = QueryResult(["a"], [(None,)])
        _, rows = from_sparql_json(to_sparql_json(result))
        assert rows == [(None,)]

    def test_ask_roundtrip(self):
        assert from_sparql_json(to_sparql_json(False)) is False

    def test_end_to_end_query(self, arrays):
        result = arrays.execute("""
            PREFIX ex: <http://example.org/>
            SELECT ?l ?a[1] WHERE { ?s ex:val ?a ; ex:label ?l }
            ORDER BY ?l""")
        columns, rows = from_sparql_json(to_sparql_json(result))
        assert len(rows) == 3
