"""Property-path evaluation (section 3.4)."""

import pytest

from repro import SSDM, URI

EXP = "PREFIX ex: <http://e/>\n"


def e(name):
    return URI("http://e/" + name)


@pytest.fixture
def chain(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:a ex:next ex:b . ex:b ex:next ex:c . ex:c ex:next ex:d .
        ex:a ex:alt ex:x .
        ex:a ex:name "A" . ex:b ex:name "B" .
        ex:c ex:name "C" . ex:d ex:name "D" . ex:x ex:name "X" .
    """)
    return ssdm


class TestSequence:
    def test_two_steps(self, chain):
        r = chain.execute(EXP + "SELECT ?y WHERE { ex:a ex:next/ex:next ?y }")
        assert r.rows == [(e("c"),)]

    def test_sequence_with_name(self, chain):
        r = chain.execute(EXP +
                          "SELECT ?n WHERE { ex:a ex:next/ex:name ?n }")
        assert r.rows == [("B",)]

    def test_three_step_sequence(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:a ex:next/ex:next/ex:next ?y }"
        )
        assert r.rows == [(e("d"),)]

    def test_bound_object_direction(self, chain):
        r = chain.execute(EXP +
                          "SELECT ?x WHERE { ?x ex:next/ex:next ex:d }")
        assert r.rows == [(e("b"),)]


class TestInverse:
    def test_inverse_link(self, chain):
        r = chain.execute(EXP + "SELECT ?x WHERE { ex:b ^ex:next ?x }")
        assert r.rows == [(e("a"),)]

    def test_inverse_in_sequence(self, chain):
        r = chain.execute(EXP +
                          "SELECT ?n WHERE { ex:c ^ex:next/ex:name ?n }")
        assert r.rows == [("B",)]


class TestAlternative:
    def test_alternative(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:a ex:next|ex:alt ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("b"), e("x")]

    def test_alternative_deduplicates(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:a ex:next|ex:next ?y }"
        )
        assert len(r.rows) == 1


class TestClosures:
    def test_plus_from_subject(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:b ex:next+ ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("c"), e("d")]

    def test_star_includes_start(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:b ex:next* ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("b"), e("c"), e("d")]

    def test_question_mark(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:b ex:next? ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("b"), e("c")]

    def test_plus_reverse_direction(self, chain):
        r = chain.execute(
            EXP + "SELECT ?x WHERE { ?x ex:next+ ex:d } ORDER BY ?x"
        )
        assert r.column("x") == [e("a"), e("b"), e("c")]

    def test_star_both_unbound(self, chain):
        r = chain.execute(EXP + "SELECT ?x ?y WHERE { ?x ex:next* ?y }")
        # every node reflexively plus all forward closures
        pairs = set(r.rows)
        assert (e("a"), e("a")) in pairs
        assert (e("a"), e("d")) in pairs
        assert (e("d"), e("a")) not in pairs

    def test_cycle_terminates(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:p ex:n ex:q . ex:q ex:n ex:p .
        """)
        r = ssdm.execute(EXP + "SELECT ?y WHERE { ex:p ex:n+ ?y } "
                         "ORDER BY ?y")
        assert r.column("y") == [e("p"), e("q")]

    def test_grouped_closure(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:c (ex:next|^ex:next)+ ?y } "
            "ORDER BY ?y"
        )
        # the chain is connected: everything except ex:x is reachable
        assert e("a") in r.column("y")
        assert e("d") in r.column("y")
        assert e("x") not in r.column("y")


class TestNegatedSets:
    def test_negated_forward(self, chain):
        r = chain.execute(EXP + "SELECT ?y WHERE { ex:a !ex:next ?y } "
                          "ORDER BY ?y")
        values = r.column("y")
        assert e("x") in values           # via ex:alt
        assert e("b") not in values

    def test_negated_multiple(self, chain):
        r = chain.execute(
            EXP + 'SELECT ?y WHERE { ex:a !(ex:next|ex:alt) ?y }'
        )
        assert r.column("y") == ["A"]     # only ex:name remains

    def test_negated_inverse_only(self, chain):
        # !(^ex:alt) matches *reverse* edges whose predicate is not
        # ex:alt — ex:b has one incoming edge, ex:a -ex:next-> ex:b —
        # and must not match any forward edge out of ex:b
        r = chain.execute(EXP + "SELECT ?y WHERE { ex:b !(^ex:alt) ?y }")
        assert r.column("y") == [e("a")]

    def test_negated_inverse_only_excludes_listed(self, chain):
        # the only incoming edge of ex:b is ex:next, which is on the list
        r = chain.execute(EXP + "SELECT ?y WHERE { ex:b !(^ex:next) ?y }")
        assert r.rows == []

    def test_negated_mixed_directions(self, chain):
        # forward half: edges out of ex:b except ex:next (only ex:name);
        # inverse half: edges into ex:b except ex:alt (ex:a via ex:next)
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:b !(ex:next|^ex:alt) ?y }"
        )
        assert sorted(r.column("y"), key=str) == ["B", e("a")]


class _CountingGraph:
    """Delegating wrapper that records every ``triples()`` call."""

    def __init__(self, graph):
        self._graph = graph
        self.calls = []

    def triples(self, subject=None, prop=None, value=None):
        self.calls.append((subject, prop, value))
        return self._graph.triples(subject, prop, value)


class TestNegatedScanDirections:
    """Each half of a negated set scans only when non-empty (regression:
    the reverse scan used to run — a full graph pass — even for
    forward-only sets like ``!ex:next``)."""

    @pytest.fixture
    def graph(self):
        from repro.rdf import Graph

        g = Graph()
        g.add(e("a"), e("next"), e("b"))
        g.add(e("b"), e("next"), e("c"))
        g.add(e("a"), e("alt"), e("x"))
        return g

    def _negated(self, forward, inverse):
        from repro.sparql import ast

        return ast.PathNegated(forward, inverse)

    def test_forward_only_set_never_scans_reverse(self, graph):
        from repro.engine.paths import eval_path

        counting = _CountingGraph(graph)
        path = self._negated([e("next")], [])
        pairs = list(eval_path(counting, path, subject=e("a")))
        assert pairs == [(e("a"), e("x"))]
        # exactly one scan, and it is the forward-shaped one
        assert counting.calls == [(e("a"), None, None)]

    def test_inverse_only_set_never_scans_forward(self, graph):
        from repro.engine.paths import eval_path

        counting = _CountingGraph(graph)
        path = self._negated([], [e("alt")])
        pairs = list(eval_path(counting, path, subject=e("b")))
        assert pairs == [(e("b"), e("a"))]
        # exactly one scan, and it is the reverse-shaped one
        assert counting.calls == [(None, None, e("b"))]

    def test_mixed_set_scans_both_directions(self, graph):
        from repro.engine.paths import eval_path

        counting = _CountingGraph(graph)
        path = self._negated([e("next")], [e("next")])
        pairs = list(eval_path(counting, path, subject=e("a")))
        assert pairs == [(e("a"), e("x"))]
        assert counting.calls == [
            (e("a"), None, None), (None, None, e("a")),
        ]


class TestPathEdgeCases:
    """Cyclic closures with bound endpoints, ``?`` with bound subject,
    and value-driven sequences."""

    @pytest.fixture
    def cycle(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:p ex:n ex:q . ex:q ex:n ex:p .
        """)
        return ssdm

    def test_plus_cycle_both_bound_reaches_start(self, cycle):
        r = cycle.execute(EXP + "ASK { ex:p ex:n+ ex:p }")
        assert r is True

    def test_plus_cycle_both_bound_unreachable(self, cycle):
        r = cycle.execute(EXP + "ASK { ex:p ex:n+ ex:missing }")
        assert r is False

    def test_star_cycle_both_bound(self, cycle):
        assert cycle.execute(EXP + "ASK { ex:p ex:n* ex:q }") is True
        # * is reflexive even through a cycle
        assert cycle.execute(EXP + "ASK { ex:p ex:n* ex:p }") is True

    def test_question_mark_subject_equals_value(self, cycle):
        # zero-length match: no self edge needed when both ends coincide
        assert cycle.execute(EXP + "ASK { ex:missing ex:n? ex:missing }") \
            is True
        assert cycle.execute(EXP + "ASK { ex:p ex:n? ex:missing }") is False

    def test_sequence_driven_from_value_side(self, chain):
        # only the value end is bound (a literal), so the sequence must
        # evaluate its tail first and chain backwards
        r = chain.execute(EXP +
                          'SELECT ?x WHERE { ?x ex:next/ex:name "C" }')
        assert r.rows == [(e("b"),)]

    def test_three_step_sequence_from_value_side(self, chain):
        r = chain.execute(
            EXP + 'SELECT ?x WHERE { ?x ex:next/ex:next/ex:name "D" }'
        )
        assert r.rows == [(e("b"),)]

    def test_plus_set_semantics_on_diamond(self, ssdm):
        # two routes reach ex:d; path results are sets, so it appears once
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:n ex:b . ex:a ex:n ex:c .
            ex:b ex:n ex:d . ex:c ex:n ex:d .
        """)
        r = ssdm.execute(EXP + "SELECT ?y WHERE { ex:a ex:n+ ?y } "
                         "ORDER BY ?y")
        assert r.column("y") == [e("b"), e("c"), e("d")]
