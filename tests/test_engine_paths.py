"""Property-path evaluation (section 3.4)."""

import pytest

from repro import SSDM, URI

EXP = "PREFIX ex: <http://e/>\n"


def e(name):
    return URI("http://e/" + name)


@pytest.fixture
def chain(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:a ex:next ex:b . ex:b ex:next ex:c . ex:c ex:next ex:d .
        ex:a ex:alt ex:x .
        ex:a ex:name "A" . ex:b ex:name "B" .
        ex:c ex:name "C" . ex:d ex:name "D" . ex:x ex:name "X" .
    """)
    return ssdm


class TestSequence:
    def test_two_steps(self, chain):
        r = chain.execute(EXP + "SELECT ?y WHERE { ex:a ex:next/ex:next ?y }")
        assert r.rows == [(e("c"),)]

    def test_sequence_with_name(self, chain):
        r = chain.execute(EXP +
                          "SELECT ?n WHERE { ex:a ex:next/ex:name ?n }")
        assert r.rows == [("B",)]

    def test_three_step_sequence(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:a ex:next/ex:next/ex:next ?y }"
        )
        assert r.rows == [(e("d"),)]

    def test_bound_object_direction(self, chain):
        r = chain.execute(EXP +
                          "SELECT ?x WHERE { ?x ex:next/ex:next ex:d }")
        assert r.rows == [(e("b"),)]


class TestInverse:
    def test_inverse_link(self, chain):
        r = chain.execute(EXP + "SELECT ?x WHERE { ex:b ^ex:next ?x }")
        assert r.rows == [(e("a"),)]

    def test_inverse_in_sequence(self, chain):
        r = chain.execute(EXP +
                          "SELECT ?n WHERE { ex:c ^ex:next/ex:name ?n }")
        assert r.rows == [("B",)]


class TestAlternative:
    def test_alternative(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:a ex:next|ex:alt ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("b"), e("x")]

    def test_alternative_deduplicates(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:a ex:next|ex:next ?y }"
        )
        assert len(r.rows) == 1


class TestClosures:
    def test_plus_from_subject(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:b ex:next+ ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("c"), e("d")]

    def test_star_includes_start(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:b ex:next* ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("b"), e("c"), e("d")]

    def test_question_mark(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:b ex:next? ?y } ORDER BY ?y"
        )
        assert r.column("y") == [e("b"), e("c")]

    def test_plus_reverse_direction(self, chain):
        r = chain.execute(
            EXP + "SELECT ?x WHERE { ?x ex:next+ ex:d } ORDER BY ?x"
        )
        assert r.column("x") == [e("a"), e("b"), e("c")]

    def test_star_both_unbound(self, chain):
        r = chain.execute(EXP + "SELECT ?x ?y WHERE { ?x ex:next* ?y }")
        # every node reflexively plus all forward closures
        pairs = set(r.rows)
        assert (e("a"), e("a")) in pairs
        assert (e("a"), e("d")) in pairs
        assert (e("d"), e("a")) not in pairs

    def test_cycle_terminates(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:p ex:n ex:q . ex:q ex:n ex:p .
        """)
        r = ssdm.execute(EXP + "SELECT ?y WHERE { ex:p ex:n+ ?y } "
                         "ORDER BY ?y")
        assert r.column("y") == [e("p"), e("q")]

    def test_grouped_closure(self, chain):
        r = chain.execute(
            EXP + "SELECT ?y WHERE { ex:c (ex:next|^ex:next)+ ?y } "
            "ORDER BY ?y"
        )
        # the chain is connected: everything except ex:x is reachable
        assert e("a") in r.column("y")
        assert e("d") in r.column("y")
        assert e("x") not in r.column("y")


class TestNegatedSets:
    def test_negated_forward(self, chain):
        r = chain.execute(EXP + "SELECT ?y WHERE { ex:a !ex:next ?y } "
                          "ORDER BY ?y")
        values = r.column("y")
        assert e("x") in values           # via ex:alt
        assert e("b") not in values

    def test_negated_multiple(self, chain):
        r = chain.execute(
            EXP + 'SELECT ?y WHERE { ex:a !(ex:next|ex:alt) ?y }'
        )
        assert r.column("y") == ["A"]     # only ex:name remains
