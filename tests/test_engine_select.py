"""SELECT evaluation: joins, OPTIONAL, UNION, MINUS, VALUES, BIND,
sub-selects, named graphs, and solution modifiers."""

import pytest

from repro import SSDM, URI, Literal

FOAF = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
EXP = "PREFIX ex: <http://example.org/>\n"


class TestBasicMatching:
    def test_single_pattern(self, foaf):
        r = foaf.execute(FOAF + 'SELECT ?p WHERE { ?p foaf:name "Alice" }')
        assert len(r.rows) == 1

    def test_join_through_shared_variable(self, foaf):
        r = foaf.execute(FOAF + """
            SELECT ?fname WHERE {
                ?p foaf:name "Alice" ; foaf:knows ?f .
                ?f foaf:name ?fname } ORDER BY ?fname""")
        assert r.column("fname") == ["Bob", "Daniel"]

    def test_no_match_empty(self, foaf):
        r = foaf.execute(FOAF + 'SELECT ?p WHERE { ?p foaf:name "Zed" }')
        assert r.rows == []

    def test_ground_triple_acts_as_existence(self, foaf):
        r = foaf.execute(FOAF + EXP + """
            SELECT ?n WHERE { ?x foaf:name "Bob" . ?x ex:age 25 .
                              ?x foaf:name ?n }""")
        assert r.rows == [("Bob",)]

    def test_same_variable_twice_in_pattern(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://example.org/> .
            ex:a ex:link ex:a . ex:b ex:link ex:c .
        """)
        r = ssdm.execute(EXP + "SELECT ?x WHERE { ?x ex:link ?x }")
        assert r.rows == [(URI("http://example.org/a"),)]

    def test_predicate_variable(self, foaf):
        r = foaf.execute(FOAF + """
            SELECT DISTINCT ?prop WHERE {
                ?x foaf:name "Bob" . ?x ?prop ?v }""")
        assert len(r.rows) >= 3

    def test_select_star(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://example.org/> . ex:a ex:p 1 ."
        )
        r = ssdm.execute("SELECT * WHERE { ?s ?p ?o }")
        assert set(r.columns) == {"s", "p", "o"}

    def test_literal_value_matching(self, foaf):
        r = foaf.execute(EXP + FOAF + """
            SELECT ?n WHERE { ?p ex:age 30 ; foaf:name ?n } ORDER BY ?n""")
        assert r.column("n") == ["Alice", "Cindy"]


class TestOptional:
    def test_keeps_unmatched_left(self, foaf):
        r = foaf.execute(FOAF + """
            SELECT ?name ?mbox WHERE {
                ?p foaf:name ?name OPTIONAL { ?p foaf:mbox ?mbox } }
            ORDER BY ?name""")
        rows = dict(r.rows)
        assert rows["Bob"] == "bob@example.org"
        assert rows["Alice"] is None

    def test_optional_filter_is_join_condition(self, ssdm):
        # the section 5.4.2 case: the OPTIONAL's filter references a
        # variable bound only outside the optional part
        ssdm.load_turtle_text("""
            @prefix ex: <http://example.org/> .
            ex:a ex:v 5 . ex:a ex:w 3 .
            ex:b ex:v 1 . ex:b ex:w 9 .
        """)
        r = ssdm.execute(EXP + """
            SELECT ?s ?w WHERE {
                ?s ex:v ?v OPTIONAL { ?s ex:w ?w FILTER(?w < ?v) } }
            ORDER BY ?s""")
        rows = dict(r.rows)
        assert rows[URI("http://example.org/a")] == 3
        assert rows[URI("http://example.org/b")] is None

    def test_nested_optional(self, foaf):
        r = foaf.execute(FOAF + EXP + """
            SELECT ?name ?m ?e WHERE { ?p foaf:name ?name
                OPTIONAL { ?p foaf:mbox ?m }
                OPTIONAL { ?p ex:email ?e } } ORDER BY ?name""")
        rows = {row[0]: row[1:] for row in r.rows}
        assert rows["Daniel"] == (None, "dan@example.org")

    def test_optional_inside_optional(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p ex:b . ex:b ex:q ex:c .
        """)
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?c WHERE { ex:a ex:p ?b
                OPTIONAL { ?b ex:q ?c OPTIONAL { ?c ex:r ?d } } }""")
        assert r.rows == [(URI("http://e/c"),)]


class TestUnion:
    def test_union_combines(self, foaf):
        r = foaf.execute(FOAF + EXP + """
            SELECT ?contact WHERE {
                { ?p foaf:mbox ?contact } UNION { ?p ex:email ?contact } }
            ORDER BY ?contact""")
        assert r.column("contact") == ["bob@example.org", "dan@example.org"]

    def test_union_branches_may_bind_different_vars(self, foaf):
        r = foaf.execute(FOAF + EXP + """
            SELECT ?m ?e WHERE {
                { ?p foaf:mbox ?m } UNION { ?p ex:email ?e } }""")
        assert len(r.rows) == 2
        assert any(m is None for m, e in r.rows)
        assert any(e is None for m, e in r.rows)

    def test_union_preserves_duplicates(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 1 ."
        )
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?s WHERE { { ?s ex:p 1 } UNION { ?s ex:p 1 } }""")
        assert len(r.rows) == 2


class TestMinus:
    def test_removes_compatible(self, foaf):
        r = foaf.execute(FOAF + """
            SELECT ?name WHERE { ?p foaf:name ?name
                MINUS { ?p foaf:mbox ?m } } ORDER BY ?name""")
        assert "Bob" not in r.column("name")
        assert "Alice" in r.column("name")

    def test_disjoint_minus_keeps_all(self, foaf):
        # MINUS with no shared variables removes nothing
        r = foaf.execute(FOAF + """
            SELECT ?name WHERE { ?p foaf:name ?name
                MINUS { ?x foaf:mbox ?m } }""")
        assert len(r.rows) == 4


class TestValuesAndBind:
    def test_values_restricts(self, foaf):
        r = foaf.execute(FOAF + """
            SELECT ?name WHERE { VALUES ?name { "Alice" "Bob" }
                ?p foaf:name ?name } ORDER BY ?name""")
        assert r.column("name") == ["Alice", "Bob"]

    def test_values_undef_joins_freely(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 1 . ex:b ex:p 2 ."
        )
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?s ?t WHERE { ?s ex:p ?v .
                VALUES (?v ?t) { (1 10) (UNDEF 20) } } ORDER BY ?t""")
        # UNDEF row matches both subjects
        assert len(r.rows) == 3

    def test_bind_computes(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 5 ."
        )
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?double WHERE { ?s ex:p ?v BIND(?v * 2 AS ?double) }""")
        assert r.rows == [(10,)]

    def test_bind_error_leaves_unbound(self, ssdm):
        ssdm.load_turtle_text(
            '@prefix ex: <http://e/> . ex:a ex:p "text" .'
        )
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?d WHERE { ?s ex:p ?v BIND(?v * 2 AS ?d) }""")
        assert r.rows == [(None,)]

    def test_bound_bind_variable_usable_in_pattern(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 5 . ex:b ex:q 10 ."
        )
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?t WHERE { ?s ex:p ?v BIND(?v * 2 AS ?w)
                              ?t ex:q ?w }""")
        assert r.rows == [(URI("http://e/b"),)]


class TestSubSelect:
    def test_aggregate_subquery(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:v 1 . ex:b ex:v 5 . ex:c ex:v 3 .
        """)
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?s WHERE { ?s ex:v ?v .
                { SELECT (MAX(?w) AS ?v) WHERE { ?x ex:v ?w } } }""")
        assert r.rows == [(URI("http://e/b"),)]

    def test_subquery_with_limit(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:v 1 . ex:b ex:v 5 . ex:c ex:v 3 .
        """)
        r = ssdm.execute("""PREFIX ex: <http://e/>
            SELECT ?v WHERE {
                { SELECT ?v WHERE { ?s ex:v ?v } ORDER BY DESC(?v)
                  LIMIT 2 } } ORDER BY ?v""")
        assert r.column("v") == [3, 5]


class TestNamedGraphs:
    @pytest.fixture
    def multi(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 1 ."
        )
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 2 .",
            graph=URI("http://g/one"),
        )
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 3 .",
            graph=URI("http://g/two"),
        )
        return ssdm

    def test_default_graph_only(self, multi):
        r = multi.execute("SELECT ?v WHERE { ?s ?p ?v }")
        assert r.column("v") == [1]

    def test_graph_by_name(self, multi):
        r = multi.execute(
            "SELECT ?v WHERE { GRAPH <http://g/one> { ?s ?p ?v } }"
        )
        assert r.column("v") == [2]

    def test_graph_variable_iterates(self, multi):
        r = multi.execute(
            "SELECT ?g ?v WHERE { GRAPH ?g { ?s ?p ?v } } ORDER BY ?v"
        )
        assert r.column("v") == [2, 3]
        assert r.column("g") == [URI("http://g/one"), URI("http://g/two")]

    def test_unknown_graph_empty(self, multi):
        r = multi.execute(
            "SELECT ?v WHERE { GRAPH <http://g/none> { ?s ?p ?v } }"
        )
        assert r.rows == []


class TestModifiers:
    @pytest.fixture
    def numbers(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:v 3 . ex:b ex:v 1 . ex:c ex:v 2 . ex:d ex:v 2 .
        """)
        return ssdm

    def test_order_asc(self, numbers):
        r = numbers.execute(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ?s ex:v ?v } "
            "ORDER BY ?v"
        )
        assert r.column("v") == [1, 2, 2, 3]

    def test_order_desc(self, numbers):
        r = numbers.execute(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ?s ex:v ?v } "
            "ORDER BY DESC(?v)"
        )
        assert r.column("v") == [3, 2, 2, 1]

    def test_order_by_expression(self, numbers):
        r = numbers.execute(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ?s ex:v ?v } "
            "ORDER BY (0 - ?v)"
        )
        assert r.column("v") == [3, 2, 2, 1]

    def test_secondary_sort_key(self, numbers):
        r = numbers.execute(
            "PREFIX ex: <http://e/> SELECT ?s ?v WHERE { ?s ex:v ?v } "
            "ORDER BY ?v DESC(?s)"
        )
        twos = [s for s, v in r.rows if v == 2]
        assert twos == [URI("http://e/d"), URI("http://e/c")]

    def test_distinct(self, numbers):
        r = numbers.execute(
            "PREFIX ex: <http://e/> SELECT DISTINCT ?v "
            "WHERE { ?s ex:v ?v } ORDER BY ?v"
        )
        assert r.column("v") == [1, 2, 3]

    def test_limit_offset(self, numbers):
        r = numbers.execute(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ?s ex:v ?v } "
            "ORDER BY ?v LIMIT 2 OFFSET 1"
        )
        assert r.column("v") == [2, 2]

    def test_limit_zero(self, numbers):
        r = numbers.execute(
            "PREFIX ex: <http://e/> SELECT ?v WHERE { ?s ex:v ?v } LIMIT 0"
        )
        assert r.rows == []


class TestAsk:
    def test_true(self, foaf):
        assert foaf.execute(FOAF + 'ASK { ?p foaf:name "Alice" }') is True

    def test_false(self, foaf):
        assert foaf.execute(FOAF + 'ASK { ?p foaf:name "Zed" }') is False


class TestInitialBindings:
    def test_prebound_variable(self, foaf):
        r = foaf.select(
            FOAF + "SELECT ?n WHERE { ?p foaf:name ?n }",
            bindings={"n": "Bob"},
        )
        assert r.rows == [("Bob",)]
