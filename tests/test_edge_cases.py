"""Cross-cutting edge cases: unusual but legal inputs through the whole
pipeline."""

import pytest

from repro import (
    SSDM, ArrayProxy, Literal, NumericArray, ParseError, URI,
)
from repro.storage import SqlTripleGraph

EXP = "PREFIX ex: <http://e/>\n"


class TestLexicalEdgeCases:
    def test_negative_exponent_double(self, ssdm):
        ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:v 1e-3 .")
        r = ssdm.execute(EXP + "SELECT ?v WHERE { ?s ex:v ?v }")
        assert r.rows == [(0.001,)]

    def test_signed_number_in_filter(self, ssdm):
        ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:v -5 .")
        r = ssdm.execute(EXP + "SELECT ?s WHERE { ?s ex:v ?v "
                         "FILTER(?v = -5) }")
        assert len(r.rows) == 1

    def test_long_string_literal(self, ssdm):
        ssdm.load_turtle_text(
            '@prefix ex: <http://e/> . ex:a ex:t """line one\n'
            'line two""" .'
        )
        r = ssdm.execute(EXP + "SELECT ?t WHERE { ?s ex:t ?t }")
        assert "\n" in r.rows[0][0]

    def test_unicode_in_literals(self, ssdm):
        ssdm.load_turtle_text(
            '@prefix ex: <http://e/> . ex:a ex:t "héllo ∆" .'
        )
        assert ssdm.execute(
            EXP + 'ASK { ?s ex:t "héllo ∆" }'
        ) is True

    def test_empty_group_pattern(self, ssdm):
        r = ssdm.execute("SELECT (1 + 1 AS ?two) WHERE { }")
        assert r.rows == [(2,)]

    def test_keyword_case_insensitive(self, foaf):
        r = foaf.execute(
            "prefix foaf: <http://xmlns.com/foaf/0.1/> "
            'select ?p where { ?p foaf:name "Alice" } limit 1'
        )
        assert len(r.rows) == 1

    def test_parse_error_reports_line(self):
        ssdm = SSDM()
        try:
            ssdm.execute("SELECT ?x\nWHERE { ?x ?p }")
        except ParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected ParseError")


class TestResultEdgeCases:
    def test_reduced_deduplicates(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p 1 . ex:b ex:p 1 .
        """)
        r = ssdm.execute(EXP +
                         "SELECT REDUCED ?v WHERE { ?s ex:p ?v }")
        assert r.rows == [(1,)]

    def test_distinct_over_arrays(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:val (1 2) . ex:b ex:val (1 2) . ex:c ex:val (3 4) .
        """)
        r = ssdm.execute(EXP +
                         "SELECT DISTINCT ?v WHERE { ?s ex:val ?v }")
        assert len(r.rows) == 2

    def test_order_by_unbound_first(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p 1 . ex:b ex:p 2 . ex:b ex:q 9 .
        """)
        r = ssdm.execute(EXP + """
            SELECT ?s ?w WHERE { ?s ex:p ?v
                OPTIONAL { ?s ex:q ?w } } ORDER BY ?w""")
        assert r.rows[0][1] is None       # unbound sorts first

    def test_order_across_term_kinds(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:p ex:z . ex:a ex:p 5 . ex:a ex:p "txt" .
        """)
        r = ssdm.execute(EXP + "SELECT ?v WHERE { ?s ex:p ?v } "
                         "ORDER BY ?v")
        # URIs < numeric literals < string literals
        assert isinstance(r.rows[0][0], URI)
        assert r.rows[1][0] == 5
        assert r.rows[2][0] == "txt"

    def test_projection_of_never_bound_variable(self, foaf):
        r = foaf.execute("""PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?ghost ?n WHERE { ?p foaf:name ?n } LIMIT 1""")
        assert r.rows[0][0] is None


class TestArrayEdgeCases:
    def test_proxy_equals_resident_in_filter(self, external_ssdm):
        external_ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:val (1 2 3 4 5 6 7 8 9 10) .
        """)
        r = external_ssdm.execute(EXP + """
            SELECT ?s WHERE { ?s ex:val ?a
                FILTER(?a = (1 2 3 4 5 6 7 8 9 10)) }""")
        assert len(r.rows) == 1

    def test_two_proxies_compared(self, external_ssdm):
        external_ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:val (1 2 3 4 5 6 7 8 9 10) .
            ex:b ex:val (1 2 3 4 5 6 7 8 9 10) .
            ex:c ex:val (9 9 9 9 9 9 9 9 9 9) .
        """)
        r = external_ssdm.execute(EXP + """
            SELECT ?x ?y WHERE { ?x ex:val ?a . ?y ex:val ?b
                FILTER(?a = ?b && STR(?x) < STR(?y)) }""")
        assert r.rows == [(URI("http://e/a"), URI("http://e/b"))]

    def test_empty_range_gives_empty_array(self, arrays):
        r = arrays.execute("""PREFIX ex: <http://example.org/>
            SELECT (array_count(?a[2:1]) AS ?n)
            WHERE { ex:v1 ex:val ?a }""")
        assert r.rows == [(0,)]

    def test_single_element_range_is_array(self, arrays):
        r = arrays.execute("""PREFIX ex: <http://example.org/>
            SELECT (ISARRAY(?a[2:2]) AS ?isarr) ?a[2:2]
            WHERE { ex:v1 ex:val ?a }""")
        assert r.rows[0][0] is True

    def test_scalar_arith_on_subscript_chain(self, arrays):
        r = arrays.execute("""PREFIX ex: <http://example.org/>
            SELECT (?a[2][2] * 10 AS ?v) WHERE { ex:m2 ex:val ?a }""")
        assert r.rows == [(500,)]

    def test_delete_data_with_array(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { ex:s ex:val ((1 2)(3 4)) }")
        n = ssdm.execute(EXP + "DELETE DATA { ex:s ex:val ((1 2)(3 4)) }")
        assert n == 1
        assert len(ssdm.graph) == 0

    def test_transpose_of_transpose(self, arrays):
        r = arrays.execute("""PREFIX ex: <http://example.org/>
            SELECT ?ok WHERE { ex:m2 ex:val ?a
                BIND(transpose(transpose(?a)) = ?a AS ?ok) }""")
        assert r.rows == [(True,)]


class TestGraphStoreInterplay:
    def test_paths_over_sql_triple_graph(self):
        ssdm = SSDM.with_triple_store(SqlTripleGraph())
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:n ex:b . ex:b ex:n ex:c .
        """)
        r = ssdm.execute(EXP + "SELECT ?y WHERE { ex:a ex:n+ ?y } "
                         "ORDER BY ?y")
        assert r.column("y") == [URI("http://e/b"), URI("http://e/c")]

    def test_construct_from_sql_graph(self):
        ssdm = SSDM.with_triple_store(SqlTripleGraph())
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 1 ."
        )
        g = ssdm.execute(EXP +
                         "CONSTRUCT { ?s ex:q ?v } WHERE { ?s ex:p ?v }")
        assert len(g) == 1

    def test_named_graphs_beside_sql_default(self):
        ssdm = SSDM.with_triple_store(SqlTripleGraph())
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:p 1 .",
            graph=URI("http://g/x"),
        )
        r = ssdm.execute(
            "SELECT ?v WHERE { GRAPH <http://g/x> { ?s ?p ?v } }"
        )
        assert r.rows == [(1,)]


class TestUdfEdgeCases:
    def test_view_calling_view(self, ssdm):
        ssdm.load_turtle_text("@prefix ex: <http://e/> . ex:a ex:v 5 .")
        ssdm.execute(EXP + """
            DEFINE FUNCTION ex:raw(?s) AS
            SELECT ?v WHERE { ?s ex:v ?v }""")
        ssdm.execute(EXP +
                     "DEFINE FUNCTION ex:scaled(?s) AS ex:raw(?s) * 100")
        r = ssdm.execute(EXP +
                         "SELECT (ex:scaled(ex:a) AS ?x) WHERE { }")
        assert r.rows == [(500,)]

    def test_recursive_function_errors_cleanly(self, ssdm):
        ssdm.execute(EXP + "DEFINE FUNCTION ex:loop(?x) AS ex:loop(?x)")
        r = ssdm.execute(EXP + "SELECT (ex:loop(1) AS ?x) WHERE { }")
        # infinite recursion surfaces as an evaluation error -> unbound
        assert r.rows == [(None,)]

    def test_nested_closures_capture(self, ssdm):
        ssdm.load_turtle_text(
            "@prefix ex: <http://e/> . ex:a ex:val (1 2 3) ."
        )
        r = ssdm.execute(EXP + """
            SELECT (array_sum(array_map(
                FN(?x) ?x + array_sum(array_map(FN(?y) ?y * ?x, ?a)),
                ?a)) AS ?v)
            WHERE { ex:a ex:val ?a }""")
        # inner map: y*x over [1,2,3] = 6x; outer: x + 6x = 7x; sum = 42
        assert r.rows == [(42.0,)]
