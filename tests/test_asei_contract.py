"""The ASEI base-class contract: a minimal back-end implementing only
single-chunk IO still gets batched/ranged retrieval and APR for free."""

import numpy as np
import pytest

from repro.arrays import NumericArray
from repro.exceptions import StorageError
from repro.storage import APRResolver, Strategy
from repro.storage.asei import ArrayStore


class MinimalStore(ArrayStore):
    """Implements only _write_chunk/_read_chunk (no batch, no ranges)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._chunks = {}

    def _write_chunk(self, array_id, chunk_id, data):
        self._chunks[(array_id, chunk_id)] = np.array(data)

    def _read_chunk(self, array_id, chunk_id):
        try:
            return self._chunks[(array_id, chunk_id)]
        except KeyError:
            raise StorageError("missing chunk %r" % (chunk_id,))


@pytest.fixture
def store():
    return MinimalStore(chunk_bytes=64)


@pytest.fixture
def proxy(store):
    data = np.arange(200, dtype=np.float64).reshape(10, 20)
    return store.put(NumericArray(data))


class TestDefaultImplementations:
    def test_batch_degrades_to_singles(self, store, proxy):
        store.stats.reset()
        chunks = store.get_chunks(proxy.array_id, [0, 1, 2])
        assert len(chunks) == 3
        # no batch support: one request per chunk
        assert store.stats.requests == 3

    def test_ranges_degrade_to_batch(self, store, proxy):
        store.stats.reset()
        chunks = store.get_chunk_ranges(proxy.array_id, [(0, 4, 2)])
        assert set(chunks) == {0, 2, 4}
        assert store.stats.requests == 3

    def test_aggregate_unsupported(self, store, proxy):
        with pytest.raises(StorageError):
            store.aggregate(proxy.array_id, "sum")

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_every_strategy_still_correct(self, store, proxy, strategy):
        resolver = APRResolver(store, strategy=strategy, buffer_size=3)
        out = resolver.resolve([proxy.subscript([None, 5])])[0]
        expected = np.arange(200).reshape(10, 20)[:, 5]
        assert out.to_nested_lists() == expected.tolist()

    def test_aapr_streams_without_delegation(self, store, proxy):
        resolver = APRResolver(store, buffer_size=4)
        total = resolver.resolve_aggregate(proxy, "sum")
        assert total == float(np.arange(200).sum())

    def test_default_resolver_cached_on_store(self, store, proxy):
        first = proxy.resolve()
        assert store._default_resolver is not None
        again = proxy.resolve()
        assert first == again

    def test_resolve_with_explicit_strategy(self, store, proxy):
        out = store.resolve([proxy], strategy=Strategy.BUFFER,
                            buffer_size=2)
        assert out[0].shape == (10, 20)

    def test_not_implemented_write_guard(self):
        bare = ArrayStore()
        with pytest.raises(NotImplementedError):
            bare.put(NumericArray([1.0, 2.0]))
