"""RDB-to-RDF direct mapping (section 2.3.1)."""

import sqlite3

import pytest

from repro import SSDM, Literal, URI
from repro.loaders.rdbview import RelationalView, load_relational
from repro.rdf.namespace import RDF

BASE = "http://db.example.org/"


@pytest.fixture
def database():
    connection = sqlite3.connect(":memory:")
    connection.executescript("""
        CREATE TABLE department (
            id INTEGER PRIMARY KEY,
            name TEXT NOT NULL
        );
        CREATE TABLE employee (
            id INTEGER PRIMARY KEY,
            name TEXT NOT NULL,
            salary REAL,
            dept INTEGER REFERENCES department(id)
        );
        INSERT INTO department VALUES (1, 'research'), (2, 'sales');
        INSERT INTO employee VALUES
            (10, 'ann', 5000.0, 1),
            (11, 'bob', 4000.0, 1),
            (12, 'cid', NULL, 2);
    """)
    connection.commit()
    return connection


class TestDirectMapping:
    def test_tables_discovered(self, database):
        view = RelationalView(database, BASE)
        assert set(view.tables()) == {"department", "employee"}

    def test_row_subjects_from_primary_key(self, database):
        view = RelationalView(database, BASE)
        triples = list(view.triples(["department"]))
        subjects = {t[0] for t in triples}
        assert URI(BASE + "department/1") in subjects

    def test_class_triples(self, database):
        view = RelationalView(database, BASE)
        triples = list(view.triples(["department"]))
        classes = [t for t in triples if t[1] == RDF.type]
        assert len(classes) == 2
        assert all(t[2] == URI(BASE + "department") for t in classes)

    def test_column_properties(self, database):
        view = RelationalView(database, BASE)
        triples = list(view.triples(["employee"]))
        names = [
            t for t in triples
            if t[1] == URI(BASE + "employee#name")
        ]
        assert {t[2] for t in names} == {
            Literal("ann"), Literal("bob"), Literal("cid")
        }

    def test_null_produces_no_triple(self, database):
        view = RelationalView(database, BASE)
        triples = list(view.triples(["employee"]))
        salaries = [
            t for t in triples
            if t[1] == URI(BASE + "employee#salary")
        ]
        assert len(salaries) == 2

    def test_foreign_key_object_property(self, database):
        view = RelationalView(database, BASE)
        triples = list(view.triples(["employee"]))
        refs = [
            t for t in triples
            if t[1] == URI(BASE + "employee#ref-dept")
        ]
        assert (len(refs)) == 3
        assert URI(BASE + "department/1") in {t[2] for t in refs}


class TestQueryingTheView:
    @pytest.fixture
    def ssdm(self, database):
        instance = SSDM()
        count = load_relational(instance, database, BASE)
        assert count > 0
        instance.prefix("emp", BASE + "employee#")
        instance.prefix("dept", BASE + "department#")
        return instance

    def test_join_across_tables(self, ssdm):
        r = ssdm.execute("""
            SELECT ?ename ?dname WHERE {
                ?e emp:name ?ename ; emp:ref-dept ?d .
                ?d dept:name ?dname }
            ORDER BY ?ename""")
        assert ("ann", "research") in r.rows
        assert ("cid", "sales") in r.rows

    def test_aggregate_over_view(self, ssdm):
        r = ssdm.execute("""
            SELECT ?dname (AVG(?salary) AS ?mean) WHERE {
                ?e emp:salary ?salary ; emp:ref-dept ?d .
                ?d dept:name ?dname }
            GROUP BY ?dname""")
        assert r.rows == [("research", 4500.0)]

    def test_filter_on_numeric_column(self, ssdm):
        r = ssdm.execute("""
            SELECT ?name WHERE { ?e emp:name ?name ; emp:salary ?s
                FILTER(?s > 4500) }""")
        assert r.rows == [("ann",)]

    def test_mediated_and_native_data_combine(self, ssdm):
        # annotate a mediated row with native RDF + array data
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            <%semployee/10> ex:scores (90 85 97) .
        """ % BASE)
        r = ssdm.execute("""
            PREFIX ex: <http://e/>
            SELECT ?name (array_max(?sc) AS ?best) WHERE {
                ?e emp:name ?name ; ex:scores ?sc }""")
        assert r.rows == [("ann", 97.0)]
