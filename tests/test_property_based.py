"""Property-based tests (hypothesis) on core invariants:

- array descriptor algebra vs. numpy ground truth;
- SPD emissions exactly cover their input stream;
- chunked store round-trips arbitrary arrays under every strategy;
- graph add/remove is a faithful set;
- literal lexical round-trips;
- bindings compatibility laws.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import NumericArray, Span
from repro.arrays.chunks import chunks_of_runs, linear_indices_of_runs
from repro.engine.bindings import Bindings
from repro.rdf import Graph, Literal, URI, XSD
from repro.storage import APRResolver, MemoryArrayStore, Strategy
from repro.storage.spd import detect_patterns


# -- strategies -------------------------------------------------------------

shapes = st.lists(st.integers(1, 8), min_size=1, max_size=3).map(tuple)


@st.composite
def array_and_subscripts(draw):
    shape = draw(shapes)
    array = np.arange(int(np.prod(shape)), dtype=np.float64).reshape(shape)
    subscripts = []
    np_index = []
    for extent in shape:
        kind = draw(st.sampled_from(["int", "span", "whole"]))
        if kind == "int":
            index = draw(st.integers(0, extent - 1))
            subscripts.append(index)
            np_index.append(index)
        elif kind == "whole":
            subscripts.append(None)
            np_index.append(slice(None))
        else:
            start = draw(st.integers(0, extent - 1))
            stop = draw(st.integers(start + 1, extent))
            step = draw(st.integers(1, 3))
            subscripts.append(Span(start, stop, step))
            np_index.append(slice(start, stop, step))
    return array, subscripts, tuple(np_index)


class TestDescriptorAlgebra:
    @given(array_and_subscripts())
    @settings(max_examples=200, deadline=None)
    def test_subscript_matches_numpy(self, case):
        array, subscripts, np_index = case
        nma = NumericArray(array)
        result = nma.subscript(subscripts)
        expected = array[np_index]
        if isinstance(result, NumericArray):
            assert np.array_equal(result.to_numpy(), expected)
        else:
            assert result == expected

    @given(shapes, st.randoms())
    @settings(max_examples=100, deadline=None)
    def test_transpose_involution(self, shape, rng):
        array = np.arange(int(np.prod(shape)),
                          dtype=np.float64).reshape(shape)
        nma = NumericArray(array)
        perm = list(range(len(shape)))
        rng.shuffle(perm)
        twice = nma.transpose(tuple(perm)).transpose(
            tuple(np.argsort(perm))
        )
        assert np.array_equal(twice.to_numpy(), array)

    @given(array_and_subscripts())
    @settings(max_examples=100, deadline=None)
    def test_runs_enumerate_view_in_order(self, case):
        array, subscripts, np_index = case
        nma = NumericArray(array)
        view = nma.subscript(subscripts)
        if not isinstance(view, NumericArray):
            return
        indices = linear_indices_of_runs(list(view.iter_runs()))
        flat_from_runs = nma.buffer[indices]
        assert np.array_equal(
            flat_from_runs, view.to_numpy().reshape(-1)
        )


class TestSPDProperties:
    @given(st.lists(st.integers(0, 200), min_size=0, max_size=60),
           st.integers(2, 5))
    @settings(max_examples=200, deadline=None)
    def test_emissions_cover_input_exactly(self, stream, min_run):
        emitted = []
        for emission in detect_patterns(stream, min_run=min_run):
            if emission[0] == "range":
                _, first, last, step = emission
                assert step > 0
                assert (last - first) % step == 0
                run = list(range(first, last + 1, step))
                assert len(run) >= min_run
                emitted.extend(run)
            else:
                emitted.append(emission[1])
        assert emitted == stream

    @given(st.integers(0, 50), st.integers(1, 9), st.integers(3, 30))
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_stream_single_range(self, start, step, count):
        stream = [start + i * step for i in range(count)]
        out = detect_patterns(stream)
        assert out == [("range", stream[0], stream[-1], step)]


class TestStorageRoundTrip:
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      width=32),
            min_size=1, max_size=400,
        ),
        st.integers(1, 40),
        st.sampled_from(list(Strategy)),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_chunking(self, values, epc, strategy):
        store = MemoryArrayStore(chunk_bytes=epc * 8)
        array = NumericArray(np.array(values, dtype=np.float64))
        proxy = store.put(array)
        out = APRResolver(store, strategy=strategy, buffer_size=7) \
            .resolve([proxy])[0]
        assert out == array

    @given(st.integers(2, 20), st.integers(2, 20), st.integers(1, 33))
    @settings(max_examples=60, deadline=None)
    def test_column_roundtrip(self, rows, cols, epc):
        store = MemoryArrayStore(chunk_bytes=epc * 8)
        data = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
        proxy = store.put(NumericArray(data))
        column = proxy.subscript([None, cols - 1]).resolve()
        assert column.to_nested_lists() == data[:, cols - 1].tolist()

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_delegated_sum_matches(self, values):
        store = MemoryArrayStore(chunk_bytes=32)
        proxy = store.put(NumericArray(
            np.array(values, dtype=np.float64)
        ))
        resolver = APRResolver(store)
        assert resolver.resolve_aggregate(proxy, "sum") == \
            pytest.approx(float(sum(values)))


class TestChunkCoverage:
    @given(array_and_subscripts(), st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_chunks_cover_all_indices(self, case, epc):
        array, subscripts, _ = case
        nma = NumericArray(array)
        view = nma.subscript(subscripts)
        if not isinstance(view, NumericArray):
            return
        runs = list(view.iter_runs())
        chunk_ids = set(chunks_of_runs(runs, epc))
        for index in linear_indices_of_runs(runs):
            assert index // epc in chunk_ids


class TestGraphSetSemantics:
    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 3), st.integers(0, 5)),
        max_size=40,
    ))
    @settings(max_examples=100, deadline=None)
    def test_graph_matches_python_set(self, operations):
        graph = Graph()
        model = set()
        for s, p, v in operations:
            triple = (URI("s%d" % s), URI("p%d" % p), Literal(v))
            if triple in model:
                graph.remove(*triple)
                model.discard(triple)
            else:
                graph.add(*triple)
                model.add(triple)
        assert len(graph) == len(model)
        assert set(
            (t.subject, t.property, t.value) for t in graph.triples()
        ) == model


class TestLiteralRoundTrip:
    @given(st.integers(-10**12, 10**12))
    def test_integer_lexical(self, value):
        lit = Literal(value)
        back = Literal.from_lexical(lit.lexical_form(), XSD.integer)
        assert back.value == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_lexical(self, value):
        lit = Literal(value)
        back = Literal.from_lexical(lit.lexical_form(), XSD.double)
        assert back.value == pytest.approx(value)

    @given(st.booleans())
    def test_boolean_lexical(self, value):
        lit = Literal(value)
        back = Literal.from_lexical(lit.lexical_form(), XSD.boolean)
        assert back.value is value


class TestBindingsLaws:
    kv = st.dictionaries(
        st.sampled_from("abcde"), st.integers(0, 3), max_size=4
    )

    @given(kv, kv)
    def test_compatibility_symmetric(self, d1, d2):
        b1 = Bindings(d1)
        b2 = Bindings(d2)
        assert b1.compatible(b2) == b2.compatible(b1)

    @given(kv)
    def test_self_compatible(self, d):
        b = Bindings(d)
        assert b.compatible(b)

    @given(kv, kv)
    def test_merge_of_compatible_contains_both(self, d1, d2):
        b1 = Bindings(d1)
        b2 = Bindings(d2)
        if b1.compatible(b2):
            merged = b1.merge(b2)
            for name in d1:
                if name not in d2:
                    assert merged.get(name) == d1[name]
            for name, value in d2.items():
                assert merged.get(name) == value

    @given(kv, st.sampled_from("abcde"), st.integers(0, 3))
    def test_extended_is_persistent(self, d, name, value):
        base = Bindings(d)
        extended = base.extended(name, value)
        assert extended.get(name) == value
        if name not in d:
            assert base.get(name) is None
