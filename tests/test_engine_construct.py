"""CONSTRUCT and DESCRIBE query forms."""

import pytest

from repro import SSDM, Graph, URI, Literal

EXP = "PREFIX ex: <http://e/>\n"


@pytest.fixture
def data(ssdm):
    ssdm.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:a ex:name "Ann" ; ex:age 30 .
        ex:b ex:name "Ben" .
    """)
    return ssdm


class TestConstruct:
    def test_returns_graph(self, data):
        g = data.execute(EXP + """
            CONSTRUCT { ?s ex:label ?n } WHERE { ?s ex:name ?n }""")
        assert isinstance(g, Graph)
        assert len(g) == 2

    def test_template_rewrites(self, data):
        g = data.execute(EXP + """
            CONSTRUCT { ?s ex:label ?n } WHERE { ?s ex:name ?n }""")
        assert (URI("http://e/a"), URI("http://e/label"),
                Literal("Ann")) in g

    def test_unbound_template_triple_skipped(self, data):
        g = data.execute(EXP + """
            CONSTRUCT { ?s ex:age ?a } WHERE { ?s ex:name ?n
                OPTIONAL { ?s ex:age ?a } }""")
        assert len(g) == 1                 # only ex:a has an age

    def test_blank_nodes_fresh_per_solution(self, data):
        g = data.execute(EXP + """
            CONSTRUCT { ?s ex:card [ ex:shows ?n ] }
            WHERE { ?s ex:name ?n }""")
        # 2 solutions x 2 template triples
        assert len(g) == 4
        cards = set(g.values(None, URI("http://e/card")))
        assert len(cards) == 2

    def test_construct_deduplicates(self, data):
        g = data.execute(EXP + """
            CONSTRUCT { ex:all ex:seen "yes" } WHERE { ?s ex:name ?n }""")
        assert len(g) == 1

    def test_construct_with_limit(self, data):
        g = data.execute(EXP + """
            CONSTRUCT { ?s ex:label ?n } WHERE { ?s ex:name ?n }
            LIMIT 1""")
        assert len(g) == 1

    def test_literal_subject_template_skipped(self, data):
        g = data.execute(EXP + """
            CONSTRUCT { ?n ex:of ?s } WHERE { ?s ex:name ?n }""")
        assert len(g) == 0                 # literal subjects invalid


class TestDescribe:
    def test_describe_uri(self, data):
        g = data.execute(EXP + "DESCRIBE ex:a")
        assert len(g) == 2

    def test_describe_variable_with_where(self, data):
        g = data.execute(EXP + 'DESCRIBE ?s WHERE { ?s ex:name "Ben" }')
        assert len(g) == 1
        assert (URI("http://e/b"), URI("http://e/name"),
                Literal("Ben")) in g

    def test_describe_unknown_empty(self, data):
        g = data.execute(EXP + "DESCRIBE ex:nothing")
        assert len(g) == 0
