"""SPARQL Update execution: INSERT/DELETE DATA, DELETE/INSERT WHERE,
CLEAR, and array externalization on insert."""

import pytest

from repro import SSDM, URI, Literal, NumericArray, ArrayProxy

EXP = "PREFIX ex: <http://e/>\n"


class TestInsertData:
    def test_insert_counts(self, ssdm):
        n = ssdm.execute(EXP + "INSERT DATA { ex:s ex:p 1 . ex:s ex:q 2 }")
        assert n == 2
        assert len(ssdm.graph) == 2

    def test_insert_idempotent(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { ex:s ex:p 1 }")
        ssdm.execute(EXP + "INSERT DATA { ex:s ex:p 1 }")
        assert len(ssdm.graph) == 1

    def test_insert_array_literal(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { ex:s ex:val ((1 2) (3 4)) }")
        r = ssdm.execute(EXP + "SELECT ?a[2,2] WHERE { ex:s ex:val ?a }")
        assert r.rows == [(4,)]

    def test_insert_blank_node_shorthand(self, ssdm):
        ssdm.execute(EXP + 'INSERT DATA { ex:s ex:p [ ex:q "x" ] }')
        r = ssdm.execute(EXP + 'SELECT ?s WHERE { ex:s ex:p ?b . '
                         '?b ex:q "x" . BIND(ex:s AS ?s) }')
        assert len(r.rows) == 1

    def test_insert_into_named_graph(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { GRAPH ex:g { ex:s ex:p 1 } }")
        assert len(ssdm.graph) == 0
        r = ssdm.execute(EXP +
                         "SELECT ?v WHERE { GRAPH ex:g { ?s ex:p ?v } }")
        assert r.rows == [(1,)]

    def test_insert_externalizes_large_arrays(self, external_ssdm):
        external_ssdm.execute(
            EXP + "INSERT DATA { ex:s ex:val "
            "((1 2 3 4 5) (6 7 8 9 10)) }"
        )
        stored = list(external_ssdm.graph.values(None, URI("http://e/val")))
        assert isinstance(stored[0], ArrayProxy)


class TestDeleteData:
    def test_delete_counts(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { ex:s ex:p 1 . ex:s ex:q 2 }")
        n = ssdm.execute(EXP + "DELETE DATA { ex:s ex:p 1 }")
        assert n == 1
        assert len(ssdm.graph) == 1

    def test_delete_absent_is_zero(self, ssdm):
        assert ssdm.execute(EXP + "DELETE DATA { ex:s ex:p 99 }") == 0


class TestModify:
    @pytest.fixture
    def data(self, ssdm):
        ssdm.load_turtle_text("""
            @prefix ex: <http://e/> .
            ex:a ex:status "old" ; ex:v 1 .
            ex:b ex:status "old" ; ex:v 2 .
            ex:c ex:status "new" ; ex:v 3 .
        """)
        return ssdm

    def test_delete_insert_where(self, data):
        data.execute(EXP + """
            DELETE { ?s ex:status "old" }
            INSERT { ?s ex:status "archived" }
            WHERE { ?s ex:status "old" }""")
        r = data.execute(EXP + """
            SELECT ?s WHERE { ?s ex:status "archived" }""")
        assert len(r.rows) == 2
        r = data.execute(EXP + 'SELECT ?s WHERE { ?s ex:status "old" }')
        assert r.rows == []

    def test_insert_where_computes(self, data):
        data.execute(EXP + """
            INSERT { ?s ex:doubled ?d } WHERE { ?s ex:v ?v
                BIND(?v * 2 AS ?d) }""")
        r = data.execute(EXP +
                         "SELECT ?d WHERE { ex:b ex:doubled ?d }")
        assert r.rows == [(4,)]

    def test_delete_where_shorthand(self, data):
        data.execute(EXP + 'DELETE WHERE { ?s ex:status "old" }')
        assert len(list(data.graph.triples(
            None, URI("http://e/status"), Literal("old")
        ))) == 0

    def test_unbound_template_vars_skipped(self, data):
        # ?m is never bound: the template instantiation skips those rows
        data.execute(EXP + """
            INSERT { ?s ex:copy ?m } WHERE { ?s ex:v ?v
                OPTIONAL { ?s ex:missing ?m } }""")
        assert data.graph.count(None, URI("http://e/copy"), None) == 0

    def test_snapshot_semantics(self, data):
        # inserting while matching must not re-match the new triples
        data.execute(EXP + """
            INSERT { ?s ex:v 100 } WHERE { ?s ex:v ?v }""")
        # each subject got one new value; originals intact
        assert data.graph.count(None, URI("http://e/v"), None) == 6


class TestClear:
    def test_clear_named_graph(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { GRAPH ex:g { ex:s ex:p 1 } }")
        n = ssdm.execute(EXP + "CLEAR GRAPH ex:g")
        assert n == 1
        r = ssdm.execute(EXP +
                         "SELECT ?v WHERE { GRAPH ex:g { ?s ex:p ?v } }")
        assert r.rows == []

    def test_clear_all(self, ssdm):
        ssdm.execute(EXP + "INSERT DATA { ex:s ex:p 1 }")
        ssdm.execute(EXP + "INSERT DATA { GRAPH ex:g { ex:s ex:p 2 } }")
        n = ssdm.execute("CLEAR ALL")
        assert n == 2
        assert len(ssdm.dataset) == 0

    def test_clear_unknown_graph(self, ssdm):
        assert ssdm.execute(EXP + "CLEAR GRAPH ex:nothing") == 0
