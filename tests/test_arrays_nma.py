"""Resident arrays: descriptor algebra, slicing, transposition, equality."""

import numpy as np
import pytest

from repro.arrays import NumericArray, Span
from repro.arrays.nma import derive_descriptor, iter_runs, row_major_strides
from repro.exceptions import ArrayBoundsError, SciSparqlError


@pytest.fixture
def matrix():
    return NumericArray(np.arange(12).reshape(3, 4))


class TestConstruction:
    def test_from_nested_lists(self):
        a = NumericArray([[1, 2], [3, 4]])
        assert a.shape == (2, 2)
        assert a.element_type == "i8"

    def test_from_floats(self):
        assert NumericArray([1.5, 2.5]).element_type == "f8"

    def test_from_numpy_float32(self):
        a = NumericArray(np.zeros(3, dtype=np.float32))
        assert a.element_type == "f4"

    def test_bool_coerced_to_int(self):
        a = NumericArray(np.array([True, False]))
        assert a.element_type == "i8"

    def test_rejects_strings(self):
        with pytest.raises(SciSparqlError):
            NumericArray(np.array(["a", "b"]))

    def test_zeros(self):
        z = NumericArray.zeros((2, 3))
        assert z.shape == (2, 3)
        assert z.to_numpy().sum() == 0

    def test_from_flat(self):
        a = NumericArray.from_flat([1, 2, 3, 4], (2, 2))
        assert a.to_nested_lists() == [[1, 2], [3, 4]]

    def test_ragged_rejected(self):
        with pytest.raises(Exception):
            NumericArray([[1, 2], [3]])


class TestDescriptorMath:
    def test_row_major_strides(self):
        assert row_major_strides((3, 4)) == (4, 1)
        assert row_major_strides((2, 3, 4)) == (12, 4, 1)
        assert row_major_strides(()) == ()

    def test_derive_single_index(self):
        shape, strides, offset = derive_descriptor((3, 4), (4, 1), 0, [1])
        assert shape == (4,) and strides == (1,) and offset == 4

    def test_derive_span(self):
        shape, strides, offset = derive_descriptor(
            (3, 4), (4, 1), 0, [Span(1, 3), Span(0, 4, 2)]
        )
        assert shape == (2, 2)
        assert strides == (4, 2)
        assert offset == 4

    def test_too_many_subscripts(self):
        with pytest.raises(ArrayBoundsError):
            derive_descriptor((3,), (1,), 0, [1, 2])

    def test_out_of_bounds_index(self):
        with pytest.raises(ArrayBoundsError):
            derive_descriptor((3,), (1,), 0, [3])

    def test_span_clamped_to_extent(self):
        shape, _, _ = derive_descriptor((3,), (1,), 0, [Span(1, 100)])
        assert shape == (2,)


class TestElementAccess:
    def test_element(self, matrix):
        assert matrix.element((1, 2)) == 6

    def test_element_bounds(self, matrix):
        with pytest.raises(ArrayBoundsError):
            matrix.element((3, 0))
        with pytest.raises(ArrayBoundsError):
            matrix.element((0, -1))

    def test_element_arity(self, matrix):
        with pytest.raises(ArrayBoundsError):
            matrix.element((1,))

    def test_full_int_subscript_is_scalar(self, matrix):
        assert matrix.subscript([2, 3]) == 11


class TestViews:
    def test_row_projection(self, matrix):
        row = matrix.subscript([1])
        assert row.to_nested_lists() == [4, 5, 6, 7]

    def test_column_view(self, matrix):
        col = matrix.subscript([None, 2])
        assert col.to_nested_lists() == [2, 6, 10]

    def test_strided_view(self, matrix):
        view = matrix.subscript([Span(0, 3, 2), Span(1, 4, 2)])
        assert view.to_nested_lists() == [[1, 3], [9, 11]]

    def test_view_shares_buffer(self, matrix):
        view = matrix.subscript([1])
        assert view.buffer is matrix.buffer

    def test_nested_views(self, matrix):
        view = matrix.subscript([Span(1, 3)]).subscript([None, Span(2, 4)])
        assert view.to_nested_lists() == [[6, 7], [10, 11]]

    def test_transpose(self, matrix):
        t = matrix.transpose()
        assert t.shape == (4, 3)
        assert t.element((2, 1)) == matrix.element((1, 2))

    def test_transpose_permutation_validated(self, matrix):
        with pytest.raises(SciSparqlError):
            matrix.transpose((0, 0))

    def test_project(self, matrix):
        assert matrix.project(1, 2).to_nested_lists() == [2, 6, 10]

    def test_materialize_compacts(self, matrix):
        view = matrix.subscript([None, 2])
        compact = view.materialize()
        assert compact.to_nested_lists() == view.to_nested_lists()
        assert compact.buffer is not matrix.buffer
        assert compact.strides == (1,)

    def test_iter_elements_row_major(self, matrix):
        t = matrix.transpose()
        assert list(t.iter_elements())[:4] == [0, 4, 8, 1]


class TestRuns:
    def test_contiguous_runs(self, matrix):
        runs = list(matrix.iter_runs())
        assert runs == [(0, 1, 4), (4, 1, 4), (8, 1, 4)]

    def test_column_runs(self, matrix):
        runs = list(matrix.subscript([None, 1]).iter_runs())
        assert runs == [(1, 4, 3)]

    def test_scalar_run(self):
        a = NumericArray([[1, 2], [3, 4]])
        runs = list(a.subscript([Span(1, 2), Span(0, 1)]).iter_runs())
        assert runs == [(2, 1, 1)]

    def test_empty_view_no_runs(self, matrix):
        view = matrix.subscript([Span(1, 1)])
        assert list(view.iter_runs()) == []

    def test_single_element_view_run(self):
        a = NumericArray([[1, 2], [3, 4]])
        one = a.subscript([Span(None, None), 0]).subscript([Span(1, 2)])
        runs = list(one.iter_runs())
        assert runs == [(2, 2, 1)]


class TestEquality:
    def test_same_content_equal(self):
        assert NumericArray([[1, 2]]) == NumericArray([[1, 2]])

    def test_dtype_ignored(self):
        assert NumericArray([1, 2]) == NumericArray([1.0, 2.0])

    def test_shape_matters(self):
        assert NumericArray([1, 2, 3, 4]) != NumericArray([[1, 2], [3, 4]])

    def test_view_equals_materialized(self, matrix):
        view = matrix.subscript([None, 2])
        assert view == NumericArray([2, 6, 10])

    def test_hash_consistent(self):
        a = NumericArray([[1, 2], [3, 4]])
        b = NumericArray([[1, 2], [3, 4]])
        assert hash(a) == hash(b)

    def test_not_equal_other_types(self):
        assert NumericArray([1]) != "x"


class TestSpan:
    def test_whole_dimension(self):
        start, stop, step = Span().resolve(7)
        assert (start, stop, step) == (0, 7, 1)

    def test_negative_step_rejected(self):
        with pytest.raises(SciSparqlError):
            Span(0, 5, 0)

    def test_start_beyond_extent(self):
        with pytest.raises(ArrayBoundsError):
            Span(8, 9).resolve(7)

    def test_equality(self):
        assert Span(1, 5, 2) == Span(1, 5, 2)
        assert Span(1, 5) != Span(1, 6)


class TestRepr:
    def test_small_shows_content(self):
        assert "1" in repr(NumericArray([1, 2]))

    def test_large_shows_shape(self):
        big = NumericArray(np.zeros((100, 100)))
        assert "shape" in repr(big)

    def test_n3_nested(self):
        assert NumericArray([[1, 2], [3, 4]]).n3() == "((1 2) (3 4))"
