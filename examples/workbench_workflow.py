"""The Matlab-integration workflow (dissertation chapter 7), over TCP.

A "computational workbench" (the Matlab stand-in) produces numeric
results, saves them as native array files, and annotates them with RDF
metadata in a shared SSDM server.  A collaborator then *finds* results by
querying metadata and retrieves only what they need — windows and
server-side reductions instead of whole arrays.

Run:  python examples/workbench_workflow.py
"""

import tempfile

import numpy as np

from repro import SSDM
from repro.client import SSDMClient, SSDMServer, WorkbenchClient


def simulate(frequency, samples=50_000):
    """A stand-in numeric computation (what Matlab would produce)."""
    t = np.linspace(0.0, 10.0, samples)
    return np.sin(2 * np.pi * frequency * t) * np.exp(-t / 5.0)


def main():
    directory = tempfile.mkdtemp(prefix="workbench_")
    ssdm = SSDM()
    workbench = WorkbenchClient(ssdm, directory)

    print("scientist A: run simulations, save + annotate results")
    for frequency in (0.5, 1.0, 2.0):
        data = simulate(frequency)
        uri = workbench.store_result(
            "decay_f%.1f" % frequency, data,
            {"frequency": frequency, "model": "damped-sine",
             "samples": len(data)},
        )
        print("   stored %s (%d elements -> %s)"
              % (uri, len(data), directory))

    server = SSDMServer(ssdm).start()
    port = server.server_address[1]
    print("\nSSDM server listening on 127.0.0.1:%d" % port)

    print("\nscientist B: find the 1 Hz run by metadata (over the wire)")
    client = SSDMClient("127.0.0.1", port)
    hits = client.query("""
        PREFIX wb: <http://udbl.uu.se/workbench#>
        SELECT ?r ?f WHERE { ?r a wb:Result ; wb:frequency ?f
            FILTER(?f = 1.0) }""")
    result_uri = hits.rows[0][0]
    print("   found:", result_uri)

    print("\nscientist B: server-side statistics (1 scalar over the wire)")
    stats = client.query("""
        PREFIX wb: <http://udbl.uu.se/workbench#>
        SELECT (array_min(?a) AS ?lo) (array_max(?a) AS ?hi)
               (array_avg(?a) AS ?mean)
        WHERE { <%s> wb:data ?a }""" % result_uri.value)
    lo, hi, mean = stats.rows[0]
    transferred_small = client.bytes_received
    print("   min=%.4f max=%.4f mean=%.6f  (%d bytes received so far)"
          % (lo, hi, mean, transferred_small))

    print("\nscientist B: fetch just the first 20 samples")
    window = client.query("""
        PREFIX wb: <http://udbl.uu.se/workbench#>
        SELECT (?a[1:20] AS ?w) WHERE { <%s> wb:data ?a }"""
        % result_uri.value)
    print("   window:", [round(v, 3) for v in
                         window.rows[0][0].to_nested_lists()[:6]], "...")

    print("\nfor contrast: fetching the whole 50k-element array")
    before = client.bytes_received
    client.query("""
        PREFIX wb: <http://udbl.uu.se/workbench#>
        SELECT ?a WHERE { <%s> wb:data ?a }""" % result_uri.value)
    whole_bytes = client.bytes_received - before
    print("   whole array: %d bytes vs ~%d for the reduction"
          % (whole_bytes, transferred_small))
    print("   -> server-side reduction saved %.1f%% of the transfer"
          % (100.0 * (1 - transferred_small / whole_bytes)))

    client.close()
    server.stop()


if __name__ == "__main__":
    main()
