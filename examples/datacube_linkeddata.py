"""Linked-data statistics: RDF Data Cube consolidation + UDF views.

An RDF Data Cube dataset (the W3C vocabulary for statistical data,
dissertation section 5.3.3) is loaded as plain observations, consolidated
into a dense array with dimension dictionaries, and then analysed with
SciSPARQL — including a user-defined function used as a parameterized
view and a second-order array function.

Run:  python examples/datacube_linkeddata.py
"""

from repro import SSDM

OBSERVATIONS = """
@prefix ex: <http://stats.example.org/> .
@prefix qb: <http://purl.org/linked-data/cube#> .

ex:pop a qb:DataSet ; qb:structure ex:dsd .
ex:dsd qb:component [ qb:dimension ex:year ] ,
                    [ qb:dimension ex:county ] ,
                    [ qb:measure ex:population ] .
"""


def observation(index, year, county, population):
    return (
        'ex:o%d a qb:Observation ; qb:dataSet ex:pop ; '
        'ex:year %d ; ex:county "%s" ; ex:population %d .'
        % (index, year, county, population)
    )


def main():
    counties = ["Uppsala", "Stockholm", "Gotland", "Dalarna"]
    base = {"Uppsala": 330, "Stockholm": 2100, "Gotland": 58,
            "Dalarna": 280}
    lines = [OBSERVATIONS]
    index = 0
    for year in range(2000, 2012):
        for county in counties:
            index += 1
            population = base[county] + (year - 2000) * (
                8 if county == "Stockholm" else 2
            )
            lines.append(observation(index, year, county, population))

    ssdm = SSDM()
    triples = ssdm.load_turtle_text("\n".join(lines))
    print("loaded %d triples of qb:Observations" % triples)

    stats = ssdm.load_data_cube()
    print("consolidated: %d dataset(s), removed %d observation triples; "
          "graph now has %d triples"
          % (stats["datasets"], stats["observations_removed"],
             len(ssdm.graph)))

    ssdm.prefix("ex", "http://stats.example.org/")
    ssdm.prefix("ssdm", "http://udbl.uu.se/ssdm#")

    print("\nthe consolidated cube (counties x years):")
    result = ssdm.execute("""
        SELECT (adims(?arr) AS ?shape) WHERE {
            ex:pop ssdm:dataArray [ ssdm:array ?arr ] }""")
    print("   shape:", result.scalar().to_nested_lists())

    print("\npopulation of every county in 2005 "
          "(column 6 of the cube; the county dictionary labels rows):")
    result = ssdm.execute("""
        SELECT (?arr[1, 6] AS ?p1) (?arr[2, 6] AS ?p2)
               (?arr[3, 6] AS ?p3) (?arr[4, 6] AS ?p4)
        WHERE { ex:pop ssdm:dataArray [ ssdm:array ?arr ] }""")
    dictionary = ssdm.execute("""
        SELECT ?county WHERE {
            ex:pop ssdm:dimension [ ssdm:property ex:county ;
                                    ssdm:values ?list ] .
            ?list rdf:rest*/rdf:first ?county }""")
    for county, population in zip(dictionary.column("county"),
                                  result.rows[0]):
        print("   %-10s %d thousand" % (county, population))

    print("\na parameterized view: growth of a county over the decade")
    ssdm.execute("""
        DEFINE FUNCTION ex:growth(?i) AS
        SELECT (?arr[?i, 12] - ?arr[?i, 1] AS ?g)
        WHERE { ex:pop ssdm:dataArray [ ssdm:array ?arr ] }""")
    result = ssdm.execute("""
        SELECT (ex:growth(1) AS ?g1) (ex:growth(2) AS ?g2) WHERE { }""")
    print("   growth of county #1: +%d, county #2: +%d (thousand)"
          % result.rows[0])

    print("\nsecond-order: per-county decade averages via "
          "array_condense over the year axis")
    result = ssdm.execute("""
        SELECT (array_condense(FN(?x ?y) ?x + ?y, ?arr, 2) AS ?sums)
        WHERE { ex:pop ssdm:dataArray [ ssdm:array ?arr ] }""")
    sums = result.scalar().to_nested_lists()
    for county, total in zip(dictionary.column("county"), sums):
        print("   %-10s mean %.1f thousand" % (county, total / 12))


if __name__ == "__main__":
    main()
