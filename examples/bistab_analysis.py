"""BISTAB: analysing stochastic-simulation results with SciSPARQL.

Reproduces the application scenario of dissertation section 6.4: an
experiment sweeping rate constants of a bistable chemical system, each
task producing a trajectory array.  Metadata (parameters, realization
numbers) lives in the RDF graph; trajectories are externalized to a
SQLite-backed array store and touched lazily.

Run:  python examples/bistab_analysis.py
"""

from repro import SSDM, SqlArrayStore
from repro.apps import bistab


def main():
    store = SqlArrayStore(chunk_bytes=2048)
    ssdm = SSDM(array_store=store, externalize_threshold=64)

    print("generating BISTAB experiment (Schlögl model sweep)...")
    bistab.generate_dataset(ssdm, tasks=12, realizations=3, samples=512)
    print("  graph: %d triples; back-end: %d arrays stored"
          % (len(ssdm.graph), store.stats.arrays_stored))

    for query_id, description, text in bistab.QUERIES:
        print("\n%s — %s" % (query_id, description))
        store.stats.reset()
        result = ssdm.execute(text)
        print("   %d rows; back-end traffic: %d requests, %d chunks"
              % (len(result.rows), store.stats.requests,
                 store.stats.chunks_fetched))
        for row in result.rows[:3]:
            printable = []
            for value in row:
                if hasattr(value, "shape"):
                    printable.append("<array %s>" % (value.shape,))
                elif isinstance(value, float):
                    printable.append("%.3f" % value)
                else:
                    printable.append(str(value))
            print("     ", " | ".join(printable))
        if len(result.rows) > 3:
            print("      ... (%d more)" % (len(result.rows) - 3))

    print("\nAd-hoc analysis: which parameter cases end in the high "
          "steady state?")
    result = ssdm.execute("""
        PREFIX bistab: <http://udbl.uu.se/bistab#>
        SELECT ?k1 (COUNT(?task) AS ?switched) WHERE {
            ?task a bistab:Task ; bistab:k_1 ?k1 ; bistab:result ?r .
            FILTER (array_avg(?r[481:512]) > array_avg(?r[1:32])) }
        GROUP BY ?k1 ORDER BY DESC(?switched) ?k1""")
    for k1, switched in result:
        print("   k_1 = %6.2f : %d of 3 realizations end high"
              % (k1, switched))


if __name__ == "__main__":
    main()
