"""Mediating a relational database — and persisting the graph in SQL.

Two more storage facets of the paper (chapter 6, section 2.3.1):

1. an *existing* relational database (a LIMS-style sample catalogue)
   becomes queryable as RDF through the direct mapping — no schema
   changes, no export scripts;
2. the RDF-with-Arrays graph itself is persisted in a relational
   back-end (value-type-partitioned triples table + chunked arrays), so
   SSDM restarts pick up where they left off.

Run:  python examples/relational_mediation.py
"""

import sqlite3
import tempfile

import numpy as np

from repro import SSDM, NumericArray, URI
from repro.loaders.rdbview import load_relational
from repro.storage import SqlTripleGraph


def make_lims_database():
    """A pre-existing relational system we are NOT allowed to modify."""
    connection = sqlite3.connect(":memory:")
    connection.executescript("""
        CREATE TABLE instrument (
            id INTEGER PRIMARY KEY, name TEXT, precision_um REAL);
        CREATE TABLE sample (
            id INTEGER PRIMARY KEY, label TEXT,
            instrument INTEGER REFERENCES instrument(id),
            temperature REAL);
        INSERT INTO instrument VALUES
            (1, 'AFM-3', 0.01), (2, 'SEM-1', 0.5);
        INSERT INTO sample VALUES
            (100, 'wafer-a', 1, 293.5),
            (101, 'wafer-b', 1, 300.0),
            (102, 'alloy-x', 2, 77.4);
    """)
    connection.commit()
    return connection


def main():
    print("1. mediate the relational LIMS as RDF")
    ssdm = SSDM()
    count = load_relational(
        ssdm, make_lims_database(), "http://lims.example.org/"
    )
    print("   %d triples materialized from 2 tables" % count)
    ssdm.prefix("smp", "http://lims.example.org/sample#")
    ssdm.prefix("ins", "http://lims.example.org/instrument#")

    result = ssdm.execute("""
        SELECT ?label ?iname WHERE {
            ?s smp:label ?label ; smp:ref-instrument ?i .
            ?i ins:name ?iname } ORDER BY ?label""")
    for label, instrument in result:
        print("   sample %-8s measured on %s" % (label, instrument))

    print("\n2. annotate mediated rows with measurement arrays "
          "(RDF with Arrays on top of SQL rows)")
    rng = np.random.default_rng(3)
    for sample_id in (100, 101, 102):
        subject = URI("http://lims.example.org/sample/%d" % sample_id)
        ssdm.add(subject, URI("http://lims.example.org/heightmap"),
                 NumericArray(rng.standard_normal((16, 16))))
    result = ssdm.execute("""
        SELECT ?label (array_max(?h) - array_min(?h) AS ?roughness)
        WHERE { ?s smp:label ?label ;
                   <http://lims.example.org/heightmap> ?h }
        ORDER BY DESC(?roughness)""")
    for label, roughness in result:
        print("   %-8s peak-to-peak %.2f" % (label, roughness))

    print("\n3. persist an RDF-with-Arrays graph in a relational store")
    path = tempfile.mktemp(suffix=".db")
    persistent = SSDM.with_triple_store(
        SqlTripleGraph(path, externalize_threshold=16)
    )
    persistent.load_turtle_text("""
        @prefix ex: <http://e/> .
        ex:run1 ex:params (0.5 1.0 2.0) ;
                ex:trace (1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
                          17 18 19 20) .
    """)
    print("   stored; closing and reopening %s" % path)
    persistent.graph.close()

    reopened = SSDM.with_triple_store(
        SqlTripleGraph(path, externalize_threshold=16)
    )
    result = reopened.execute("""
        PREFIX ex: <http://e/>
        SELECT ?p[2] (array_avg(?t) AS ?mean) WHERE {
            ex:run1 ex:params ?p ; ex:trace ?t }""")
    print("   reopened: params[2]=%.1f, trace mean=%.1f"
          % result.rows[0])
    triples = reopened.graph.value(
        URI("http://e/run1"), URI("http://e/trace")
    )
    print("   the 20-element trace came back as a lazy proxy: %r"
          % (type(triples).__name__,))


if __name__ == "__main__":
    main()
