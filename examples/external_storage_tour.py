"""A tour of the array-storage machinery: ASEI back-ends, lazy proxies,
APR retrieval strategies, and the Sequence Pattern Detector.

Stores one large matrix in each back-end (memory, binary file, SQLite),
then shows what each retrieval strategy costs — in back-end round trips —
for the access patterns of the paper's mini-benchmark (section 6.3).

Run:  python examples/external_storage_tour.py
"""

import tempfile

import numpy as np

from repro import (
    SSDM, FileArrayStore, MemoryArrayStore, NumericArray, SqlArrayStore,
    APRResolver, Strategy, URI,
)
from repro.storage.spd import detect_patterns


def main():
    data = np.arange(256 * 256, dtype=np.float64).reshape(256, 256)
    print("matrix: 256x256 float64 = %.1f KiB; chunks of 2 KiB"
          % (data.nbytes / 1024))

    stores = {
        "memory": MemoryArrayStore(chunk_bytes=2048),
        "file": FileArrayStore(tempfile.mkdtemp(prefix="fstore_"),
                               chunk_bytes=2048),
        "sqlite": SqlArrayStore(chunk_bytes=2048),
    }

    print("\n-- retrieval strategies on a column access "
          "(regular stride, crosses every chunk row) --")
    strategies = list(Strategy)
    header = "%-8s" + "%18s" * len(strategies)
    print(header % (("backend",) + tuple(s.value for s in strategies)))
    for name, store in stores.items():
        proxy = store.put(NumericArray(data))
        cells = []
        for strategy in strategies:
            store.stats.reset()
            out = APRResolver(store, strategy=strategy, buffer_size=64) \
                .resolve([proxy.subscript([None, 10])])[0]
            assert out.to_nested_lists() == data[:, 10].tolist()
            cells.append("%d requests" % store.stats.requests)
        print(header % ((name,) + tuple(cells)))

    print("\n-- per-resolve statistics (set by every APR resolve) --")
    last = stores["sqlite"].last_resolve_stats
    print("   strategy=%s chunks_fetched=%d requests=%d "
          "cache_hit_ratio=%.2f"
          % (last["strategy"], last["chunks_fetched"], last["requests"],
             last["cache_hit_ratio"]))

    print("\n-- what the Sequence Pattern Detector sees --")
    store = stores["sqlite"]
    proxy = store.proxy(1)
    view = proxy.subscript([None, 10])
    from repro.arrays.chunks import chunks_of_runs
    layout = store.meta(1).layout
    chunk_ids = chunks_of_runs(
        list(view.iter_runs()), layout.elements_per_chunk
    )
    print("   column view touches %d chunks: %s ..."
          % (len(chunk_ids), chunk_ids[:6]))
    emissions = detect_patterns(chunk_ids)
    print("   SPD factorization: %s" % emissions[:3])
    print("   -> one SQL range query instead of %d lookups"
          % len(chunk_ids))

    print("\n-- lazy evaluation end to end through SciSPARQL --")
    ssdm = SSDM(array_store=stores["sqlite"], externalize_threshold=64)
    ssdm.add(URI("http://e/m"), URI("http://e/val"), NumericArray(data))
    stores["sqlite"].stats.reset()
    result = ssdm.execute("""
        SELECT ?a[100:110, 100:110] WHERE {
            <http://e/m> <http://e/val> ?a }""")
    window = result.scalar().resolve()
    print("   10x10 window fetched; chunks read: %d of %d total"
          % (stores["sqlite"].stats.chunks_fetched,
             stores["sqlite"].meta(2).layout.chunk_count))
    print("   window[1][1] = %.0f (expected %.0f)"
          % (window.element((0, 0)), data[99, 99]))

    print("\n-- delegated aggregates (AAPR): no chunks to the client --")
    stores["sqlite"].stats.reset()
    result = ssdm.execute("""
        SELECT (array_avg(?a) AS ?mean) WHERE {
            <http://e/m> <http://e/val> ?a }""")
    stats = stores["sqlite"].stats
    print("   mean=%.1f computed with %d delegated aggregate call(s), "
          "%d chunks shipped"
          % (result.scalar(), stats.aggregates_delegated,
             stats.chunks_fetched))


if __name__ == "__main__":
    main()
