"""Quickstart: RDF with Arrays and SciSPARQL in five minutes.

Loads a small dataset mixing metadata and numeric matrices, then walks
through the signature SciSPARQL features: array subscripts, ranges,
array aggregates in filters, and combined data/metadata conditions.

Run:  python examples/quickstart.py
"""

from repro import SSDM

TURTLE = """
@prefix : <http://example.org/lab#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

:sensorA a :Sensor ; rdfs:label "roof sensor" ;
    :calibration 0.98 ;
    :readings ((20.1 20.4 21.0 22.3) (22.0 22.8 23.1 23.0)
               (19.5 19.8 20.2 20.9)) .

:sensorB a :Sensor ; rdfs:label "basement sensor" ;
    :calibration 1.02 ;
    :readings ((10.0 10.1 10.0 10.2) (10.3 10.2 10.4 10.3)
               (10.1 10.1 10.0 10.2)) .
"""


def main():
    ssdm = SSDM()
    triples = ssdm.load_turtle_text(TURTLE)
    print("loaded %d triples (each readings matrix is ONE value)" % triples)
    ssdm.prefix("", "http://example.org/lab#")
    ssdm.prefix("rdfs", "http://www.w3.org/2000/01/rdf-schema#")

    print("\n1. Metadata query — plain SPARQL still works:")
    result = ssdm.execute("""
        SELECT ?label WHERE { ?s a :Sensor ; rdfs:label ?label }
        ORDER BY ?label""")
    for (label,) in result:
        print("   sensor:", label)

    print("\n2. Array dereference — day 2, hour 3 of each sensor "
          "(1-based):")
    result = ssdm.execute("""
        SELECT ?label ?r[2,3] WHERE {
            ?s rdfs:label ?label ; :readings ?r } ORDER BY ?label""")
    for label, value in result:
        print("   %-16s %.1f" % (label, value))

    print("\n3. Ranges and projection — the first two hours of day 1:")
    result = ssdm.execute("""
        SELECT ?label ?r[1,1:2] WHERE {
            ?s rdfs:label ?label ; :readings ?r } ORDER BY ?label""")
    for label, window in result:
        print("   %-16s %s" % (label, window.to_nested_lists()))

    print("\n4. Data and metadata combined — calibrated daily means of "
          "warm sensors:")
    result = ssdm.execute("""
        SELECT ?label (array_avg(?r) * ?c AS ?mean) WHERE {
            ?s rdfs:label ?label ; :calibration ?c ; :readings ?r
            FILTER (array_max(?r) > 15) }""")
    for label, mean in result:
        print("   %-16s %.2f" % (label, mean))

    print("\n5. Array arithmetic and mappers — centered readings:")
    result = ssdm.execute("""
        SELECT ?label (array_map(FN(?x) ?x - ?m, ?r)[1] AS ?centered)
        WHERE { ?s rdfs:label ?label ; :readings ?r
                BIND(array_avg(?r) AS ?m) } ORDER BY ?label""")
    for label, row in result:
        print("   %-16s %s" % (
            label, [round(v, 2) for v in row.to_nested_lists()]
        ))

    print("\n6. The optimized logical plan (EXPLAIN):")
    print(ssdm.explain("""
        SELECT ?label WHERE {
            ?s a :Sensor ; rdfs:label ?label ; :calibration ?c
            FILTER(?c > 1.0) }"""))


if __name__ == "__main__":
    main()
