"""MVCC snapshot reads keyed by the WAL sequence number.

Every admitted query reads an immutable :class:`DatasetVersion` — the
set of per-graph frozen states published by the single writer at the
last WAL-record boundary — so updates append freely while reads run
completely lock-free.  The pieces:

``DatasetVersion``
    One published version: ``seq`` (the WAL seq whose effects it
    contains), a per-graph table of frozen
    :class:`~repro.rdf.graph.GraphVersion` states, and the dataset
    change-stamp it was captured at.  Publication is a single
    reference assignment on the writer thread
    (:meth:`~repro.rdf.dataset.Dataset.publish`), so a reader that
    loads ``dataset._published`` once can never observe a half-applied
    update.

``Snapshot`` / ``SnapshotManager``
    A snapshot pins one version for the duration of a query.  The
    manager registers/releases snapshots, keeps a bounded ring of
    recently published versions (exact-seq replica reads), tracks the
    low-water seq, and *bounds retention*: when too many snapshots are
    live, or the pinned versions hold too many retired index bytes, the
    oldest readers are invalidated and observe a typed non-retryable
    :class:`~repro.exceptions.SnapshotGoneError` at their next graph
    access — never a silently inconsistent answer.  A WAL seq
    regression (log compaction rewrites the journal from seq 1, replica
    resync clears the dataset) invalidates every live snapshot for the
    same reason.

``snapshot_scope`` / ``current_snapshot``
    The ambient thread-local scope the engine's read paths consult,
    mirroring ``deadline_scope`` and the governor's ``ResourceScope``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.exceptions import SnapshotGoneError

#: Default bound on concurrently live snapshots before the oldest is
#: invalidated (one per admitted query; admission control keeps the
#: practical count far lower).
MAX_LIVE_SNAPSHOTS = 256

#: How many published versions stay addressable by exact seq for
#: ``execute(at_seq=...)`` replica reads, beyond those pinned live.
RETAIN_VERSIONS = 8


class DatasetVersion:
    """One immutable published state of a dataset.

    ``entries`` maps ``id(graph) -> (graph, GraphVersion)``; keeping
    the graph reference in the entry both prevents ``id()`` reuse while
    the version is alive and lets :meth:`version_of` verify identity.
    """

    __slots__ = ("seq", "entries", "stamp")

    def __init__(self, seq, entries, stamp):
        self.seq = seq
        self.entries = entries
        self.stamp = stamp

    def version_of(self, graph):
        """The frozen state of ``graph`` in this version, or None for
        graphs outside the dataset (e.g. query-local merged graphs)."""
        entry = self.entries.get(id(graph))
        if entry is not None and entry[0] is graph:
            return entry[1]
        return None

    def graph_versions(self):
        return [entry[1] for entry in self.entries.values()]


class Snapshot:
    """One reader's pin on a :class:`DatasetVersion`.

    ``version_of`` raises :class:`SnapshotGoneError` once the manager
    has reclaimed this snapshot, so a long reader fails loudly at its
    next graph access instead of mixing two versions.
    """

    __slots__ = ("manager", "version", "seq", "token", "gone", "released")

    def __init__(self, manager, version, token):
        self.manager = manager
        self.version = version
        self.seq = version.seq
        self.token = token
        self.gone = False
        self.released = False

    def check(self):
        if self.gone:
            raise SnapshotGoneError(
                "snapshot at seq %d was reclaimed (retention exceeded "
                "or version history reset); re-issue the read to get a "
                "fresh snapshot" % self.seq
            )

    def version_of(self, graph):
        """Frozen graph state at this snapshot, or None for graphs the
        version does not cover (reads then see the live graph)."""
        self.check()
        return self.version.version_of(graph)

    def release(self):
        if not self.released:
            self.released = True
            self.manager.release(self)


class SnapshotManager:
    """Registers per-query snapshots and bounds version retention."""

    def __init__(self, max_snapshots=MAX_LIVE_SNAPSHOTS,
                 retain_versions=RETAIN_VERSIONS,
                 max_retained_bytes=None):
        self.max_snapshots = max_snapshots
        self.retain_versions = retain_versions
        self.max_retained_bytes = max_retained_bytes
        self._lock = threading.Lock()
        self._live = {}          # token -> Snapshot, insertion-ordered
        self._recent = {}        # seq -> DatasetVersion ring
        self._next_token = 0
        self._last_seq = None
        self.acquired = 0
        self.snapshot_gone = 0
        self.regressions = 0

    # -- acquisition ----------------------------------------------------

    def acquire(self, version):
        """Pin ``version`` for one reader; returns the Snapshot."""
        with self._lock:
            self._next_token += 1
            snapshot = Snapshot(self, version, self._next_token)
            self._live[snapshot.token] = snapshot
            self.acquired += 1
            self._enforce_locked()
        return snapshot

    def release(self, snapshot):
        with self._lock:
            self._live.pop(snapshot.token, None)

    @contextmanager
    def reading(self, version):
        """Acquire a snapshot of ``version`` for the calling reader."""
        snapshot = self.acquire(version)
        try:
            yield snapshot
        finally:
            snapshot.release()

    # -- publication ----------------------------------------------------

    def note_published(self, version):
        """Record a newly published version (writer thread).

        Detects WAL seq regressions (journal compaction, replica
        resync) and invalidates every live snapshot — their versions
        belong to a history that no longer exists.
        """
        with self._lock:
            if self._last_seq is not None and version.seq < self._last_seq:
                self.regressions += 1
                self._recent.clear()
                for snapshot in self._live.values():
                    if not snapshot.gone:
                        snapshot.gone = True
                        self.snapshot_gone += 1
                self._live.clear()
            self._last_seq = version.seq
            self._recent[version.seq] = version
            while len(self._recent) > self.retain_versions:
                oldest = next(iter(self._recent))
                del self._recent[oldest]
            self._enforce_locked()

    def retained(self, seq):
        """The retained version published exactly at ``seq``, or None."""
        with self._lock:
            return self._recent.get(seq)

    # -- retention ------------------------------------------------------

    def _enforce_locked(self):
        while len(self._live) > self.max_snapshots:
            self._reclaim_oldest_locked()
        if self.max_retained_bytes is not None:
            while len(self._live) > 1 and \
                    self._retained_bytes_locked() > self.max_retained_bytes:
                self._reclaim_oldest_locked()

    def _reclaim_oldest_locked(self):
        token = next(iter(self._live))
        snapshot = self._live.pop(token)
        snapshot.gone = True
        self.snapshot_gone += 1

    def _retained_bytes_locked(self):
        seen = set()
        total = 0
        for snapshot in self._live.values():
            for gv in snapshot.version.graph_versions():
                total += gv.retained_nbytes(seen)
        return total

    def retained_bytes(self):
        """Bytes held only because snapshots pin retired versions.

        Counts index arrays (deduplicated across snapshots) that are no
        longer a graph's current base, plus overlay copies.  Feeds the
        resource governor's pressure signal.
        """
        with self._lock:
            return self._retained_bytes_locked()

    # -- observability --------------------------------------------------

    def low_water_seq(self):
        """Oldest seq still pinned by a live snapshot (None when idle)."""
        with self._lock:
            seqs = [s.seq for s in self._live.values() if not s.gone]
        return min(seqs) if seqs else None

    def live_count(self):
        with self._lock:
            return len(self._live)

    def stats(self):
        with self._lock:
            live = len(self._live)
            retained_versions = len(self._recent)
            retained_bytes = self._retained_bytes_locked()
            seqs = [s.seq for s in self._live.values() if not s.gone]
        return {
            "live_snapshots": live,
            "retained_versions": retained_versions,
            "retained_bytes": int(retained_bytes),
            "low_water_seq": min(seqs) if seqs else None,
            "last_published_seq": self._last_seq,
            "acquired": self.acquired,
            "snapshot_gone": self.snapshot_gone,
            "regressions": self.regressions,
        }


# -- ambient scope ------------------------------------------------------

_SCOPE = threading.local()


def current_snapshot():
    """The snapshot installed for the calling thread, or None."""
    return getattr(_SCOPE, "snapshot", None)


@contextmanager
def snapshot_scope(snapshot):
    """Install ``snapshot`` as the ambient snapshot for this thread.

    The engine's graph read paths (``Graph.triples``, the idjoin fast
    path) consult :func:`current_snapshot` and route reads through the
    pinned version; scopes nest (a sub-query inherits the outer
    snapshot unless explicitly overridden).
    """
    previous = getattr(_SCOPE, "snapshot", None)
    _SCOPE.snapshot = snapshot
    try:
        yield snapshot
    finally:
        _SCOPE.snapshot = previous
