"""Application workloads built on SciSPARQL.

- :mod:`repro.apps.bistab` — the BISTAB computational-biology application
  of dissertation section 6.4: stochastic simulations of a bistable
  chemical system, stored as RDF with Arrays and analysed with the
  published application queries.
"""
