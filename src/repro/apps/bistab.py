"""The BISTAB application (dissertation section 6.4).

BISTAB studies a *bistable chemical system* with stochastic simulations:
an experiment is a set of tasks, each task holding four reaction-rate
parameters (``k_1``, ``k_a``, ``k_d``, ``k_4`` — the variable names of the
Chelonia dataset in Figure 2), a realization number, and a ``result``
trajectory array produced by the simulation.

The paper's production data came from e-Science runs stored in Chelonia;
here the trajectories are regenerated with a Gillespie (SSA) simulation of
the Schlögl model — the canonical bistable birth-death system with exactly
four rate constants — sampled onto a uniform time grid.  The RDF-with-
Arrays data model and the application queries follow section 6.4.2/6.4.4:
one RDF node per task, parameters as properties, trajectories as array
values.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arrays.nma import NumericArray
from repro.rdf.namespace import Namespace, RDF
from repro.rdf.term import Literal, URI

#: Vocabulary of the BISTAB dataset.
BISTAB = Namespace("http://udbl.uu.se/bistab#")


def simulate_trajectory(k_1, k_a, k_d, k_4, samples=256, t_end=10.0,
                        x0=100, volume=40.0, seed=0, max_events=200_000):
    """One stochastic realization of the Schlögl model.

    Reactions (X the observed species, A/B chemostatted):

        A + 2X -> 3X   rate k_1 * x*(x-1)/V
        3X -> A + 2X   rate k_a * x*(x-1)*(x-2)/V^2
        B -> X         rate k_d * V
        X -> B         rate k_4 * x

    Returns a float64 numpy vector of the copy number sampled at
    ``samples`` uniform time points over [0, t_end].
    """
    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, t_end, samples)
    out = np.empty(samples, dtype=np.float64)
    time = 0.0
    x = float(x0)
    cursor = 0
    for _ in range(max_events):
        a1 = k_1 * x * max(x - 1.0, 0.0) / volume
        a2 = k_a * x * max(x - 1.0, 0.0) * max(x - 2.0, 0.0) / volume ** 2
        a3 = k_d * volume
        a4 = k_4 * x
        total = a1 + a2 + a3 + a4
        if total <= 0.0:
            break
        time += rng.exponential(1.0 / total)
        while cursor < samples and grid[cursor] <= time:
            out[cursor] = x
            cursor += 1
        if cursor >= samples:
            break
        pick = rng.random() * total
        if pick < a1:
            x += 1.0
        elif pick < a1 + a2:
            x -= 1.0
        elif pick < a1 + a2 + a3:
            x += 1.0
        else:
            x -= 1.0
        x = max(x, 0.0)
    while cursor < samples:
        out[cursor] = x
        cursor += 1
    return out


def simulate_trajectory_langevin(k_1, k_a, k_d, k_4, samples=256,
                                 t_end=10.0, x0=None, seed=0):
    """A fast chemical-Langevin approximation of the bistable dynamics.

    Euler–Maruyama integration of a double-well drift whose well
    positions derive from the rate constants; vectorised, so large
    datasets generate quickly.  Statistically it exhibits the same
    bistable switching the application queries look for.
    """
    rng = np.random.default_rng(seed)
    steps_per_sample = 4
    n = samples * steps_per_sample
    dt = t_end / n
    low_state = k_d / k_4 * 2.0
    high_state = low_state + k_1 * 8.0 / max(k_a, 1e-6) / 10.0
    mid = 0.5 * (low_state + high_state)
    sigma = 0.35 * (high_state - low_state)
    x = np.empty(n + 1, dtype=np.float64)
    # start at the unstable midpoint so realizations split between wells
    x[0] = mid if x0 is None else x0
    noise = rng.standard_normal(n) * np.sqrt(dt) * sigma
    scale = 4.0 / max((high_state - low_state) ** 2, 1e-6)
    for index in range(n):
        value = x[index]
        drift = -scale * (value - low_state) * (value - mid) \
            * (value - high_state)
        x[index + 1] = max(value + drift * dt + noise[index], 0.0)
    return x[steps_per_sample::steps_per_sample].copy()


def generate_dataset(ssdm, tasks=20, realizations=3, samples=256,
                     seed=42, graph=None, experiment_uri=None,
                     method="langevin"):
    """Populate an SSDM instance with a synthetic BISTAB experiment.

    Each of ``tasks`` parameter cases gets ``realizations`` stochastic
    trajectories.  Parameter values are drawn around the bistable regime
    deterministically from ``seed``.  ``method`` selects the simulator:
    ``"langevin"`` (fast, default) or ``"ssa"`` (exact Gillespie).
    Returns the experiment URI.
    """
    rng = np.random.default_rng(seed)
    experiment = experiment_uri or BISTAB.term("experiment1")
    target_graph = graph
    ssdm.add(experiment, RDF.type, BISTAB.Experiment, graph=target_graph)
    ssdm.add(experiment, BISTAB.description,
             Literal("Schlögl bistable system parameter sweep"),
             graph=target_graph)
    task_number = 0
    for case in range(tasks):
        k_1 = float(rng.uniform(15.0, 35.0))
        k_a = float(rng.uniform(0.4, 1.2))
        k_d = float(rng.uniform(40.0, 90.0))
        k_4 = float(rng.uniform(2.5, 4.5))
        for realization in range(1, realizations + 1):
            task_number += 1
            task = BISTAB.term("task%d" % task_number)
            simulator = (
                simulate_trajectory if method == "ssa"
                else simulate_trajectory_langevin
            )
            trajectory = simulator(
                k_1, k_a, k_d, k_4, samples=samples,
                seed=seed * 100_000 + task_number,
            )
            ssdm.add(experiment, BISTAB.task, task, graph=target_graph)
            ssdm.add(task, RDF.type, BISTAB.Task, graph=target_graph)
            ssdm.add(task, BISTAB.k_1, Literal(k_1), graph=target_graph)
            ssdm.add(task, BISTAB.k_a, Literal(k_a), graph=target_graph)
            ssdm.add(task, BISTAB.k_d, Literal(k_d), graph=target_graph)
            ssdm.add(task, BISTAB.k_4, Literal(k_4), graph=target_graph)
            ssdm.add(task, BISTAB.realization, Literal(realization),
                     graph=target_graph)
            ssdm.add(task, BISTAB.result, NumericArray(trajectory),
                     graph=target_graph)
    return experiment


_PREFIX = "PREFIX bistab: <http://udbl.uu.se/bistab#>\n"

#: The four application queries of section 6.4.4, adapted to the
#: regenerated dataset.  Each entry is (id, description, SciSPARQL text).
QUERIES = [
    (
        "Q1",
        "Parameter search: tasks whose k_1 lies in a given range, with "
        "their parameter values (metadata-only query).",
        _PREFIX + """
SELECT ?task ?k1 ?k4
WHERE { ?task a bistab:Task ; bistab:k_1 ?k1 ; bistab:k_4 ?k4 .
        FILTER (?k1 >= 20 && ?k1 <= 30) }
ORDER BY ?k1
""",
    ),
    (
        "Q2",
        "Trajectory window: the last quarter of each matching task's "
        "result array (array slicing on data selected by metadata).",
        _PREFIX + """
SELECT ?task ?r[193:256]
WHERE { ?task a bistab:Task ; bistab:k_1 ?k1 ; bistab:result ?r .
        FILTER (?k1 >= 20 && ?k1 <= 30) }
""",
    ),
    (
        "Q3",
        "Aggregate filter: tasks whose trajectory settles in the high "
        "steady state (server-side array aggregation in a filter).",
        _PREFIX + """
SELECT ?task (array_avg(?r[225:256]) AS ?tail)
WHERE { ?task a bistab:Task ; bistab:result ?r .
        FILTER (array_avg(?r[225:256]) > array_avg(?r[1:32]) + 5) }
ORDER BY DESC(?tail)
""",
    ),
    (
        "Q4",
        "Cross-task statistics: per-realization mean trajectory level, "
        "grouped and aggregated over the whole experiment.",
        _PREFIX + """
SELECT ?real (AVG(?mean) AS ?avgLevel) (COUNT(?task) AS ?n)
WHERE { ?task a bistab:Task ; bistab:realization ?real ;
              bistab:result ?r .
        BIND (array_avg(?r) AS ?mean) }
GROUP BY ?real
ORDER BY ?real
""",
    ),
]


def run_queries(ssdm):
    """Execute all BISTAB application queries; returns {id: QueryResult}."""
    return {qid: ssdm.execute(text) for qid, _, text in QUERIES}
