"""SSDM — the Scientific SPARQL Database Manager facade.

The entry point a downstream user works with (dissertation chapter 5): a
main-memory RDF-with-Arrays store plus the full query pipeline

    parse → translate → rewrite → cost-optimize → evaluate

with optional external array storage behind the ASEI.  Typical use::

    from repro import SSDM
    ssdm = SSDM()
    ssdm.load_turtle_text('@prefix : <http://ex.org/> . :m :val ((1 2) (3 4)) .')
    result = ssdm.execute('PREFIX : <http://ex.org/> SELECT ?a[2,1] WHERE { ?s :val ?a }')
    result.rows   # [(3,)]
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Dict, List, Optional

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import (
    QueryError, ReplicaLaggingError, SciSparqlError, SnapshotGoneError,
)
from repro.mvcc import SnapshotManager, current_snapshot, snapshot_scope
from repro.rdf.dataset import Dataset
from repro.rdf.graph import Graph
from repro.rdf.term import BlankNode, Literal, URI
from repro.sparql import ast
from repro.sparql.parser import Parser
from repro.algebra.translator import Translator, translate
from repro.algebra.rewriter import rewrite
from repro.algebra.optimizer import optimize
from repro.engine.bindings import Bindings
from repro.engine.eval import QueryEngine, _storable
from repro.engine.udf import FunctionRegistry
from repro.engine.update import execute_update
from repro.lifecycle import Deadline, deadline_scope
from repro import observability as obs


class QueryResult:
    """The result of a SELECT query: named columns and value rows.

    Values are runtime values: Python scalars for plain literals, URIs /
    blank nodes / typed literals as terms, and arrays as
    :class:`NumericArray` (or lazy :class:`ArrayProxy` when the value
    still lives in external storage).
    """

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self.rows = rows

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name):
        """All values of one column, in row order."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise QueryError(
                "expected a 1x1 result, got %dx%d"
                % (len(self.rows), len(self.columns))
            )
        return self.rows[0][0]

    def resolved(self):
        """A copy with every ArrayProxy resolved to a resident array."""
        rows = [
            tuple(
                value.resolve() if isinstance(value, ArrayProxy) else value
                for value in row
            )
            for row in self.rows
        ]
        return QueryResult(self.columns, rows)

    def as_dicts(self):
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self):
        return "QueryResult(columns=%r, rows=%d)" % (
            self.columns, len(self.rows)
        )


class SSDM:
    """A Scientific SPARQL Database Manager instance.

    Parameters
    ----------
    array_store:
        Optional ASEI back-end (:class:`repro.storage.ArrayStore`).  When
        set, arrays larger than ``externalize_threshold`` elements loaded
        or inserted into the store are shipped to the back-end and
        represented by proxies (the *back-end scenario* of chapter 6).
    externalize_threshold:
        Element-count cutoff above which arrays are externalized
        (default 64; irrelevant without an ``array_store``).
    journal:
        Optional :class:`~repro.storage.durability.DatasetJournal`.
        When set, every update appends its concrete delta to the
        write-ahead log *before* mutating the dataset; use
        :meth:`open` to construct an instance that also replays the
        log on startup (crash recovery).
    """

    def __init__(self, array_store=None, externalize_threshold=64,
                 journal=None):
        self.dataset = Dataset()
        self.functions = FunctionRegistry()
        self.engine = QueryEngine(self.dataset, self.functions)
        self.array_store = array_store
        self.externalize_threshold = int(externalize_threshold)
        self.journal = journal
        #: :class:`~repro.replication.ReplicationState` when this
        #: instance is served as a replication-aware node (the server
        #: sets it); None for embedded use.
        self.replication = None
        #: :class:`~repro.governor.ResourceGovernor` when this instance
        #: is served with admission control (the server sets it); None
        #: for embedded use, where callers may open
        #: ``get_governor().scope(...)`` around ``execute`` themselves.
        self.governor = None
        #: The :class:`~repro.observability.QueryTrace` of the most
        #: recent :meth:`execute` call on this instance (best-effort
        #: under concurrency: server threads each trace their own
        #: request, but ``last_trace`` holds whichever finished last).
        self.last_trace = None
        self.prefixes: Dict[str, str] = {}
        #: MVCC snapshot registry: every read statement pins an
        #: immutable dataset version at its admission seq, so reads
        #: never block behind (or observe half of) an update.
        self.mvcc = SnapshotManager()
        self.dataset.snapshots = self.mvcc
        # prime the published version so concurrent readers always
        # have a consistent state to pin, even before the first write
        self.dataset.publish(0)

    @classmethod
    def open(cls, path, array_store=None, faults=None, fsync=True,
             **kwargs):
        """A durable SSDM: WAL-journaled updates plus crash recovery.

        ``path`` is the journal directory (created on demand) holding
        ``wal.log``.  The log is recovered immediately — truncated at
        the first torn or checksum-failing record, then replayed into
        the fresh dataset — so after a crash the instance reopens in
        the exact state the last fsync'd update left behind.

        ``array_store`` should be a *persistent* back-end
        (:class:`~repro.storage.FileArrayStore` /
        :class:`~repro.storage.SqlArrayStore`); the journal references
        externalized arrays by store id rather than copying chunks into
        the log.  ``faults`` threads a
        :class:`~repro.storage.FaultPlan` into the journal's append
        path for crash-recovery testing.
        """
        from repro.storage.durability import DatasetJournal

        journal = DatasetJournal(
            path, array_store=array_store, faults=faults, fsync=fsync
        )
        instance = cls(
            array_store=array_store, journal=journal, **kwargs
        )
        if faults is not None:
            instance.dataset.set_faults(faults)
        journal.replay(instance.dataset)
        return instance

    def snapshot(self):
        """Compact the journal to the dataset's current state.

        Long logs replay slowly; a snapshot rewrites the log as one
        CLEAR ALL record plus one insert record per non-empty graph
        (atomically, so a crash mid-snapshot keeps the old log).
        Returns the new last sequence number, or None without a
        journal.
        """
        if self.journal is None:
            return None
        return self.journal.snapshot(self.dataset)

    def close(self):
        """Release the journal's file handle (safe to call twice)."""
        if self.journal is not None:
            self.journal.close()

    @classmethod
    def with_triple_store(cls, graph, **kwargs):
        """An SSDM whose default graph is a custom triple store.

        Used with :class:`repro.storage.sqlgraph.SqlTripleGraph` for the
        full back-end scenario of chapter 6 (both metadata triples and
        array chunks live in the RDBMS)::

            ssdm = SSDM.with_triple_store(SqlTripleGraph("data.db"))
        """
        instance = cls(**kwargs)
        instance.dataset.default_graph = graph
        if instance.array_store is None:
            instance.array_store = getattr(graph, "array_store", None)
        return instance

    # -- configuration ------------------------------------------------------------

    def prefix(self, name, base):
        """Register a persistent namespace prefix for all queries."""
        self.prefixes[name] = base
        return self

    def register_function(self, name, fn, cost=1.0, fanout=1.0):
        """Expose a Python callable as a SciSPARQL foreign function."""
        return self.functions.register_foreign(name, fn, cost, fanout)

    def stats(self):
        """Storage-traffic and buffer-pool counters of this instance.

        Returns a dict with a ``storage`` block (the array store's
        :class:`~repro.storage.asei.StorageStats` snapshot, or None
        without an ``array_store``), a ``buffer_pool`` block (the chunk
        pool's hit/miss/prefetch counters), a ``graph`` block (term
        dictionary size plus the default graph's permutation-index
        footprint, when the store exposes them), and the store's
        ``last_resolve`` statistics when a resolve has happened.
        """
        from repro.storage.bufferpool import shared_pool

        store = self.array_store
        pool = getattr(store, "buffer_pool", None)
        if pool is None:
            pool = shared_pool()
        graph = self.dataset.default_graph
        index_stats = getattr(graph, "index_stats", None)
        dictionary = getattr(self.dataset, "term_dictionary", None)
        graph_block = None
        if index_stats is not None or dictionary is not None:
            graph_block = dict(index_stats() if index_stats else {})
            if dictionary is not None:
                graph_block["dictionary"] = dictionary.stats()
        return {
            "graph": graph_block,
            "storage": store.stats.snapshot() if store is not None else None,
            "buffer_pool": pool.stats(),
            "metrics": obs.metrics().snapshot(),
            "last_resolve": getattr(store, "last_resolve_stats", None),
            "durability": {
                "journal": (
                    self.journal.stats() if self.journal is not None
                    else None
                ),
                "last_verify": getattr(store, "last_verify", None),
            },
            "replication": (
                dict(
                    self.replication.snapshot(),
                    wal_seq=(
                        self.journal.last_seq if self.journal is not None
                        else None
                    ),
                )
                if self.replication is not None else None
            ),
            "governor": (
                self.governor.snapshot()
                if self.governor is not None else None
            ),
            "mvcc": self._mvcc_stats(),
        }

    def _mvcc_stats(self):
        """Snapshot-isolation counters for the ``stats`` surface."""
        block = self.mvcc.stats()
        block["published_seq"] = self.dataset.published_seq
        consolidations = self.dataset.default_graph._flushes
        for graph in self.dataset.named_graphs().values():
            consolidations += graph._flushes
        block["consolidations"] = int(consolidations)
        return block

    @property
    def graph(self):
        return self.dataset.default_graph

    # -- data entry ----------------------------------------------------------------

    def add(self, subject, prop, value, graph=None):
        """Insert one triple, externalizing large array values."""
        target = self.dataset.graph(graph)
        target.add(subject, prop, self._store_array(value))
        return self

    def _store_array(self, value):
        """Ship a resident array to the back-end when configured."""
        if (
            self.array_store is not None
            and isinstance(value, NumericArray)
            and value.element_count > self.externalize_threshold
        ):
            return self.array_store.put(value)
        return value

    def load_turtle_text(self, text, graph=None, consolidate=True):
        """Load Turtle data; RDF collections of numbers consolidate into
        arrays (section 5.3.2).  Returns the number of triples added."""
        from repro.loaders.turtle import load_turtle_text
        return load_turtle_text(
            self, text, graph=graph, consolidate=consolidate
        )

    def load_turtle(self, path, graph=None, consolidate=True):
        with open(path) as handle:
            return self.load_turtle_text(
                handle.read(), graph=graph, consolidate=consolidate
            )

    def load_data_cube(self, graph=None):
        """Consolidate RDF Data Cube observations already loaded in the
        graph into arrays (section 5.3.3)."""
        from repro.loaders.datacube import consolidate_data_cube
        return consolidate_data_cube(self, graph=graph)

    def link_file(self, subject, prop, path, graph=None):
        """Attach an external array file (.npy) as a lazy file link."""
        from repro.loaders.filelink import link_npy
        return link_npy(self, subject, prop, path, graph=graph)

    # -- the query pipeline ----------------------------------------------------------

    def parse(self, text):
        return Parser(text, prefixes=self.prefixes).parse()

    def plan(self, text_or_ast, graph=None):
        """Translate + rewrite + optimize; returns (plan, columns)."""
        query = (
            self.parse(text_or_ast) if isinstance(text_or_ast, str)
            else text_or_ast
        )
        with obs.span("plan"):
            plan, columns = translate(query)
            with obs.span("rewrite"):
                plan = rewrite(plan)
            target = self.dataset.graph(None) if graph is None else graph
            plan = optimize(plan, target)
        return plan, columns

    def explain(self, text, objectlog=False, costs=False, analyze=False):
        """The optimized logical plan, pretty-printed.

        With ``objectlog=True`` renders the Datalog-style DNF rules of
        the translated query instead (the ObjectLog form of section
        5.4.4 the host DBMS optimizes).  With ``costs=True``, BGP lines
        are followed by per-pattern cardinality estimates in the order
        the optimizer chose.  With ``analyze=True`` the query is
        *executed* and the plan is followed by the recorded span tree —
        per-phase and per-operator wall times, row counts, and storage
        counters (EXPLAIN ANALYZE).
        """
        plan, columns = self.plan(text)
        if objectlog:
            from repro.algebra.objectlog import to_objectlog
            return to_objectlog(plan, columns)
        text_out = plan.explain()
        if costs:
            from repro.algebra.cost import CostModel
            from repro.algebra.logical import BGP
            from repro.algebra.objectlog import _term
            model = CostModel(self.dataset.default_graph)
            lines = [text_out, "", "-- cost estimates --"]
            stack = [plan]
            while stack:
                node = stack.pop()
                if isinstance(node, BGP):
                    for pattern, estimate in model.annotate_bgp(
                        node.patterns
                    ):
                        lines.append(
                            "  %s %s %s  ~%.1f" % (
                                _term(pattern.subject),
                                _term(pattern.predicate),
                                _term(pattern.value),
                                estimate,
                            )
                        )
                stack.extend(node.children())
            text_out = "\n".join(lines)
        if analyze:
            result = self.execute(text)
            lines = [text_out, ""]
            trace = self.last_trace
            if trace is not None:
                lines.append(trace.render())
            else:
                lines.append("-- trace unavailable (tracing disabled) --")
            if isinstance(result, QueryResult):
                lines.append("-- %d row(s) --" % len(result))
            text_out = "\n".join(lines)
        return text_out

    def execute(self, text, bindings=None, deadline=None, timeout=None,
                at_seq=None):
        """Parse and execute any SciSPARQL statement.

        Returns a :class:`QueryResult` for SELECT, ``bool`` for ASK, a
        :class:`Graph` for CONSTRUCT / DESCRIBE, an update count for
        updates, and the registered function for DEFINE FUNCTION.

        ``deadline`` (a :class:`~repro.lifecycle.Deadline`) or
        ``timeout`` (seconds) bound the execution: the engine, APR, and
        ASEI loops poll the deadline cooperatively and abort with
        :class:`~repro.exceptions.RequestTimeoutError` once it expires.
        Without either, an ambient deadline installed by a caller (the
        SSDM server installs one per request) still applies.

        ``at_seq`` pins a read statement to the *exact* MVCC version
        published at that WAL seq: ahead of the applied state raises
        :class:`~repro.exceptions.ReplicaLaggingError` (retryable —
        the replica is catching up), behind the retention window raises
        :class:`~repro.exceptions.SnapshotGoneError`.  Without it,
        reads pin the latest published version at admission.
        """
        if deadline is None and timeout is not None:
            deadline = Deadline(timeout)
        if deadline is not None:
            with deadline_scope(deadline):
                deadline.check()
                return self._execute_traced(text, bindings, at_seq)
        return self._execute_traced(text, bindings, at_seq)

    def _execute_traced(self, text, bindings, at_seq=None):
        """Run one statement under a fresh ambient QueryTrace."""
        with obs.trace_query(text) as trace:
            if trace is not None:
                self.last_trace = trace
            return self._execute(text, bindings, at_seq)

    def _execute(self, text, bindings=None, at_seq=None):
        with obs.span("parse"):
            statement = self.parse(text)
        if isinstance(statement, (ast.SelectQuery, ast.AskQuery,
                                  ast.ConstructQuery, ast.DescribeQuery)):
            with self._read_snapshot(at_seq):
                if isinstance(statement, ast.SelectQuery):
                    return self._run_select(statement, bindings)
                if isinstance(statement, ast.AskQuery):
                    return self._run_ask(statement, bindings)
                if isinstance(statement, ast.ConstructQuery):
                    return self._run_construct(statement, bindings)
                return self._run_describe(statement, bindings)
        if at_seq is not None:
            raise QueryError("at_seq applies to read statements only")
        if isinstance(statement, ast.FunctionDefinition):
            return self.functions.define(
                statement.name, statement.params, statement.body
            )
        if isinstance(statement, (ast.InsertData, ast.DeleteData,
                                  ast.Modify, ast.ClearGraph)):
            with obs.span("execute"):
                return execute_update(
                    self.engine, self.dataset, statement,
                    store_array=self._store_array,
                    journal=self.journal,
                )
        raise QueryError("cannot execute %r" % (statement,))

    @contextmanager
    def _read_snapshot(self, at_seq=None):
        """Pin one read statement to an immutable dataset version.

        Installs the ambient snapshot the graph read paths route
        through; a nested execute (user-defined functions issuing
        sub-queries) inherits the outer snapshot so one statement
        never mixes two versions.
        """
        if current_snapshot() is not None and at_seq is None:
            yield None
            return
        version = self._resolve_version(at_seq)
        with self.mvcc.reading(version) as snapshot:
            with snapshot_scope(snapshot):
                yield snapshot

    def _resolve_version(self, at_seq):
        dataset = self.dataset
        current = dataset.capture()
        if at_seq is None or at_seq == current.seq:
            return current
        if at_seq > current.seq:
            raise ReplicaLaggingError(
                "requested seq %d is ahead of applied seq %d"
                % (at_seq, current.seq)
            )
        retained = self.mvcc.retained(at_seq)
        if retained is None:
            raise SnapshotGoneError(
                "version at seq %d is no longer retained "
                "(applied seq is %d)" % (at_seq, current.seq)
            )
        return retained

    def select(self, text, bindings=None):
        result = self.execute(text, bindings)
        if not isinstance(result, QueryResult):
            raise QueryError("not a SELECT query")
        return result

    def ask(self, text):
        result = self.execute(text)
        if not isinstance(result, bool):
            raise QueryError("not an ASK query")
        return result

    # -- internals -----------------------------------------------------------------

    def _initial(self, bindings):
        if bindings is None:
            return None
        return Bindings({
            name: _storable(value) for name, value in bindings.items()
        })

    def _run_select(self, query, bindings=None):
        from repro.governor import current_scope

        plan, columns, scope = self._prepare(query)
        budget = current_scope()
        rows = []
        append = rows.append
        with scope, obs.span("execute") as timing:
            for solution in self.engine.run(
                plan, graph=scope.graph, initial=self._initial(bindings)
            ):
                if budget is not None:
                    budget.charge_rows(1, "result materialization")
                get = solution.mapping().get
                append(tuple([_output(get(name)) for name in columns]))
            if timing is not None:
                timing.add("rows", len(rows))
        return QueryResult(columns, rows)

    def _prepare(self, query):
        """Translate + rewrite + optimize, honouring dataset clauses.

        ``FROM`` graphs merge into the query's active default graph;
        ``FROM NAMED`` restricts which named graphs GRAPH patterns see
        (section 3.3.4).  Returns (plan, columns, dataset-scope); the
        scope is a context manager installing the query's dataset view
        on the engine for the duration of evaluation.
        """
        scope = _DatasetScope(self, query)
        with obs.span("plan"):
            plan, columns = translate(query)
            with obs.span("rewrite"):
                plan = rewrite(plan)
            plan = optimize(plan, scope.graph)
        return plan, columns, scope

    def _run_ask(self, query, bindings=None):
        plan, _, scope = self._prepare(query)
        with scope, obs.span("execute"):
            for _ in self.engine.run(
                plan, graph=scope.graph, initial=self._initial(bindings)
            ):
                return True
        return False

    def _run_construct(self, query, bindings=None):
        plan, _, scope = self._prepare(query)
        out = Graph()
        with scope, obs.span("execute"):
            for solution in self.engine.run(
                plan, graph=scope.graph, initial=self._initial(bindings)
            ):
                fresh: Dict[str, BlankNode] = {}
                for template in query.template:
                    triple = self._instantiate_template(
                        template, solution, fresh
                    )
                    if triple is not None:
                        out.add(*triple)
        return out

    def _run_describe(self, query, bindings=None):
        out = Graph()
        targets = []
        if query.where is not None:
            plan, _, scope = self._prepare(query)
            with scope, obs.span("execute"):
                for solution in self.engine.run(
                    plan, graph=scope.graph,
                    initial=self._initial(bindings)
                ):
                    for term in query.terms:
                        if isinstance(term, ast.Var):
                            value = solution.get(term.name)
                            if value is not None:
                                targets.append(value)
                        else:
                            targets.append(term)
        else:
            targets = [
                term for term in query.terms
                if not isinstance(term, ast.Var)
            ]
        for target in targets:
            for triple in self.dataset.default_graph.triples(target):
                out.add_triple(triple)
        return out

    @staticmethod
    def _instantiate_template(template, solution, fresh):
        components = []
        for component in (template.subject, template.predicate,
                          template.value):
            if isinstance(component, ast.Var):
                if component.name.startswith("_anon"):
                    components.append(
                        fresh.setdefault(component.name, BlankNode())
                    )
                    continue
                value = solution.get(component.name)
                if value is None:
                    return None
                components.append(value)
            else:
                components.append(component)
        subject, predicate, value = components
        if not isinstance(subject, (URI, BlankNode)) or not isinstance(
            predicate, URI
        ):
            return None
        return (subject, predicate, value)


class _RestrictedDataset:
    """A query-scoped view of a dataset (FROM / FROM NAMED clauses).

    ``named`` is the list of graph names visible to GRAPH patterns
    (None = all of the base dataset's named graphs); the default graph
    is replaced by the merged FROM graph.
    """

    def __init__(self, base, named, default_graph):
        self._base = base
        self._named = None if named is None else set(named)
        self.default_graph = default_graph

    def graph(self, name=None, create=False):
        if name is None:
            return self.default_graph
        if self._named is not None and name not in self._named:
            return None
        return self._base.graph(name, create=False)

    def named_graphs(self):
        graphs = self._base.named_graphs()
        if self._named is None:
            return graphs
        return {
            name: graph for name, graph in graphs.items()
            if name in self._named
        }


class _DatasetScope:
    """Context manager installing a query's dataset view on the engine."""

    def __init__(self, ssdm, query):
        self._ssdm = ssdm
        self._saved = None
        from_graphs = getattr(query, "from_graphs", None) or []
        from_named = getattr(query, "from_named", None) or []
        if not from_graphs and not from_named:
            self.graph = ssdm.dataset.default_graph
            self._view = None
            return
        merged = Graph()
        for name in from_graphs:
            source = ssdm.dataset.graph(name, create=False)
            if source is not None:
                merged.update(source.triples())
        self.graph = merged
        self._view = _RestrictedDataset(
            ssdm.dataset, from_named if from_named else None, merged
        )

    def __enter__(self):
        if self._view is not None:
            self._saved = self._ssdm.engine.dataset
            self._ssdm.engine.dataset = self._view
        return self

    def __exit__(self, *exc):
        if self._view is not None:
            self._ssdm.engine.dataset = self._saved
        return False


def _output(value):
    """Convert a stored binding to the user-facing runtime value.

    Inlines :func:`repro.engine.functions.runtime` — this runs once per
    result cell, so the extra call per cell is measurable on large
    results.
    """
    if isinstance(value, Literal):
        if value.lang is None and isinstance(
            value.value, (int, float, bool, str)
        ):
            return value.value
    return value
