"""RDF Data Cube vocabulary interpretation (section 5.3.3).

A `qb:DataSet`'s observations form a (possibly sparse) multidimensional
mapping: dimension properties index it, measure properties carry values.
This loader consolidates each (dataset, measure) pair into one dense
:class:`~repro.arrays.NumericArray` plus per-dimension *dictionaries*
(ordered value lists), drastically shrinking the graph while preserving
all information.  Missing cells are filled with NaN.

The consolidated structure is attached with SSDM vocabulary terms::

    ?ds  ssdm:dataArray   [ ssdm:measure <measureProp> ;
                            ssdm:array <NumericArray> ] .
    ?ds  ssdm:dimension   [ ssdm:property <dimProp> ;
                            ssdm:order "1"^^xsd:integer ;
                            ssdm:values <1-D array or RDF list> ] .
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.arrays.nma import NumericArray
from repro.rdf.namespace import Namespace, QB, RDF
from repro.rdf.term import BlankNode, Literal, URI, term_key

#: Vocabulary for the consolidated structures SSDM attaches.
SSDM_NS = Namespace("http://udbl.uu.se/ssdm#")


def consolidate_data_cube(ssdm, graph=None):
    """Consolidate every qb:DataSet in the graph; returns statistics."""
    target = ssdm.dataset.graph(graph)
    datasets = list(target.subjects(RDF.type, QB.DataSet))
    stats = {"datasets": 0, "observations_removed": 0, "arrays": 0}
    for dataset in datasets:
        result = _consolidate_dataset(target, dataset)
        if result:
            stats["datasets"] += 1
            stats["observations_removed"] += result["observations"]
            stats["arrays"] += result["arrays"]
    return stats


def _consolidate_dataset(graph, dataset):
    observations = [
        triple.subject
        for triple in graph.triples(None, QB.dataSet, dataset)
    ]
    if not observations:
        return None
    dimensions, measures = _structure(graph, dataset, observations)
    if not dimensions or not measures:
        return None

    # build per-dimension dictionaries in deterministic order
    dimension_values: List[List[object]] = []
    for dim in dimensions:
        values = set()
        for obs in observations:
            value = graph.value(obs, dim)
            if value is None:
                return None              # incomplete observation: skip
            values.add(value)
        dimension_values.append(sorted(values, key=term_key))
    shape = tuple(len(values) for values in dimension_values)
    positions = [
        {value: index for index, value in enumerate(values)}
        for values in dimension_values
    ]

    arrays = {}
    for measure in measures:
        dense = np.full(shape, math.nan, dtype=np.float64)
        for obs in observations:
            index = tuple(
                positions[axis][graph.value(obs, dim)]
                for axis, dim in enumerate(dimensions)
            )
            value = graph.value(obs, measure)
            if isinstance(value, Literal) and value.is_numeric():
                dense[index] = float(value.value)
        arrays[measure] = NumericArray(dense)

    # remove the observations
    removed = 0
    for obs in observations:
        for triple in list(graph.triples(obs, None, None)):
            graph.remove(*triple)
            removed += 1

    # attach consolidated structures
    for order, (dim, values) in enumerate(
        zip(dimensions, dimension_values), start=1
    ):
        node = BlankNode()
        graph.add(dataset, SSDM_NS.dimension, node)
        graph.add(node, SSDM_NS.property, dim)
        graph.add(node, SSDM_NS.order, Literal(order))
        if all(isinstance(v, Literal) and v.is_numeric() for v in values):
            graph.add(node, SSDM_NS.values,
                      NumericArray([v.value for v in values]))
        else:
            _attach_list(graph, node, SSDM_NS.values, values)
    for measure, array in arrays.items():
        node = BlankNode()
        graph.add(dataset, SSDM_NS.dataArray, node)
        graph.add(node, SSDM_NS.measure, measure)
        graph.add(node, SSDM_NS.array, array)
    return {"observations": removed, "arrays": len(arrays)}


def _structure(graph, dataset, observations):
    """Dimension and measure properties, from the DSD when present,
    otherwise inferred from the observations themselves."""
    dimensions, measures = [], []
    dsd = graph.value(dataset, QB.structure)
    if dsd is not None:
        components = [
            triple.value for triple in graph.triples(dsd, QB.component)
        ]
        for component in components:
            dim = graph.value(component, QB.dimension)
            if dim is not None:
                dimensions.append(dim)
            measure = graph.value(component, QB.measure)
            if measure is not None:
                measures.append(measure)
    if not dimensions:
        # inference: properties whose values repeat across observations
        # with non-numeric or shared values are dimensions; numeric
        # observation-specific properties are measures
        sample = observations[0]
        for prop in graph.properties(sample):
            if prop in (RDF.type, QB.dataSet):
                continue
            values = [graph.value(obs, prop) for obs in observations]
            numeric = all(
                isinstance(v, Literal) and v.is_numeric()
                for v in values if v is not None
            )
            distinct = len({
                v for v in values if v is not None
            })
            if numeric and distinct == len(observations):
                measures.append(prop)
            else:
                dimensions.append(prop)
    dimensions.sort(key=term_key)
    measures.sort(key=term_key)
    return dimensions, measures


def _attach_list(graph, subject, prop, values):
    head = BlankNode()
    graph.add(subject, prop, head)
    node = head
    for index, value in enumerate(values):
        graph.add(node, RDF.first, value)
        if index == len(values) - 1:
            graph.add(node, RDF.rest, RDF.nil)
        else:
            nxt = BlankNode()
            graph.add(node, RDF.rest, nxt)
            node = nxt
