"""Line-based NTriples reader (a Turtle subset, one triple per line)."""

from __future__ import annotations

from repro.loaders.turtle import TurtleParser


def load_ntriples_text(ssdm, text, graph=None):
    """Parse NTriples text into an SSDM graph; returns triples added.

    NTriples is a syntactic subset of Turtle, so the Turtle parser (with
    consolidation disabled — NTriples has no collection shorthand) handles
    it directly.
    """
    parser = TurtleParser(text, consolidate=False)
    count = 0
    for subject, predicate, value in parser.triples():
        ssdm.add(subject, predicate, value, graph=graph)
        count += 1
    return count
