"""File links: external array files as lazy proxies (mediator scenario).

Chapter 7's Matlab integration keeps massive arrays in native ``.mat``
files while SSDM's RDF graph holds metadata plus *file-linked* array
proxies; chunking and caching are left to the OS file system.  We model
the native files with NumPy ``.npy`` files: :class:`NpyLinkStore` is a
read-only ASEI back-end whose "chunks" are windows of a memory-mapped
file, so linked arrays participate in the exact same APR machinery as
back-end-stored ones.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.arrays.chunks import ChunkLayout, DEFAULT_CHUNK_BYTES
from repro.arrays.nma import dtype_code, ELEMENT_TYPES
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import StorageError
from repro.storage.asei import ArrayMeta, ArrayStore


class NpyLinkStore(ArrayStore):
    """Read-only ASEI back-end over externally produced .npy files.

    Array ids are the (absolute) file paths; linking is explicit via
    :meth:`link`.
    """

    supports_batch = True
    supports_ranges = True
    supports_aggregates = False
    #: memory-mapped windows are safe for concurrent readers
    thread_safe = True

    def __init__(self, chunk_bytes=DEFAULT_CHUNK_BYTES):
        super().__init__(chunk_bytes=chunk_bytes)
        self._mmaps: Dict[str, np.ndarray] = {}

    def link(self, path):
        """Register a .npy file; returns a whole-array proxy for it."""
        path = os.path.abspath(path)
        flat = self._mmap(path)
        meta = self._meta.get(path)
        if meta is None:
            header = np.load(path, mmap_mode="r")
            element_type = dtype_code(header.dtype)
            layout = ChunkLayout(
                header.size, header.dtype.itemsize, self.chunk_bytes
            )
            meta = ArrayMeta(path, element_type, header.shape, layout)
            self._meta[path] = meta
        return ArrayProxy(self, path, meta.element_type, meta.shape)

    def _mmap(self, path):
        flat = self._mmaps.get(path)
        if flat is None:
            if not os.path.exists(path):
                raise StorageError("linked file %r does not exist" % path)
            array = np.load(path, mmap_mode="r")
            flat = array.reshape(-1)
            self._mmaps[path] = flat
        return flat

    # -- ASEI contract -----------------------------------------------------------

    def put(self, array, chunk_bytes=None):
        raise StorageError("NpyLinkStore is read-only; use link(path)")

    def _write_chunk(self, array_id, chunk_id, data):
        raise StorageError("NpyLinkStore is read-only")

    def _read_chunk(self, array_id, chunk_id):
        meta = self.meta(array_id)
        layout = meta.layout
        count = layout.chunk_extent(chunk_id)
        if count == 0:
            raise StorageError(
                "chunk %d outside linked array %r" % (chunk_id, array_id)
            )
        start = chunk_id * layout.elements_per_chunk
        flat = self._mmap(array_id)
        return np.array(flat[start:start + count])

    def _read_chunks(self, array_id, chunk_ids):
        return {cid: self._read_chunk(array_id, cid) for cid in chunk_ids}

    def _read_chunk_ranges(self, array_id, ranges):
        result = {}
        for first, last, step in ranges:
            for chunk_id in range(first, last + 1, step):
                result[chunk_id] = self._read_chunk(array_id, chunk_id)
        return result


def link_npy(ssdm, subject, prop, path, graph=None, store=None):
    """Link an external .npy file as an array value of (subject, prop).

    An :class:`NpyLinkStore` is kept on the SSDM instance and shared by
    all links; the triple's value is the lazy whole-array proxy.
    """
    if store is None:
        store = getattr(ssdm, "_npy_link_store", None)
        if store is None:
            store = NpyLinkStore()
            ssdm._npy_link_store = store
    proxy = store.link(path)
    ssdm.dataset.graph(graph).add(subject, prop, proxy)
    return proxy
