"""Post-hoc consolidation of RDF collections into arrays.

For graphs loaded without consolidation (or built by INSERT), this pass
finds rdf:first / rdf:rest linked lists whose leaves are all numbers and
whose nesting is rectangular, replaces each with one
:class:`~repro.arrays.NumericArray` value, and deletes the list scaffolding
— recovering the 13-triples-to-1 reduction of the Figure 4 example
(dissertation sections 2.3.5.1, 5.3.2).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.arrays.nma import NumericArray
from repro.rdf.namespace import RDF
from repro.rdf.term import BlankNode, Literal


def consolidate_collections(graph):
    """Consolidate numeric collections in-place; returns statistics.

    The result dict reports how many arrays were formed and how many
    triples the graph shrank by.
    """
    heads = _find_collection_heads(graph)
    arrays_formed = 0
    triples_before = len(graph)
    for head in heads:
        replaced = _consolidate_head(graph, head)
        if replaced:
            arrays_formed += 1
    return {
        "arrays": arrays_formed,
        "triples_removed": triples_before - len(graph),
    }


def _find_collection_heads(graph):
    """List nodes: list cells referenced by a non-list property."""
    heads = []
    for triple in list(graph.triples(None, RDF.first, None)):
        cell = triple.subject
        referenced_as_value = any(
            t.property not in (RDF.rest, RDF.first)
            for t in graph.triples(None, None, cell)
        )
        has_list_parent = any(
            t.property in (RDF.rest, RDF.first)
            for t in graph.triples(None, None, cell)
        )
        if referenced_as_value or not has_list_parent:
            heads.append(cell)
    return heads


def _read_list(graph, head, visiting=None):
    """Read a (possibly nested) list into Python values; None when the
    structure is not a clean numeric list."""
    visiting = visiting or set()
    if head in visiting:
        return None                      # cyclic structure
    values = []
    node = head
    while True:
        if node == RDF.nil:
            break
        firsts = list(graph.triples(node, RDF.first, None))
        rests = list(graph.triples(node, RDF.rest, None))
        if len(firsts) != 1 or len(rests) != 1:
            return None
        item = firsts[0].value
        if isinstance(item, Literal) and item.is_numeric():
            values.append(item.value)
        elif isinstance(item, BlankNode):
            nested = _read_list(
                graph, item, visiting | {head}
            )
            if nested is None:
                return None
            values.append(nested)
        else:
            return None
        node = rests[0].value
        if not isinstance(node, (BlankNode,)) and node != RDF.nil:
            return None
    return values if values else None


def _list_cells(graph, head):
    cells = []
    node = head
    while node != RDF.nil and isinstance(node, BlankNode):
        cells.append(node)
        rests = list(graph.triples(node, RDF.rest, None))
        if len(rests) != 1:
            break
        node = rests[0].value
    return cells


def _consolidate_head(graph, head):
    values = _read_list(graph, head)
    if values is None:
        return False
    try:
        array = NumericArray(values)
    except Exception:
        return False                     # ragged nesting: leave as graph
    # rewire every non-list reference to the head
    parents = [
        triple for triple in graph.triples(None, None, head)
        if triple.property not in (RDF.rest,)
    ]
    if not parents:
        return False
    for triple in parents:
        graph.remove(*triple)
        graph.add(triple.subject, triple.property, array)
    # delete the list scaffolding (top level and nested)
    _delete_cells(graph, head)
    return True


def _delete_cells(graph, head):
    for cell in _list_cells(graph, head):
        for triple in list(graph.triples(cell, None, None)):
            if triple.property == RDF.first and isinstance(
                triple.value, BlankNode
            ):
                _delete_cells(graph, triple.value)
            graph.remove(*triple)
