"""RDB-to-RDF direct mapping (dissertation section 2.3.1).

SSDM inherits SWARD-style mediation of relational databases: an existing
relational schema becomes queryable as RDF.  This module implements the
W3C *Direct Mapping* conventions over SQLite:

- each table ``T`` maps to class ``<base>T``;
- each row maps to subject ``<base>T/<pk>`` (the primary-key value) or a
  fresh blank node when the table has no primary key;
- each column ``c`` maps to property ``<base>T#c``;
- a foreign-key column referencing ``S(pk)`` yields an object property
  ``<base>T#ref-c`` pointing at the referenced row's subject;
- NULLs produce no triple.

The paper's system rewrites SPARQL into SQL at query time; here the view
is materialized into the (indexed, in-memory) graph at load time, which
preserves the observable semantics for a snapshot — the substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional

from repro.exceptions import SciSparqlError
from repro.rdf.namespace import RDF
from repro.rdf.term import BlankNode, Literal, URI


class RelationalView:
    """Maps a SQLite database's tables into RDF triples."""

    def __init__(self, database, base_uri="http://example.org/db/"):
        if isinstance(database, sqlite3.Connection):
            self._connection = database
        else:
            self._connection = sqlite3.connect(database)
        if not base_uri.endswith(("/", "#")):
            base_uri += "/"
        self.base_uri = base_uri

    def tables(self):
        rows = self._connection.execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
            " AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        return [name for (name,) in rows]

    def _columns(self, table):
        """[(name, is_pk)] for a table, in declaration order."""
        rows = self._connection.execute(
            "PRAGMA table_info(%s)" % _quote(table)
        ).fetchall()
        return [(row[1], bool(row[5])) for row in rows]

    def _foreign_keys(self, table):
        """{column: (referenced_table, referenced_column)}."""
        rows = self._connection.execute(
            "PRAGMA foreign_key_list(%s)" % _quote(table)
        ).fetchall()
        return {row[3]: (row[2], row[4]) for row in rows}

    def class_uri(self, table):
        return URI(self.base_uri + table)

    def property_uri(self, table, column):
        return URI("%s%s#%s" % (self.base_uri, table, column))

    def row_subject(self, table, pk_value):
        return URI("%s%s/%s" % (self.base_uri, table, pk_value))

    def triples(self, tables=None):
        """Yield the direct-mapping triples of the selected tables."""
        for table in tables or self.tables():
            columns = self._columns(table)
            if not columns:
                continue
            pk_columns = [name for name, is_pk in columns if is_pk]
            foreign = self._foreign_keys(table)
            names = [name for name, _ in columns]
            cursor = self._connection.execute(
                "SELECT %s FROM %s" % (
                    ", ".join(_quote(n) for n in names), _quote(table)
                )
            )
            for row in cursor:
                record = dict(zip(names, row))
                if pk_columns and all(
                    record[c] is not None for c in pk_columns
                ):
                    key = "_".join(str(record[c]) for c in pk_columns)
                    subject = self.row_subject(table, key)
                else:
                    subject = BlankNode()
                yield (subject, RDF.type, self.class_uri(table))
                for name in names:
                    value = record[name]
                    if value is None:
                        continue
                    if name in foreign:
                        ref_table, _ = foreign[name]
                        yield (
                            subject,
                            self.property_uri(table, "ref-" + name),
                            self.row_subject(ref_table, value),
                        )
                    yield (
                        subject,
                        self.property_uri(table, name),
                        _literal(value),
                    )

    def populate(self, graph, tables=None):
        """Materialize the view into a graph; returns triples added."""
        count = 0
        for subject, prop, value in self.triples(tables):
            graph.add(subject, prop, value)
            count += 1
        return count


def load_relational(ssdm, database, base_uri="http://example.org/db/",
                    tables=None, graph=None):
    """Expose a relational database to SciSPARQL queries.

    Returns the number of triples materialized into the target graph.
    """
    view = RelationalView(database, base_uri)
    return view.populate(ssdm.dataset.graph(graph), tables)


def _literal(value):
    if isinstance(value, bool):
        return Literal(value)
    if isinstance(value, (int, float, str)):
        return Literal(value)
    if isinstance(value, bytes):
        return Literal(value.hex())
    raise SciSparqlError("cannot map SQL value %r" % (value,))


def _quote(identifier):
    if not identifier.replace("_", "").isalnum():
        raise SciSparqlError("suspicious SQL identifier %r" % identifier)
    return '"%s"' % identifier
