"""Data loaders for RDF with Arrays.

- :mod:`repro.loaders.turtle` — Turtle reader with array consolidation:
  numeric RDF collections become :class:`~repro.arrays.NumericArray`
  values while loading (dissertation section 5.3.2).
- :mod:`repro.loaders.ntriples` — line-based NTriples reader.
- :mod:`repro.loaders.collections` — post-hoc consolidation of
  rdf:first/rdf:rest list structures already in a graph.
- :mod:`repro.loaders.datacube` — RDF Data Cube vocabulary interpretation:
  qb:Observations collapse into dense arrays plus dimension dictionaries
  (section 5.3.3).
- :mod:`repro.loaders.filelink` — external array files linked as lazy
  proxies (the *mediator scenario*; the Matlab integration's .mat files
  are modelled by .npy files).
"""

from repro.loaders.turtle import TurtleParser, load_turtle_text
from repro.loaders.ntriples import load_ntriples_text
from repro.loaders.collections import consolidate_collections
from repro.loaders.datacube import consolidate_data_cube
from repro.loaders.filelink import NpyLinkStore, link_npy
from repro.loaders.rdbview import RelationalView, load_relational
from repro.loaders.csvdata import load_csv_array, load_csv_rows

__all__ = [
    "TurtleParser",
    "load_turtle_text",
    "load_ntriples_text",
    "consolidate_collections",
    "consolidate_data_cube",
    "NpyLinkStore",
    "link_npy",
    "RelationalView",
    "load_relational",
    "load_csv_array",
    "load_csv_rows",
]
