"""CSV ingestion: numeric tables as arrays, mixed tables as RDF rows.

Scientists' third storage habit (after binary formats and spreadsheets,
section 2.3.4) is plain CSV.  Two mappings are provided:

- :func:`load_csv_array` — an all-numeric CSV becomes ONE triple whose
  value is the 2-D array (consolidation, as for collections);
- :func:`load_csv_rows` — a header-led CSV maps like a spreadsheet:
  each row a subject, each column a property (the Chelonia-style
  row/variable mapping of Figure 2/3).
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional

import numpy as np

from repro.arrays.nma import NumericArray
from repro.exceptions import SciSparqlError
from repro.rdf.term import BlankNode, Literal, URI


def _reader(source):
    if hasattr(source, "read"):
        return csv.reader(source)
    if "\n" not in source and source.endswith(".csv"):
        return csv.reader(open(source, newline=""))
    return csv.reader(io.StringIO(source))


def load_csv_array(ssdm, source, subject, prop, graph=None):
    """Load an all-numeric CSV as one array-valued triple.

    ``source`` is a path, CSV text, or file object.  Returns the array.
    """
    rows: List[List[float]] = []
    for record in _reader(source):
        if not record:
            continue
        try:
            rows.append([float(cell) for cell in record])
        except ValueError:
            raise SciSparqlError(
                "non-numeric cell in CSV array: %r" % (record,)
            )
    if not rows:
        raise SciSparqlError("empty CSV array")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise SciSparqlError("ragged CSV rows")
    array = NumericArray(np.asarray(rows, dtype=np.float64))
    if array.shape[0] == 1:
        array = NumericArray(array.to_numpy().reshape(-1))
    ssdm.add(subject, prop, array, graph=graph)
    return array


def load_csv_rows(ssdm, source, base_uri, row_class=None, graph=None,
                  key_column=None):
    """Load a header-led CSV as one RDF node per row.

    Column names become properties ``<base_uri><name>``; numeric-looking
    cells become numeric literals.  ``key_column`` (a header name) mints
    row URIs ``<base_uri>row/<key>``; otherwise rows are blank nodes.
    Returns the number of triples added.
    """
    if not base_uri.endswith(("/", "#")):
        base_uri += "/"
    reader = _reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise SciSparqlError("empty CSV document")
    header = [name.strip() for name in header]
    if key_column is not None and key_column not in header:
        raise SciSparqlError("key column %r not in header" % key_column)
    properties = [URI(base_uri + name) for name in header]
    count = 0
    for record in reader:
        if not record:
            continue
        cells = dict(zip(header, record))
        if key_column is not None:
            subject = URI("%srow/%s" % (base_uri, cells[key_column]))
        else:
            subject = BlankNode()
        if row_class is not None:
            from repro.rdf.namespace import RDF
            ssdm.add(subject, RDF.type, row_class, graph=graph)
            count += 1
        for name, prop, cell in zip(header, properties, record):
            cell = cell.strip()
            if cell == "":
                continue
            ssdm.add(subject, prop, _cell_literal(cell), graph=graph)
            count += 1
    return count


def _cell_literal(cell):
    try:
        return Literal(int(cell))
    except ValueError:
        pass
    try:
        return Literal(float(cell))
    except ValueError:
        pass
    if cell.lower() in ("true", "false"):
        return Literal(cell.lower() == "true")
    return Literal(cell)
