"""Turtle reader with on-the-fly array consolidation.

Implements the Turtle subset used throughout the dissertation: prefix
directives (both ``@prefix`` and SPARQL-style ``PREFIX``), predicate lists
with ``;`` and ``,``, blank-node property lists, typed and language-tagged
literals, and RDF collections.

Collections of numbers — ``:s :p ((1 2) (3 4))`` — are *consolidated*
while importing (section 5.3.2): instead of materializing the 13-triple
linked-list graph of Figure 4, the value becomes a single
:class:`~repro.arrays.NumericArray` (which SSDM may then externalize).
With ``consolidate=False`` the standard rdf:first/rdf:rest representation
is produced instead, which is what benchmark E5/E6 compare against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arrays.nma import NumericArray
from repro.exceptions import ParseError
from repro.rdf.namespace import RDF, WELL_KNOWN_PREFIXES
from repro.rdf.term import BlankNode, Literal, URI
from repro.sparql.lexer import (
    BLANK, DECIMAL, DOUBLE, EOF, INTEGER, IRI, LANGTAG, NAME, PNAME, PUNCT,
    STRING, Lexer,
)


def load_turtle_text(ssdm, text, graph=None, consolidate=True):
    """Parse Turtle text into an SSDM graph; returns triples added."""
    parser = TurtleParser(text, consolidate=consolidate)
    count = 0
    for subject, predicate, value in parser.triples():
        ssdm.add(subject, predicate, value, graph=graph)
        count += 1
    return count


class TurtleParser:
    """Streaming Turtle parser producing (subject, property, value)."""

    def __init__(self, text, consolidate=True, prefixes=None):
        self.tokens = Lexer(text).tokens()
        self.position = 0
        self.consolidate = consolidate
        self.prefixes = dict(WELL_KNOWN_PREFIXES)
        if prefixes:
            self.prefixes.update(prefixes)
        self.base = None
        self._bnodes: Dict[str, BlankNode] = {}
        self._out: List[Tuple[object, object, object]] = []

    # -- token plumbing --------------------------------------------------------

    def _peek(self):
        return self.tokens[min(self.position, len(self.tokens) - 1)]

    def _next(self):
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def _error(self, message, token=None):
        token = token or self._peek()
        raise ParseError(message, token.line, token.column)

    def _at_punct(self, value):
        token = self._peek()
        return token.kind == PUNCT and token.value == value

    def _accept_punct(self, value):
        if self._at_punct(value):
            self._next()
            return True
        return False

    def _expect_punct(self, value):
        if not self._accept_punct(value):
            self._error("expected %r" % value)

    # -- document level ----------------------------------------------------------

    def triples(self):
        """Yield all triples of the document."""
        while self._peek().kind != EOF:
            if self._directive():
                continue
            self._out = []
            subject = self._subject()
            self._predicate_object_list(subject)
            self._expect_punct(".")
            yield from self._out
        return

    def _directive(self):
        token = self._peek()
        if token.kind == LANGTAG and token.value in ("prefix", "base"):
            self._next()
            if token.value == "prefix":
                self._prefix_declaration()
            else:
                iri = self._next()
                if iri.kind != IRI:
                    self._error("expected IRI after @base")
                self.base = iri.value
            self._expect_punct(".")
            return True
        if token.kind == NAME and token.value.upper() in ("PREFIX", "BASE"):
            self._next()
            if token.value.upper() == "PREFIX":
                self._prefix_declaration()
            else:
                iri = self._next()
                if iri.kind != IRI:
                    self._error("expected IRI after BASE")
                self.base = iri.value
            self._accept_punct(".")
            return True
        return False

    def _prefix_declaration(self):
        token = self._next()
        if token.kind == PUNCT and token.value == ":":
            prefix = ""
        elif token.kind == PNAME and token.value[1] == "":
            prefix = token.value[0]
        else:
            self._error("expected prefix name ending in ':'", token)
        iri = self._next()
        if iri.kind != IRI:
            self._error("expected IRI in prefix declaration", iri)
        self.prefixes[prefix] = iri.value

    # -- triples -------------------------------------------------------------------

    def _subject(self):
        token = self._peek()
        if token.kind == PUNCT and token.value == "[":
            return self._blank_node_property_list()
        if token.kind == PUNCT and token.value == "(":
            return self._collection()
        term = self._term()
        if isinstance(term, Literal) or isinstance(term, NumericArray):
            self._error("literal cannot be a subject")
        return term

    def _predicate_object_list(self, subject):
        while True:
            predicate = self._predicate()
            while True:
                value = self._object()
                self._out.append((subject, predicate, value))
                if not self._accept_punct(","):
                    break
            if not self._accept_punct(";"):
                return
            # allow trailing semicolon before '.' or ']'
            token = self._peek()
            if token.kind == PUNCT and token.value in (".", "]"):
                return

    def _predicate(self):
        token = self._peek()
        if token.kind == NAME and token.value == "a":
            self._next()
            return RDF.type
        term = self._term()
        if not isinstance(term, URI):
            self._error("predicate must be a URI")
        return term

    def _object(self):
        token = self._peek()
        if token.kind == PUNCT and token.value == "[":
            return self._blank_node_property_list()
        if token.kind == PUNCT and token.value == "(":
            return self._collection()
        return self._term()

    def _blank_node_property_list(self):
        self._expect_punct("[")
        node = BlankNode()
        if self._accept_punct("]"):
            return node
        self._predicate_object_list(node)
        self._expect_punct("]")
        return node

    def _collection(self):
        """A collection: consolidated array or rdf:first/rest chain."""
        if self.consolidate:
            start = self.position
            array = self._try_numeric_collection()
            if array is not None:
                return array
            self.position = start
        self._expect_punct("(")
        items = []
        while not self._at_punct(")"):
            items.append(self._object())
        self._expect_punct(")")
        if not items:
            return RDF.nil
        head = BlankNode()
        node = head
        for index, item in enumerate(items):
            self._out.append((node, RDF.first, item))
            if index == len(items) - 1:
                self._out.append((node, RDF.rest, RDF.nil))
            else:
                nxt = BlankNode()
                self._out.append((node, RDF.rest, nxt))
                node = nxt
        return head

    def _try_numeric_collection(self):
        if not self._accept_punct("("):
            return None
        values = []
        while not self._at_punct(")"):
            token = self._peek()
            if token.kind in (INTEGER, DECIMAL, DOUBLE):
                self._next()
                values.append(token.value)
            elif token.kind == PUNCT and token.value == "-":
                self._next()
                number = self._peek()
                if number.kind not in (INTEGER, DECIMAL, DOUBLE):
                    return None
                self._next()
                values.append(-number.value)
            elif token.kind == PUNCT and token.value == "(":
                nested = self._try_numeric_collection()
                if nested is None:
                    return None
                values.append(nested.to_nested_lists())
            else:
                return None
        self._expect_punct(")")
        if not values:
            return None
        try:
            return NumericArray(values)
        except Exception:
            return None

    # -- terms ----------------------------------------------------------------------

    def _term(self):
        token = self._next()
        if token.kind == IRI:
            return URI(self._resolve(token.value))
        if token.kind == PNAME:
            prefix, local = token.value
            try:
                return URI(self.prefixes[prefix] + local)
            except KeyError:
                self._error("undefined prefix %r" % prefix, token)
        if token.kind == BLANK:
            return self._bnodes.setdefault(token.value, BlankNode())
        if token.kind == STRING:
            return self._literal_tail(token.value)
        if token.kind == INTEGER:
            return Literal(token.value)
        if token.kind in (DECIMAL, DOUBLE):
            return Literal(float(token.value))
        if token.kind == PUNCT and token.value in ("-", "+"):
            number = self._next()
            if number.kind not in (INTEGER, DECIMAL, DOUBLE):
                self._error("expected number after sign", number)
            value = number.value if token.value == "+" else -number.value
            return Literal(value)
        if token.kind == NAME:
            if token.value == "true":
                return Literal(True)
            if token.value == "false":
                return Literal(False)
        self._error("unexpected token %r" % (token.value,), token)

    def _literal_tail(self, text):
        token = self._peek()
        if token.kind == LANGTAG:
            self._next()
            return Literal(text, lang=token.value)
        if token.kind == PUNCT and token.value == "^^":
            self._next()
            datatype_token = self._next()
            if datatype_token.kind == IRI:
                datatype = URI(self._resolve(datatype_token.value))
            elif datatype_token.kind == PNAME:
                prefix, local = datatype_token.value
                datatype = URI(self.prefixes[prefix] + local)
            else:
                self._error("expected datatype IRI", datatype_token)
            return Literal.from_lexical(text, datatype)
        return Literal(text)

    def _resolve(self, iri):
        if self.base and "://" not in iri and not iri.startswith("urn:"):
            return self.base + iri
        return iri
