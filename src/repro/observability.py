"""Query observability: traces, metrics, and the slow-query log.

The dissertation's evaluation chapters (§6.3 mini-benchmark, §6.4
BISTAB) hinge on knowing *where* query time goes — parse, plan, chunk
I/O, join loops.  This module is the zero-dependency substrate the whole
request path reports into:

- **Spans** — every :meth:`SSDM.execute <repro.ssdm.SSDM.execute>`
  builds one :class:`QueryTrace`: a tree of timed :class:`Span` nodes
  (``parse``, ``plan``, ``execute``, per-operator ``bgp``/``join``/
  ``filter``/``aggregate``, and storage spans ``chunk_fetch``/
  ``pool_hit``/``wal_append``) carrying counters such as rows in/out,
  chunks, bytes, and pool hits.  The active trace is *ambient* (a
  thread-local), so instrumentation sites only say ``with
  span("parse"):`` — no trace object is threaded through signatures.
  Deadline expiries, cancellations, and injected faults are recorded as
  trace *events*.
- **Metrics** — a process-wide :class:`MetricsRegistry` of counters,
  gauges, and fixed-log-bucket :class:`Histogram` s, exported through
  ``SSDM.stats()["metrics"]``, the server's ``metrics`` op, and
  ``scripts/dump_metrics.py``.  The clock is injectable
  (:func:`set_clock`), so tests never depend on wall-clock randomness.
- **Slow-query log** — a bounded :class:`SlowQueryLog` keeping the N
  *worst* finished traces above a latency threshold, surfaced through
  the server's ``slowlog`` op and rendered by
  ``SSDM.explain(text, analyze=True)``.

Threading model: a trace belongs to the thread that opened it, but
helper threads fetching on its behalf (the APR prefetch pool) may
*adopt* it — :func:`capture` at submit time, :func:`activate` inside
the worker — and their storage spans accumulate under the capturing
span.  Aggregate spans and child creation are guarded by a per-trace
lock; the per-row operator accounting in the engine stays lock-free
because only the query thread touches it.

Everything here must stay import-light: this module is imported by the
lifecycle, storage, and engine layers and must never import them back.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

__all__ = [
    "Span", "QueryTrace", "MetricsRegistry", "Counter", "Gauge",
    "Histogram", "SlowQueryLog", "span", "observe_span", "tick", "add",
    "event",
    "trace_query", "current_trace", "current_span", "capture",
    "activate", "set_tracing", "tracing_enabled", "metrics",
    "set_metrics", "slow_query_log", "set_slow_query_log", "set_clock",
]

#: Injectable time sources.  ``_clock`` is the monotonic span timer;
#: ``_wall`` stamps traces for the slow-query log.  Tests swap them via
#: :func:`set_clock` so no assertion ever races real time.
_clock: Callable[[], float] = time.perf_counter
_wall: Callable[[], float] = time.time

#: Hard caps keeping a pathological query from ballooning its trace.
MAX_CHILD_SPANS = 128
MAX_EVENTS = 256
MAX_TEXT_CHARS = 2000


def set_clock(clock=None, wall=None):
    """Install replacement time sources; returns the previous pair.

    ``clock`` feeds span durations (monotonic seconds), ``wall`` feeds
    trace start stamps.  Passing None keeps the current source.
    """
    global _clock, _wall
    previous = (_clock, _wall)
    if clock is not None:
        _clock = clock
    if wall is not None:
        _wall = wall
    return previous


# -- spans --------------------------------------------------------------------------


class Span:
    """One timed node of a query trace.

    ``elapsed`` accumulates across ``calls`` begin/end cycles, so a span
    can describe either a single phase (``parse``) or an *aggregate* of
    many short operations (every ``chunk_fetch`` of a query folds into
    one span, keeping trace size bounded no matter how many chunks
    moved).  ``counters`` holds integers such as ``rows_out`` or
    ``bytes``.
    """

    __slots__ = ("name", "elapsed", "calls", "counters", "children",
                 "_aggregates", "_overflow")

    def __init__(self, name):
        self.name = name
        self.elapsed = 0.0
        self.calls = 0
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self._aggregates: Optional[Dict[str, "Span"]] = None
        self._overflow = 0

    def add(self, name, delta=1):
        """Add ``delta`` to one counter (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def child(self, name):
        """Append a fresh child span (bounded; overflow is counted)."""
        if len(self.children) >= MAX_CHILD_SPANS:
            self._overflow += 1
            return self.aggregate_child("(truncated)")
        node = Span(name)
        self.children.append(node)
        return node

    def aggregate_child(self, name):
        """The accumulator child of this name, created on first use."""
        if self._aggregates is None:
            self._aggregates = {}
        node = self._aggregates.get(name)
        if node is None:
            node = Span(name)
            self._aggregates[name] = node
            self.children.append(node)
        return node

    def total(self, counter):
        """This span's counter summed over the whole subtree."""
        value = self.counters.get(counter, 0)
        for child in self.children:
            value += child.total(counter)
        return value

    def to_dict(self):
        payload = {
            "name": self.name,
            "elapsed_ms": round(self.elapsed * 1000.0, 3),
            "calls": self.calls,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        if self._overflow:
            payload["truncated_children"] = self._overflow
        return payload

    def find(self, name):
        """Depth-first search for the first descendant span by name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def render(self, indent=0, out=None):
        """Pretty-print the subtree, one line per span."""
        lines = [] if out is None else out
        details = ["%.3fms" % (self.elapsed * 1000.0)]
        if self.calls > 1:
            details.append("calls=%d" % self.calls)
        for key in sorted(self.counters):
            value = self.counters[key]
            if isinstance(value, float):
                details.append("%s=%.3g" % (key, value))
            else:
                details.append("%s=%d" % (key, value))
        lines.append("%s%s  %s" % ("  " * indent, self.name,
                                   " ".join(details)))
        for child in self.children:
            child.render(indent + 1, lines)
        if self._overflow:
            lines.append("%s... %d more spans truncated"
                         % ("  " * (indent + 1), self._overflow))
        if out is None:
            return "\n".join(lines)
        return lines

    def __repr__(self):
        return "Span(%r, %.3fms, %r)" % (
            self.name, self.elapsed * 1000.0, self.counters
        )


class QueryTrace:
    """The span tree, counters, and events of one executed statement."""

    def __init__(self, text=""):
        self.text = str(text)[:MAX_TEXT_CHARS]
        self.root = Span("query")
        self.root.calls = 1
        self.status = "running"
        self.error = None
        self.started_at = _wall()
        self.events: List[dict] = []
        self._started = _clock()
        self._finished = None
        #: Guards child creation, aggregate accumulation, and events —
        #: the paths a worker thread that adopted this trace can hit.
        self._lock = threading.Lock()
        #: id(plan node) -> operator span (engine bookkeeping).
        self._operators: Dict[int, Span] = {}

    @property
    def elapsed(self):
        if self._finished is not None:
            return self._finished - self._started
        return _clock() - self._started

    def finish(self, status="ok", error=None):
        """Seal the trace; idempotent (the first outcome wins)."""
        if self._finished is not None:
            return self
        self._finished = _clock()
        self.root.elapsed = self._finished - self._started
        self.status = status
        if error is not None:
            self.error = "%s: %s" % (type(error).__name__, error)
        return self

    def event(self, name, **data):
        """Record one point event (deadline expiry, injected fault)."""
        with self._lock:
            if len(self.events) >= MAX_EVENTS:
                return
            entry = {"event": name,
                     "at_ms": round((_clock() - self._started) * 1000.0, 3)}
            entry.update(data)
            self.events.append(entry)

    def operator_span(self, node, label, parent):
        """The accumulator span of one plan node, created under
        ``parent`` on first evaluation (re-evaluations of the same node,
        e.g. an OPTIONAL's right side per left row, fold into it)."""
        key = id(node)
        span_ = self._operators.get(key)
        if span_ is None:
            with self._lock:
                span_ = self._operators.get(key)
                if span_ is None:
                    span_ = (parent or self.root).child(label)
                    self._operators[key] = span_
        return span_

    def to_dict(self):
        return {
            "text": self.text,
            "status": self.status,
            "error": self.error,
            "started_at": self.started_at,
            "elapsed_ms": round(self.elapsed * 1000.0, 3),
            "events": list(self.events),
            "spans": self.root.to_dict(),
        }

    def render(self):
        """The EXPLAIN ANALYZE text block for this trace."""
        lines = [
            "-- trace: %s (%.3f ms) --" % (self.status,
                                           self.elapsed * 1000.0),
        ]
        self.root.render(0, lines)
        for entry in self.events:
            extras = " ".join(
                "%s=%s" % (k, v) for k, v in sorted(entry.items())
                if k not in ("event", "at_ms")
            )
            lines.append("  @%.3fms event %s %s"
                         % (entry["at_ms"], entry["event"], extras))
        return "\n".join(lines)

    def __repr__(self):
        return "QueryTrace(status=%r, elapsed_ms=%.3f)" % (
            self.status, self.elapsed * 1000.0
        )


# -- the ambient trace --------------------------------------------------------------

_state = threading.local()
_enabled = True


def set_tracing(enabled):
    """Globally enable/disable trace capture; returns the previous flag.

    Metrics and the slow-query log keep working either way; disabling
    only skips building span trees (the benchmark overhead guard
    compares the two modes).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def tracing_enabled():
    return _enabled


def current_trace() -> Optional[QueryTrace]:
    """The trace of the current thread's request, or None."""
    return getattr(_state, "trace", None)


def current_span() -> Optional[Span]:
    trace = getattr(_state, "trace", None)
    if trace is None:
        return None
    return getattr(_state, "span", None) or trace.root


def capture():
    """Snapshot (trace, span) for handing to a worker thread, or None."""
    trace = getattr(_state, "trace", None)
    if trace is None:
        return None
    return (trace, getattr(_state, "span", None) or trace.root)


@contextmanager
def activate(context):
    """Adopt a captured (trace, span) context — or None to clear.

    The bridge for prefetch workers: spans they open accumulate under
    the span that was current when the fetch was submitted.  Passing
    None detaches the thread (used for speculation, which outlives the
    demanding request and must not write into its trace).
    """
    previous = (getattr(_state, "trace", None),
                getattr(_state, "span", None))
    if context is None:
        _state.trace = None
        _state.span = None
    else:
        _state.trace, _state.span = context
    try:
        yield
    finally:
        _state.trace, _state.span = previous


class _SpanContext:
    """Hand-rolled context manager behind :func:`span`.

    A plain class with ``__slots__`` instead of ``@contextmanager``: the
    generator machinery costs a couple of microseconds per use, which
    the per-operator and per-phase sites on the query hot path cannot
    afford (the benchmark gate holds tracing overhead under 5%).
    """

    __slots__ = ("name", "aggregate", "node", "_trace", "_previous",
                 "_started")

    def __init__(self, name, aggregate):
        self.name = name
        self.aggregate = aggregate
        self.node = None

    def __enter__(self):
        trace = getattr(_state, "trace", None)
        self._trace = trace
        if trace is None:
            return None
        parent = getattr(_state, "span", None) or trace.root
        with trace._lock:
            node = (parent.aggregate_child(self.name) if self.aggregate
                    else parent.child(self.name))
            node.calls += 1
        self.node = node
        self._previous = getattr(_state, "span", None)
        _state.span = node
        self._started = _clock()
        return node

    def __exit__(self, exc_type, exc, tb):
        trace = self._trace
        if trace is None:
            return False
        delta = _clock() - self._started
        if self.aggregate:
            with trace._lock:
                self.node.elapsed += delta
        else:
            self.node.elapsed += delta
        _state.span = self._previous
        return False


def span(name, aggregate=False):
    """Open a timed child span under the current one; the ``with``
    target is the span (or None when no trace is active —
    instrumentation sites stay cheap on untraced paths).

    ``aggregate=True`` folds repeated same-named spans under one parent
    into a single accumulator node — mandatory for per-chunk storage
    spans, where one query may perform thousands of operations.
    """
    return _SpanContext(name, aggregate)


def observe_span(name, seconds, **counters):
    """Fold one already-timed operation into an aggregate child span.

    The single-lock fast path for hot leaf spans (per-chunk fetches,
    WAL appends): callers time the operation themselves and report it
    post-hoc, so one lock round-trip replaces the several that
    ``span(name, aggregate=True)`` plus ``add()`` calls would take.
    Only suitable for leaves — the span is never made ambient, so
    nothing can nest under it.
    """
    trace = getattr(_state, "trace", None)
    if trace is None:
        return
    parent = getattr(_state, "span", None) or trace.root
    with trace._lock:
        node = parent.aggregate_child(name)
        node.calls += 1
        node.elapsed += seconds
        for key, delta in counters.items():
            node.counters[key] = node.counters.get(key, 0) + delta


def tick(name, **counters):
    """Record counters on an aggregate child span without timing it.

    Used for instantaneous storage facts (``pool_hit``) where only the
    counts matter; a no-op without an active trace.
    """
    trace = getattr(_state, "trace", None)
    if trace is None:
        return
    parent = getattr(_state, "span", None) or trace.root
    with trace._lock:
        node = parent.aggregate_child(name)
        node.calls += 1
        for key, delta in counters.items():
            node.counters[key] = node.counters.get(key, 0) + delta


def add(name, delta=1):
    """Add to a counter on the current span; no-op when untraced."""
    trace = getattr(_state, "trace", None)
    if trace is None:
        return
    node = getattr(_state, "span", None) or trace.root
    with trace._lock:
        node.counters[name] = node.counters.get(name, 0) + delta


def event(name, **data):
    """Record a point event on the active trace; no-op when untraced."""
    trace = getattr(_state, "trace", None)
    if trace is not None:
        trace.event(name, **data)


class _TraceQueryContext:
    """Hand-rolled context manager behind :func:`trace_query` (the
    generator form costs microseconds per query — see _SpanContext)."""

    __slots__ = ("text", "trace", "_previous", "_started")

    def __init__(self, text):
        self.text = text
        self.trace = None

    def __enter__(self):
        if _enabled:
            trace = QueryTrace(self.text)
            self._previous = (getattr(_state, "trace", None),
                              getattr(_state, "span", None))
            _state.trace = trace
            _state.span = trace.root
            self.trace = trace
        else:
            self._started = _clock()
        return self.trace

    def __exit__(self, exc_type, exc, tb):
        registry = metrics()
        trace = self.trace
        if trace is None:
            elapsed = _clock() - self._started
        else:
            trace.finish("error" if exc is not None else "ok", exc)
            _state.trace, _state.span = self._previous
            elapsed = trace.elapsed
        if exc is not None:
            registry.inc("query_errors_total")
            _count_error_kind(registry, exc)
        registry.inc("queries_total")
        registry.observe("query_latency_seconds", elapsed)
        if trace is not None:
            slow_query_log().observe(trace)
        return False


def trace_query(text):
    """Open a :class:`QueryTrace` as the thread's ambient trace.

    On exit the trace is finished (status ``ok`` or ``error``), its
    latency lands in the metrics registry, and it is offered to the
    slow-query log.  The ``with`` target is None when tracing is
    globally disabled — callers must tolerate that.  Nested calls (a
    query executed while another is tracing on the same thread) open an
    inner trace; the outer one is restored afterwards.
    """
    return _TraceQueryContext(text)


def _count_error_kind(registry, error):
    code = getattr(error, "code", None)
    if code in ("TIMEOUT", "CANCELLED"):
        registry.inc("query_timeouts_total")


# -- metrics ------------------------------------------------------------------------


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down (lag, occupancy)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def snapshot(self):
        return self.value


#: Default histogram buckets: log-spaced latencies from 100µs to ~209s
#: (doubling), a fixed grid so snapshots diff cleanly across processes.
DEFAULT_BUCKETS = tuple(0.0001 * (2 ** k) for k in range(22))


#: The tail quantiles every latency snapshot reports (the load
#: harness's headline numbers).
SNAPSHOT_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


class Histogram:
    """Fixed-bucket histogram with running sum/count/min/max.

    Buckets are upper bounds (inclusive); one implicit overflow bucket
    catches everything beyond the last bound.  :meth:`quantile`
    estimates tail latencies from the cumulative bucket counts, and
    :meth:`merge` folds another histogram's state in — the load harness
    combines per-worker histograms this way before computing p50/p99.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q):
        """The estimated value at quantile ``q`` (0..1), or None when
        empty.

        Walks the cumulative bucket counts to the bucket containing the
        target rank, then interpolates linearly inside it; the estimate
        is clamped to the observed ``[min, max]`` range, so single-value
        histograms answer that value exactly and the overflow bucket
        answers ``max``.
        """
        if not self.count:
            return None
        target = min(max(float(q), 0.0), 1.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            below = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if index == len(self.bounds):
                    return self.max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else 0.0
                fraction = (target - below) / bucket_count
                estimate = lower + (upper - lower) * fraction
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
        return self.max

    def merge(self, other):
        """Fold ``other`` (same bucket bounds) into this histogram."""
        if tuple(other.bounds) != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.sum += other.sum
        self.count += other.count
        if other.min is not None:
            self.min = other.min if self.min is None \
                else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None \
                else max(self.max, other.max)
        return self

    def state(self):
        """A plain-data dump that round-trips via :meth:`from_state`
        (what harness worker processes ship back to the parent)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state):
        instance = cls(bounds=state["bounds"])
        instance.counts = list(state["counts"])
        instance.sum = float(state["sum"])
        instance.count = int(state["count"])
        instance.min = state["min"]
        instance.max = state["max"]
        return instance

    def snapshot(self):
        payload = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": (self.sum / self.count) if self.count else None,
        }
        payload.update(
            (name, self.quantile(q)) for name, q in SNAPSHOT_QUANTILES
        )
        # only the occupied buckets ship, keeping snapshots compact
        payload["buckets"] = {
            ("le_%g" % self.bounds[i]) if i < len(self.bounds)
            else "overflow": count
            for i, count in enumerate(self.counts) if count
        }
        return payload


class MetricsRegistry:
    """Process-wide named counters, gauges, and histograms.

    All mutation goes through one lock; instruments are created on
    first use so call sites never pre-register.  ``clock`` is only
    stored for callers that want a consistent time source (it is not
    read by the registry itself).
    """

    def __init__(self, clock=None):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.clock = clock if clock is not None else (lambda: _clock())

    def inc(self, name, delta=1):
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            counter.value += delta

    def set_gauge(self, name, value):
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            gauge.value = value

    def observe(self, name, value, buckets=None):
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
            histogram.observe(value)

    @contextmanager
    def timer(self, name):
        """Observe the duration of a block into histogram ``name``."""
        started = _clock()
        try:
            yield
        finally:
            self.observe(name, _clock() - started)

    def counter_value(self, name):
        with self._lock:
            counter = self._counters.get(name)
            return 0 if counter is None else counter.value

    def gauge_value(self, name):
        with self._lock:
            gauge = self._gauges.get(name)
            return 0 if gauge is None else gauge.value

    def histogram_snapshot(self, name):
        with self._lock:
            histogram = self._histograms.get(name)
            return None if histogram is None else histogram.snapshot()

    def snapshot(self):
        """One JSON-ready dict of every instrument."""
        with self._lock:
            return {
                "counters": {
                    name: c.snapshot()
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.snapshot()
                    for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.snapshot()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self):
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- slow-query log -----------------------------------------------------------------


class SlowQueryLog:
    """Bounded log of the worst finished traces above a threshold.

    Keeps at most ``capacity`` entries ordered slowest-first; a new
    trace above ``threshold_ms`` evicts the current fastest entry once
    the log is full.  Entries are plain dicts (the trace's
    :meth:`~QueryTrace.to_dict`), so they serialize over the wire as-is.
    """

    def __init__(self, capacity=32, threshold_ms=100.0):
        self._lock = threading.Lock()
        self.capacity = int(capacity)
        self.threshold_ms = float(threshold_ms)
        self._entries: List[dict] = []
        self.observed = 0
        self.admitted = 0

    def configure(self, capacity=None, threshold_ms=None):
        """Adjust capacity/threshold at runtime; returns self."""
        with self._lock:
            if capacity is not None:
                self.capacity = int(capacity)
                del self._entries[self.capacity:]
            if threshold_ms is not None:
                self.threshold_ms = float(threshold_ms)
        return self

    def observe(self, trace):
        """Offer a finished trace; keeps it when slow enough to rank."""
        elapsed_ms = trace.elapsed * 1000.0
        with self._lock:
            self.observed += 1
            if elapsed_ms < self.threshold_ms or self.capacity <= 0:
                return False
            if len(self._entries) >= self.capacity \
                    and elapsed_ms <= self._entries[-1]["elapsed_ms"]:
                return False
            entry = trace.to_dict()
            position = len(self._entries)
            while position > 0 \
                    and self._entries[position - 1]["elapsed_ms"] \
                    < entry["elapsed_ms"]:
                position -= 1
            self._entries.insert(position, entry)
            del self._entries[self.capacity:]
            self.admitted += 1
            return True

    def snapshot(self):
        """Slowest-first list of entries plus the log's configuration."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "observed": self.observed,
                "admitted": self.admitted,
                "entries": [dict(entry) for entry in self._entries],
            }

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)


# -- process-wide singletons --------------------------------------------------------

_registry: Optional[MetricsRegistry] = None
_slowlog: Optional[SlowQueryLog] = None
_singleton_lock = threading.Lock()


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    global _registry
    registry = _registry
    if registry is not None:
        # lock-free fast path: rebinding is atomic, and this sits on
        # the per-query hot path
        return registry
    with _singleton_lock:
        if _registry is None:
            _registry = MetricsRegistry()
        return _registry


def set_metrics(registry):
    """Install a replacement registry; returns the previous one."""
    global _registry
    with _singleton_lock:
        previous = _registry
        _registry = registry
        return previous


def slow_query_log() -> SlowQueryLog:
    """The process-wide slow-query log."""
    global _slowlog
    log = _slowlog
    if log is not None:
        return log
    with _singleton_lock:
        if _slowlog is None:
            _slowlog = SlowQueryLog()
        return _slowlog


def set_slow_query_log(log):
    """Install a replacement slow-query log; returns the previous one."""
    global _slowlog
    with _singleton_lock:
        previous = _slowlog
        _slowlog = log
        return previous
