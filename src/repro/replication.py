"""WAL-shipping replication: hot standby, read replicas, fenced failover.

The durability layer (:mod:`repro.storage.durability`) gave every SSDM a
CRC-framed, monotonically sequenced write-ahead log whose replay is the
single recovery path.  This module turns that log into a *replication
stream*, so the loss of the primary process no longer means the loss of
the service:

- A **primary** serves the ``wal_since`` op: journal records past a
  given sequence number, long-poll bounded by the request deadline.
- A **follower** runs a :class:`ReplicationClient` that tails the
  stream, durably appends each record to its *own* WAL (so the replica
  is itself crash-recoverable and promotable), and applies it through
  the journal's replay path — invalidating buffer-pool entries for any
  array values the delta touches.  The follower tracks ``(epoch,
  last_seq)``; after a restart it resumes from the last intact record
  of its local log (torn tails are truncated by normal recovery).
- **Epochs fence stale primaries.**  Promotion (the server's
  ``promote`` admin op) bumps the epoch; every replicated exchange
  carries one.  A deposed primary that comes back finds its stream
  refused (``FENCED``) by any follower that has seen the new epoch, and
  itself *steps down* to a read-only replica the moment any request
  carries a newer epoch than its own — so acknowledged writes are never
  silently overwritten and stale-epoch writes are never accepted.
- A :class:`ReplicaSetClient` gives applications one handle over the
  whole set: writes route to the current primary (discovered by health
  probes, re-discovered after failover), reads load-balance across live
  replicas, and a ``min_seq`` read barrier provides read-your-writes
  (a lagging replica answers ``LAGGING``, and the read fails over to a
  caught-up node).

Replication is asynchronous: an acknowledged write is durable on the
primary (fsync'd WAL) but reaches replicas with a lag the ``health`` op
reports.  Promoting a lagging replica can therefore lose the tail of
un-shipped writes — the same tradeoff as asynchronous shipping in
production systems; the deterministic failover tests pin down exactly
which writes survive.

Snapshot compaction (:meth:`~repro.ssdm.SSDM.snapshot`) rewrites the
log with sequence numbers restarting at 1, which a follower detects as
a non-incremental stream (``restart``) and handles by a full resync:
clear the local dataset and log, then re-apply the stream from zero.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager

from repro.exceptions import (
    ConnectionClosedError,
    FencedError,
    ReadOnlyError,
    ReplicaLaggingError,
    SciSparqlError,
    ServerOverloadedError,
)
from repro import observability as obs

#: Server roles.
PRIMARY = "primary"
REPLICA = "replica"

_follower_ids = itertools.count(1)


class ReplicationState:
    """One node's replication identity: ``(role, epoch)``, thread-safe.

    The epoch is a fencing token: it only ever moves forward, a
    :meth:`promote` bumps it, and observing a *newer* epoch on any
    request deposes a primary into a replica (it can no longer accept
    writes its successor would not know about).
    """

    def __init__(self, role=PRIMARY, epoch=1):
        if role not in (PRIMARY, REPLICA):
            raise ValueError("role must be %r or %r" % (PRIMARY, REPLICA))
        self._lock = threading.Lock()
        self.role = role
        self.epoch = int(epoch)
        self.promotions = 0
        self.demotions = 0
        self.fenced_requests = 0

    def is_primary(self):
        with self._lock:
            return self.role == PRIMARY

    def promote(self):
        """Become the primary of a new epoch; returns the new epoch."""
        with self._lock:
            self.epoch += 1
            if self.role != PRIMARY:
                self.role = PRIMARY
            self.promotions += 1
            return self.epoch

    def observe_epoch(self, peer_epoch):
        """Adopt a newer epoch seen on a request.

        Returns True when this node was *stale* (its epoch was older):
        a stale primary steps down to a replica, and the caller must
        refuse the request with ``FENCED`` — its own stream/write
        acceptance is no longer authoritative.
        """
        peer_epoch = int(peer_epoch)
        with self._lock:
            if peer_epoch <= self.epoch:
                return False
            self.epoch = peer_epoch
            self.fenced_requests += 1
            if self.role == PRIMARY:
                self.role = REPLICA
                self.demotions += 1
            return True

    def snapshot(self):
        with self._lock:
            return {
                "role": self.role,
                "epoch": self.epoch,
                "promotions": self.promotions,
                "demotions": self.demotions,
                "fenced_requests": self.fenced_requests,
            }

    def __repr__(self):
        return "ReplicationState(%r)" % (self.snapshot(),)


@contextmanager
def _no_guard():
    yield


class ReplicationClient:
    """Tails a primary's WAL stream into a local (follower) SSDM.

    ``ssdm`` must carry a journal (``SSDM.open``): each streamed record
    is durably appended to the follower's own log *before* it is
    applied to the dataset, so the follower survives its own crashes
    and can be promoted with a complete record sequence.

    ``state`` is the node's :class:`ReplicationState` (shared with the
    node's :class:`~repro.client.SSDMServer` when there is one, so the
    served ``health``/``promote`` ops and the tailing loop agree on the
    epoch).  ``write_guard`` is a callable returning a context manager
    that serializes dataset mutation against other mutators — the
    server passes its single-writer mutex (MVCC snapshot readers never
    take it); standalone use defaults to a no-op.

    Use :meth:`poll_once` for deterministic tests and :meth:`start` for
    a background tailing thread.  ``faults`` threads a
    :class:`~repro.storage.FaultPlan` into the transport so partitions
    and drops on the replication link are injectable.
    """

    def __init__(self, ssdm, host, port, state=None, follower_id=None,
                 poll_interval=0.05, batch=512, wait_ms=0.0,
                 write_guard=None, faults=None, timeout=10.0):
        if ssdm.journal is None:
            raise ValueError(
                "a replication follower needs a journal: open the SSDM "
                "with SSDM.open(path)"
            )
        self.ssdm = ssdm
        self.state = state if state is not None else ReplicationState(REPLICA)
        self.follower_id = follower_id or "follower-%d-%d" % (
            os.getpid(), next(_follower_ids)
        )
        self.poll_interval = float(poll_interval)
        self.batch = int(batch)
        self.wait_ms = float(wait_ms)
        self.write_guard = write_guard or _no_guard
        self.faults = faults
        self._timeout = timeout
        self._host = None
        self._port = None
        self._client = None
        #: Highest upstream sequence number seen in a response.
        self.upstream_seq = 0
        self.records_applied = 0
        self.resyncs = 0
        self.poll_errors = 0
        self.connected = False
        #: Set when the upstream was refused as a stale primary.
        self.fenced = False
        self.last_error = None
        self._stop = threading.Event()
        self._thread = None
        #: Until verified, the first poll re-fetches the last locally
        #: applied record and compares bytes (log matching): a deposed
        #: primary's divergent tail shares sequence numbers with the
        #: new history, so seq tracking alone cannot detect it.
        self._tail_verified = False
        self.retarget(host, port)

    # -- targeting ---------------------------------------------------------------

    def retarget(self, host, port):
        """Point the tail at a (new) upstream, e.g. after a promotion."""
        self._close_client()
        self._host = host
        self._port = int(port)
        self.fenced = False
        self._tail_verified = False

    @property
    def upstream(self):
        return (self._host, self._port)

    @property
    def last_seq(self):
        """Highest sequence number durably applied on this follower."""
        return self.ssdm.journal.last_seq

    def lag(self):
        """Records known to exist upstream but not yet applied here."""
        return max(0, self.upstream_seq - self.last_seq)

    # -- the tailing loop --------------------------------------------------------

    def poll_once(self, wait_ms=None):
        """One stream poll: fetch records past ``last_seq``, apply them.

        Returns the number of records applied.  Connection failures are
        absorbed (counted, ``connected`` drops to False) so the tailing
        loop survives a primary crash and resumes when a reachable
        upstream returns; a :class:`FencedError` — the upstream is a
        deposed primary — is raised to the caller and stops the
        background loop, because following a stale stream can never
        become correct again without operator action.
        """
        verify_from = None
        since = self.last_seq
        if not self._tail_verified and since > 0:
            # log matching: re-fetch our last applied record and compare
            # bytes — same-seq divergence (a deposed primary's tail)
            # must trigger a resync, not a silent split history
            verify_from = since - 1
            since = verify_from
        request = {
            "op": "wal_since",
            "since": since,
            "epoch": self.state.epoch,
            "follower_id": self.follower_id,
            "max_records": self.batch,
        }
        wait = self.wait_ms if wait_ms is None else float(wait_ms)
        if wait:
            request["wait_ms"] = wait
        try:
            response = self._transport().call(request)
        except FencedError as error:
            # the upstream refused us (it is newer) — adopt nothing; or
            # we refused it server-side.  Either way stop following.
            self.fenced = True
            self.last_error = error
            raise
        except (ConnectionClosedError, ServerOverloadedError, OSError) \
                as error:
            self.connected = False
            self.poll_errors += 1
            self.last_error = error
            self._close_client()
            return 0
        self.connected = True
        epoch = response.get("epoch")
        if epoch is not None:
            if epoch < self.state.epoch:
                # A stream from an older epoch is a deposed primary's
                # divergent history: refuse it (stale-primary fencing).
                self.fenced = True
                self.state.fenced_requests += 1
                error = FencedError(
                    "upstream %s:%s serves epoch %d but this follower "
                    "has seen epoch %d; refusing its stale stream"
                    % (self._host, self._port, epoch, self.state.epoch)
                )
                self.last_error = error
                raise error
            self.state.observe_epoch(epoch)
        self.upstream_seq = max(
            self.upstream_seq, int(response.get("last_seq", 0))
        )
        obs.metrics().set_gauge("replication_follower_lag", self.lag())
        if response.get("restart"):
            self._resync()
            return 0
        records = response.get("records", ())
        if verify_from is not None:
            if not self._tail_matches(records):
                self._resync()
                return 0
            self._tail_verified = True
        applied = self._apply_records(records)
        self.records_applied += applied
        return applied

    def _tail_matches(self, records):
        """True when the stream agrees with our last applied record."""
        local_seq = self.ssdm.journal.last_seq
        local = self.ssdm.journal.records_since(local_seq - 1, limit=1)
        if not local:
            return True         # nothing local to contradict
        for seq, payload in records:
            if int(seq) == local_seq:
                return payload.encode("utf-8") == local[0][1]
        # upstream no longer has our seq in its first batch: treat as
        # divergence and resync rather than guessing
        return False

    def _apply_records(self, records):
        journal = self.ssdm.journal
        registry = obs.metrics()
        applied = 0
        with self.write_guard():
            for seq, payload in records:
                seq = int(seq)
                if seq <= journal.last_seq:
                    continue            # duplicate delivery: idempotent
                data = payload.encode("utf-8")
                # WAL-first on the follower too: the record is durable
                # locally before the dataset mutates, so a follower
                # crash mid-apply recovers to a consistent state.
                with registry.timer("replication_apply_seconds"):
                    journal.append_replicated(seq, data)
                    # the upstream seq stamps the MVCC version this
                    # record publishes, so at_seq reads on the replica
                    # line up with the primary's WAL positions
                    journal.apply_record(self.ssdm.dataset, data, seq)
                applied += 1
        if applied:
            registry.inc("replication_records_applied_total", applied)
            registry.set_gauge("replication_follower_lag", self.lag())
        return applied

    def _resync(self):
        """Full resync: the upstream's log is not an extension of ours.

        Happens when the upstream compacted its log (snapshot) or this
        follower is ahead of a freshly recovered upstream.  Clear the
        local dataset and log and re-tail from sequence zero.
        """
        from repro.storage.durability import _invalidate_pooled

        dataset = self.ssdm.dataset
        with self.write_guard():
            graphs = [dataset.default_graph]
            graphs.extend(dataset.named_graphs().values())
            for graph in graphs:
                for triple in list(graph.triples()):
                    _invalidate_pooled(triple.value)
                graph.clear()
            for name in list(dataset.named_graphs()):
                dataset.drop(name)
            dictionary = getattr(dataset, "term_dictionary", None)
            if dictionary is not None:
                # the upstream's compacted log re-assigns IDs from
                # zero; keeping stale assignments would make the first
                # streamed dict record non-dense (CorruptionError)
                dictionary.clear()
            self.ssdm.journal.reset()
            publish = getattr(dataset, "publish", None)
            if publish is not None:
                # publish the emptied dataset at seq 0: the seq
                # *regression* tells the snapshot manager to invalidate
                # every snapshot pinned on the abandoned history
                publish(0)
        self.resyncs += 1

    # -- background tailing ------------------------------------------------------

    def start(self):
        """Tail the upstream on a daemon thread until :meth:`stop`."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def _run(self):
        while not self._stop.is_set():
            try:
                applied = self.poll_once()
            except FencedError:
                return          # stale upstream: stop, operator decides
            except SciSparqlError as error:
                self.poll_errors += 1
                self.last_error = error
                applied = 0
            if applied == 0:
                self._stop.wait(self.poll_interval)

    def stop(self, join=True):
        self._stop.set()
        thread = self._thread
        if join and thread is not None and thread is not \
                threading.current_thread():
            thread.join(timeout=5.0)
        self._close_client()

    def running(self):
        return self._thread is not None and self._thread.is_alive()

    # -- reporting ---------------------------------------------------------------

    def status(self):
        return {
            "upstream": "%s:%s" % (self._host, self._port),
            "connected": self.connected,
            "fenced": self.fenced,
            "last_seq": self.last_seq,
            "upstream_seq": self.upstream_seq,
            "lag": self.lag(),
            "records_applied": self.records_applied,
            "resyncs": self.resyncs,
            "poll_errors": self.poll_errors,
        }

    # -- transport ---------------------------------------------------------------

    def _transport(self):
        from repro.client.server import SSDMClient

        if self._client is None:
            self._client = SSDMClient(
                self._host, self._port, timeout=self._timeout,
                retries=0, faults=self.faults,
            )
        return self._client

    def _close_client(self):
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None


class ReplicaSetClient:
    """One client over a replica set: routed writes, balanced reads.

    ``endpoints`` is a list of ``(host, port)`` pairs (or
    ``"host:port"`` strings).  A health probe of every endpoint
    discovers each node's role and epoch; writes go to the primary of
    the *highest* epoch (carrying that epoch, so a deposed primary
    fences itself instead of accepting the write), reads round-robin
    across live replicas and fall back to the primary.

    Failover is probe-driven: a read that hits a dead, lagging, or
    overloaded node moves to the next candidate, and when a whole pass
    fails the set is re-probed before one more pass.  A write refused
    with ``READONLY``/``FENCED`` was rejected *before execution*, so it
    is safely re-routed after a re-probe; a write whose connection died
    mid-flight raises — it is **never replayed** (the old primary may
    have applied and shipped it).

    Read-your-writes: every acknowledged write records the primary's
    WAL sequence; ``query(..., read_your_writes=True)`` (or an explicit
    ``min_seq``) attaches it as a read barrier, and replicas that have
    not caught up answer ``LAGGING``, failing the read over to one that
    has.

    Every endpoint additionally carries a
    :class:`~repro.governor.CircuitBreaker`: ``breaker_threshold``
    consecutive read failures open it and reads route around the node
    for ``breaker_recovery`` seconds, after which a single half-open
    probe read decides whether it closes again — so a node answering
    every request with an error stops burning a failover per read.  As
    a last resort (final round, no other failure recorded) an open
    breaker is overridden rather than failing a read that might have
    succeeded.
    """

    def __init__(self, endpoints, timeout=10.0, probe_interval=0.0,
                 faults=None, rounds=3, backoff=0.05,
                 breaker_threshold=3, breaker_recovery=1.0):
        if not endpoints:
            raise ValueError("a replica set needs at least one endpoint")
        self.endpoints = [self._normalize(e) for e in endpoints]
        self._timeout = float(timeout)
        self.faults = faults
        self.rounds = int(rounds)
        self.backoff = float(backoff)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_recovery = float(breaker_recovery)
        self._clients = {}
        self._breakers = {}
        self._lock = threading.Lock()
        self._rr = 0
        self.epoch = 0
        self.primary = None
        self.health = {}
        #: WAL seq of the last acknowledged write (read-your-writes barrier).
        self.last_write_seq = 0
        self.probes = 0
        self.failovers = 0
        #: Reads that skipped an endpoint because its breaker was open.
        self.breaker_skips = 0

    @staticmethod
    def _normalize(endpoint):
        if isinstance(endpoint, str):
            host, _, port = endpoint.rpartition(":")
            return (host, int(port))
        host, port = endpoint
        return (host, int(port))

    # -- membership --------------------------------------------------------------

    def probe(self):
        """Health-check every endpoint; returns the live-health map.

        Updates the known ``epoch`` (max over responders), the current
        ``primary`` (a responder claiming the primary role at that
        epoch), and the read candidates.
        """
        self.probes += 1
        alive = {}
        for endpoint in self.endpoints:
            client = self._client(endpoint)
            if client is None:
                continue
            try:
                health = client.call({"op": "health"})["health"]
            except (SciSparqlError, OSError):
                self._drop_client(endpoint)
                continue
            alive[endpoint] = health
            self.epoch = max(self.epoch, int(health.get("epoch", 0)))
        primaries = [
            endpoint for endpoint, health in alive.items()
            if health.get("role") == PRIMARY
            and int(health.get("epoch", 0)) == self.epoch
        ]
        self.primary = primaries[0] if primaries else None
        self.health = alive
        return alive

    def _read_candidates(self):
        """Live replicas round-robin, the primary as the last resort."""
        replicas = [
            endpoint for endpoint, health in self.health.items()
            if health.get("role") == REPLICA
        ]
        if replicas:
            with self._lock:
                self._rr = (self._rr + 1) % len(replicas)
                rotation = self._rr
            replicas = replicas[rotation:] + replicas[:rotation]
        candidates = list(replicas)
        if self.primary is not None and self.primary not in candidates:
            candidates.append(self.primary)
        # endpoints that never answered a probe still get one chance at
        # the very end — the set may never have been probed at all
        for endpoint in self.endpoints:
            if endpoint not in candidates:
                candidates.append(endpoint)
        return candidates

    # -- reads -------------------------------------------------------------------

    def query(self, text, timeout_ms=None, min_seq=None,
              read_your_writes=False, priority=None, at_seq=None):
        """Run a read on a live replica (or the primary as fallback).

        ``min_seq`` / ``read_your_writes`` install a read barrier: a
        node whose applied WAL sequence is behind answers ``LAGGING``
        and the read fails over to a caught-up node.  ``at_seq`` asks
        for the exact MVCC version at a WAL sequence instead of "at
        least": a node that has applied *past* it still serves the
        retained version, so read-your-writes via ``at_seq`` does not
        bounce off nodes that moved ahead — only a node that has not
        reached the seq answers ``LAGGING``, and a version evicted
        from retention answers ``SNAPSHOT_GONE`` (non-retryable).
        ``priority`` (``"interactive"`` / ``"batch"``) is forwarded to
        the server's admission queue.  Endpoints whose circuit breaker
        is open are skipped (see the class docstring).
        """
        if read_your_writes:
            min_seq = max(min_seq or 0, self.last_write_seq)
        failure = None
        for round_index in range(self.rounds):
            if round_index:
                self.probe()
                time.sleep(self.backoff * round_index)
            last_round = round_index == self.rounds - 1
            for endpoint in self._read_candidates():
                breaker = self._breaker(endpoint)
                # An open breaker routes the read elsewhere — except on
                # the final round with nothing else to blame, where an
                # attempt is still cheaper than a spurious failure.
                if not breaker.allow() and not (last_round
                                                and failure is None):
                    with self._lock:
                        self.breaker_skips += 1
                    continue
                client = self._client(endpoint)
                if client is None:
                    breaker.on_failure()
                    continue
                try:
                    result = client.query(
                        text, timeout_ms=timeout_ms, min_seq=min_seq,
                        priority=priority, at_seq=at_seq,
                    )
                except (ConnectionClosedError, OSError) as error:
                    breaker.on_failure()
                    failure = error
                    self.failovers += 1
                    self._drop_client(endpoint)
                except (ServerOverloadedError, ReplicaLaggingError,
                        ReadOnlyError, FencedError) as error:
                    breaker.on_failure()
                    failure = error
                    self.failovers += 1
                else:
                    breaker.on_success()
                    return result
        raise failure if failure is not None else ConnectionClosedError(
            "no endpoint of the replica set is reachable"
        )

    # -- writes ------------------------------------------------------------------

    def update(self, text, timeout_ms=None):
        """Run a write on the current primary, fenced by the epoch.

        ``READONLY`` / ``FENCED`` / ``OVERLOAD`` rejections happen
        before execution, so the write is re-routed after a re-probe;
        a connection lost mid-flight raises
        :class:`~repro.exceptions.ConnectionClosedError` and is never
        replayed (the non-idempotent-update guarantee of §9).
        """
        failure = None
        for round_index in range(self.rounds):
            if self.primary is None or round_index:
                self.probe()
            if self.primary is None:
                failure = failure or ConnectionClosedError(
                    "no primary reachable in the replica set"
                )
                time.sleep(self.backoff * (round_index + 1))
                continue
            client = self._client(self.primary)
            if client is None:
                self.primary = None
                continue
            request = {"op": "update", "text": text, "epoch": self.epoch}
            if timeout_ms is not None:
                request["timeout_ms"] = timeout_ms
            try:
                response = client.call(request, idempotent=False)
            except (ReadOnlyError, FencedError,
                    ServerOverloadedError) as error:
                failure = error
                self.failovers += 1
                self.primary = None
                continue
            except (ConnectionClosedError, OSError):
                self._drop_client(self.primary)
                raise       # may have been applied: never replayed
            self.epoch = max(self.epoch, int(response.get("epoch", 0)))
            seq = response.get("seq")
            if seq:
                self.last_write_seq = max(self.last_write_seq, int(seq))
            return response.get("result")
        raise failure

    # -- admin / reporting -------------------------------------------------------

    def promote(self, endpoint):
        """Promote one endpoint to primary of a new epoch."""
        endpoint = self._normalize(endpoint)
        client = self._client(endpoint)
        if client is None:
            raise ConnectionClosedError(
                "cannot reach %s:%s to promote it" % endpoint
            )
        response = client.call({"op": "promote"})
        self.epoch = max(self.epoch, int(response.get("epoch", 0)))
        self.primary = endpoint
        return response.get("epoch")

    def stats(self):
        """Per-endpoint server stats for every reachable node."""
        out = {}
        for endpoint in self.endpoints:
            client = self._client(endpoint)
            if client is None:
                out[endpoint] = None
                continue
            try:
                out[endpoint] = client.stats()
            except (SciSparqlError, OSError):
                self._drop_client(endpoint)
                out[endpoint] = None
        return out

    def breakers(self):
        """Per-endpoint circuit-breaker snapshots (only endpoints that
        have served at least one read appear)."""
        with self._lock:
            items = list(self._breakers.items())
        return {
            "%s:%s" % endpoint: breaker.snapshot()
            for endpoint, breaker in items
        }

    def close(self):
        for endpoint in list(self._clients):
            self._drop_client(endpoint)

    # -- connections -------------------------------------------------------------

    def _breaker(self, endpoint):
        from repro.governor import CircuitBreaker

        with self._lock:
            breaker = self._breakers.get(endpoint)
            if breaker is None:
                breaker = self._breakers[endpoint] = CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    recovery_seconds=self.breaker_recovery,
                )
            return breaker

    def _client(self, endpoint):
        from repro.client.server import SSDMClient

        with self._lock:
            client = self._clients.get(endpoint)
        if client is not None:
            return client
        try:
            client = SSDMClient(
                endpoint[0], endpoint[1], timeout=self._timeout,
                retries=0, faults=self.faults,
            )
        except OSError:
            return None
        with self._lock:
            self._clients[endpoint] = client
        return client

    def _drop_client(self, endpoint):
        with self._lock:
            client = self._clients.pop(endpoint, None)
        if client is not None:
            try:
                client.close()
            except OSError:
                pass


def start_replica(path, upstream_host, upstream_port, host="127.0.0.1",
                  port=0, array_store=None, faults=None, **server_kwargs):
    """Open a follower SSDM and serve it as a read replica.

    Convenience wiring used by ``scripts/run_replica.py`` and the
    failover tests: ``SSDM.open(path)`` (recovering any previous log),
    an :class:`~repro.client.SSDMServer` in the ``replica`` role, and a
    started :class:`ReplicationClient` tailing the upstream primary
    under the server's write mutex.  Returns ``(ssdm, server, tail)``.
    """
    from repro.client.server import SSDMServer
    from repro.ssdm import SSDM

    ssdm = SSDM.open(path, array_store=array_store)
    server = SSDMServer(
        ssdm, host=host, port=port, role=REPLICA, **server_kwargs
    )
    tail = server.attach_replication(
        upstream_host, upstream_port, faults=faults
    )
    server.start()
    tail.start()
    return ssdm, server, tail
