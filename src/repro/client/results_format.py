"""W3C SPARQL 1.1 Query Results JSON Format, with an array extension.

SSDM's endpoint speaks the standard results format
(``application/sparql-results+json``) so generic SPARQL clients can
consume it; array values — which the W3C format has no notion of — are
encoded as typed literals with the SSDM datatype
``http://udbl.uu.se/ssdm#array`` whose lexical form is the nested
collection syntax, mirroring how the paper keeps SciSPARQL a strict
superset of SPARQL.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import SciSparqlError
from repro.rdf.term import BlankNode, Literal, URI

ARRAY_DATATYPE = "http://udbl.uu.se/ssdm#array"


def to_sparql_json(result):
    """Encode a QueryResult (or ASK boolean) as results-JSON text."""
    if isinstance(result, bool):
        return json.dumps({"head": {}, "boolean": result})
    bindings = []
    for row in result.rows:
        encoded: Dict[str, dict] = {}
        for name, value in zip(result.columns, row):
            if value is None:
                continue
            encoded[name] = _encode(value)
        bindings.append(encoded)
    return json.dumps({
        "head": {"vars": list(result.columns)},
        "results": {"bindings": bindings},
    })


def _encode(value):
    if isinstance(value, URI):
        return {"type": "uri", "value": value.value}
    if isinstance(value, BlankNode):
        return {"type": "bnode", "value": value.label}
    if isinstance(value, bool):
        return {"type": "literal", "value": "true" if value else "false",
                "datatype": "http://www.w3.org/2001/XMLSchema#boolean"}
    if isinstance(value, int):
        return {"type": "literal", "value": str(value),
                "datatype": "http://www.w3.org/2001/XMLSchema#integer"}
    if isinstance(value, float):
        return {"type": "literal", "value": repr(value),
                "datatype": "http://www.w3.org/2001/XMLSchema#double"}
    if isinstance(value, str):
        return {"type": "literal", "value": value}
    if isinstance(value, Literal):
        out = {"type": "literal", "value": value.lexical_form()}
        if value.lang:
            out["xml:lang"] = value.lang
        else:
            out["datatype"] = value.datatype.value
        return out
    if isinstance(value, ArrayProxy):
        value = value.resolve()
    if isinstance(value, NumericArray):
        return {"type": "literal", "value": value.n3(),
                "datatype": ARRAY_DATATYPE}
    raise SciSparqlError("cannot encode %r as SPARQL results" % (value,))


def from_sparql_json(text):
    """Decode results-JSON into (columns, rows) or an ASK boolean.

    Array-typed literals decode back into resident NumericArrays.
    """
    raw = json.loads(text)
    if "boolean" in raw:
        return bool(raw["boolean"])
    columns = raw["head"].get("vars", [])
    rows = []
    for binding in raw["results"]["bindings"]:
        row = []
        for name in columns:
            cell = binding.get(name)
            row.append(None if cell is None else _decode(cell))
        rows.append(tuple(row))
    return columns, rows


def _decode(cell):
    kind = cell.get("type")
    if kind == "uri":
        return URI(cell["value"])
    if kind == "bnode":
        return BlankNode(cell["value"])
    if kind in ("literal", "typed-literal"):
        lang = cell.get("xml:lang")
        if lang:
            return Literal(cell["value"], lang=lang)
        datatype = cell.get("datatype")
        if datatype == ARRAY_DATATYPE:
            return _parse_array(cell["value"])
        if datatype is None:
            return cell["value"]
        literal = Literal.from_lexical(cell["value"], URI(datatype))
        from repro.engine.functions import runtime
        return runtime(literal)
    raise SciSparqlError("cannot decode results cell %r" % (cell,))


def explain_payload(ssdm, text, objectlog=False, costs=False):
    """The body of an EXPLAIN response: plan text plus live counters.

    Alongside the optimized logical plan this ships the storage-traffic
    and buffer-pool statistics (hits, misses, prefetch-hits,
    wasted-prefetches, in-flight-waits, bytes in/out) so a client can
    see what the prefetch pipeline did for recent queries.
    """
    return {
        "plan": ssdm.explain(text, objectlog=objectlog, costs=costs),
        "stats": ssdm.stats(),
    }


#: Buffer-pool counters rendered by :func:`format_explain`, in order.
_POOL_COUNTERS = (
    "lookups", "hits", "misses", "prefetch_hits", "wasted_prefetches",
    "inflight_waits", "rejected", "evictions", "bytes_in", "bytes_out",
)


def format_explain(payload):
    """Render an explain payload as human-readable text."""
    lines = [payload["plan"]]
    stats = payload.get("stats") or {}
    storage = stats.get("storage")
    if storage:
        lines.append("")
        lines.append("-- storage traffic --")
        for name in ("requests", "chunks_fetched", "bytes_fetched",
                     "arrays_stored", "aggregates_delegated"):
            lines.append("  %-20s %d" % (name, storage.get(name, 0)))
    pool = stats.get("buffer_pool")
    if pool:
        lines.append("")
        lines.append("-- buffer pool --")
        for name in _POOL_COUNTERS:
            lines.append("  %-20s %d" % (name, pool.get(name, 0)))
    last = stats.get("last_resolve")
    if last:
        lines.append("")
        lines.append("-- last resolve --")
        for name in ("strategy", "requests", "chunks_fetched",
                     "cache_hit_ratio"):
            if name in last:
                lines.append("  %-20s %s" % (name, last[name]))
    return "\n".join(lines)


def _parse_array(text):
    """Parse the nested collection syntax '((1 2) (3 4))'."""
    tokens = text.replace("(", " ( ").replace(")", " ) ").split()
    position = [0]

    def parse():
        token = tokens[position[0]]
        position[0] += 1
        if token == "(":
            items = []
            while tokens[position[0]] != ")":
                items.append(parse())
            position[0] += 1
            return items
        try:
            return int(token)
        except ValueError:
            return float(token)

    parsed = parse()
    return NumericArray(parsed)
