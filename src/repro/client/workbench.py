"""The computational-workbench client: SciSPARQL inside a Matlab-like
workflow (dissertation chapter 7).

The original integration embeds a SciSPARQL client into Matlab: numeric
results stay in native ``.mat`` files on shared storage, while SSDM keeps
the *metadata* — experiment descriptions, parameters, provenance — as RDF
with file-linked array proxies.  Scientists then locate results by
querying metadata, and costly array reductions run server-side so only
scalars (or small slices) travel to the workbench.

:class:`WorkbenchClient` reproduces that workflow against a local or
remote SSDM, with ``.npy`` files standing in for ``.mat``:

    wb = WorkbenchClient(ssdm, directory)
    uri = wb.store_result("run42", array, {"temperature": 300.0})
    hits = wb.find({"temperature": 300.0})
    tail_mean = wb.reduce(uri, "avg")          # server-side
    full = wb.fetch(uri)                       # ships the array
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import SciSparqlError
from repro.rdf.namespace import Namespace, RDF
from repro.rdf.term import Literal, URI
from repro.loaders.filelink import link_npy

#: Vocabulary for workbench-produced results.
WB = Namespace("http://udbl.uu.se/workbench#")


class WorkbenchClient:
    """Stores, annotates, finds, and retrieves computation results."""

    def __init__(self, ssdm, directory, base_uri="http://udbl.uu.se/run/"):
        self.ssdm = ssdm
        self.directory = str(directory)
        self.base_uri = base_uri
        os.makedirs(self.directory, exist_ok=True)
        #: Elements shipped to the client by fetch() calls (transfer
        #: accounting for the chapter-7 comparison).
        self.elements_transferred = 0
        #: APR statistics of the most recent fetch(): chunks fetched,
        #: requests issued, and the buffer-pool hit ratio.
        self.last_fetch_stats = None

    # -- producing results ------------------------------------------------------

    def store_result(self, name, array, metadata=None):
        """Save an array to a native file and annotate it in RDF.

        Mirrors the Matlab user saving a ``.mat`` file and issuing an
        annotation update; returns the result's URI.
        """
        if isinstance(array, NumericArray):
            dense = np.array(array.to_numpy())
        else:
            dense = np.asarray(array, dtype=np.float64)
        path = os.path.join(self.directory, "%s.npy" % name)
        np.save(path, dense)
        uri = URI(self.base_uri + name)
        self.ssdm.add(uri, RDF.type, WB.Result)
        self.ssdm.add(uri, WB.name, Literal(name))
        link_npy(self.ssdm, uri, WB.data, path)
        for key, value in (metadata or {}).items():
            self.ssdm.add(uri, WB.term(key), Literal(value))
        return uri

    def annotate(self, uri, metadata):
        """Attach further metadata to an existing result."""
        for key, value in metadata.items():
            self.ssdm.add(uri, WB.term(key), Literal(value))

    # -- locating results ----------------------------------------------------------

    def find(self, metadata=None, filter_text=None):
        """URIs of results whose metadata matches all given values.

        ``metadata`` maps property local-names to exact values;
        ``filter_text`` may add a raw SciSPARQL FILTER over ``?r`` and the
        bound metadata variables.
        """
        lines = ["PREFIX wb: <%s>" % WB.base,
                 "SELECT ?r WHERE { ?r a wb:Result ."]
        for index, (key, value) in enumerate(sorted(
            (metadata or {}).items()
        )):
            lines.append("?r wb:%s ?m%d ." % (key, index))
            lines.append("FILTER(?m%d = %s)" % (index, _literal(value)))
        if filter_text:
            lines.append("FILTER(%s)" % filter_text)
        lines.append("}")
        result = self.ssdm.execute("\n".join(lines))
        return [row[0] for row in result.rows]

    # -- retrieving results -----------------------------------------------------------

    def fetch(self, uri, subscript=""):
        """Ship a result array (or a slice of it) to the workbench.

        ``subscript`` is a SciSPARQL subscript text such as ``[1:100]``.
        Returns a resident NumericArray (or scalar); counts transferred
        elements.
        """
        query = (
            "PREFIX wb: <%s> SELECT (?a%s AS ?v) WHERE { <%s> wb:data ?a }"
            % (WB.base, subscript, uri.value)
        )
        value = self.ssdm.execute(query).scalar()
        store = None
        if isinstance(value, ArrayProxy):
            store = value.store
            value = value.resolve()
        if isinstance(value, NumericArray):
            self.elements_transferred += value.element_count
        else:
            self.elements_transferred += 1
        if store is None:
            # slices resolve during evaluation, through the link store
            store = getattr(self.ssdm, "_npy_link_store", None) \
                or getattr(self.ssdm, "array_store", None)
        self.last_fetch_stats = getattr(store, "last_resolve_stats", None)
        return value

    def reduce(self, uri, op, subscript=""):
        """Server-side reduction: only the scalar crosses to the client."""
        if op not in ("sum", "avg", "min", "max"):
            raise SciSparqlError("unknown reduction %r" % (op,))
        query = (
            "PREFIX wb: <%s> SELECT (array_%s(?a%s) AS ?v)"
            " WHERE { <%s> wb:data ?a }"
            % (WB.base, op, subscript, uri.value)
        )
        value = self.ssdm.execute(query).scalar()
        self.elements_transferred += 1
        return value

    def metadata(self, uri):
        """All metadata properties of a result, as {local_name: value}."""
        query = (
            "PREFIX wb: <%s> SELECT ?p ?v WHERE { <%s> ?p ?v }"
            % (WB.base, uri.value)
        )
        out = {}
        for prop, value in self.ssdm.execute(query).rows:
            if isinstance(prop, URI) and prop in WB:
                local = WB.local_name(prop)
                if local != "data":
                    out[local] = value
        return out


def _literal(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return '"%s"' % str(value).replace('"', '\\"')
