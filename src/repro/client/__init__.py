"""Client/server embedding of SSDM.

- :mod:`repro.client.server` — a line-delimited-JSON TCP server exposing
  one SSDM instance, plus the matching client (SSDM as a stand-alone
  server process, section 5.1).
- :mod:`repro.client.workbench` — the Matlab-integration analogue
  (chapter 7): a computational-workbench client that stores numeric
  results as file-linked arrays, annotates them with RDF metadata, and
  queries them back with SciSPARQL — including server-side array
  reduction to cut transfer volume.
"""

from repro.client.server import SSDMServer, SSDMClient
from repro.client.workbench import WorkbenchClient

__all__ = ["SSDMServer", "SSDMClient", "WorkbenchClient"]
