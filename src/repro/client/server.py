"""A minimal SSDM query server and client.

SSDM can run stand-alone, client-server, or peer-to-peer (section 5.1);
this module provides the client-server mode over a line-delimited JSON
protocol on TCP:

    request:  {"op": "query",  "text": "<SciSPARQL>", "timeout_ms": 500,
               "min_seq": 12, "at_seq": 12}
    request:  {"op": "update", "text": "<SciSPARQL update>", "epoch": 2}
    request:  {"op": "stats"} / {"op": "health"} / {"op": "promote"}
    request:  {"op": "metrics"} / {"op": "slowlog", "threshold_ms": 50}
    request:  {"op": "explain", "text": "<SciSPARQL>"}
    request:  {"op": "verify", "repair": false}
    request:  {"op": "wal_since", "since": 12, "epoch": 2,
               "max_records": 512, "wait_ms": 100}
    response: {"ok": true, "columns": [...], "rows": [[...], ...]}
              {"ok": true, "result": <bool-or-int>, "seq": 13, "epoch": 2}
              {"ok": true, "stats": {...}} / {"ok": true, "plan": "..."}
              {"ok": true, "records": [[13, "<payload>"], ...],
               "last_seq": 13, "epoch": 2, "restart": false}
              {"ok": false, "code": "TIMEOUT", "error": "...",
               "retryable": false}

Queries run concurrently (sharing the process-wide chunk buffer pool, so
parallel requests deduplicate their fetches) and are **never blocked by
writers**: every admitted read pins an immutable MVCC snapshot of the
dataset at its admission sequence (see :mod:`repro.mvcc`), so a long
analytical scan and a write burst proceed independently.  Updates
serialize against each other on a single-writer mutex ordered by WAL
append; there is no read lock anywhere on the read path.  A query may
carry ``at_seq`` to read the *exact* published version at a WAL
sequence: a seq ahead of the node answers ``LAGGING`` (retryable), a
seq that fell out of the bounded retention window answers
``SNAPSHOT_GONE`` (non-retryable — re-issue without ``at_seq``).

Request lifecycle (see ``docs/LANGUAGE.md``): each request is minted a
:class:`~repro.lifecycle.Deadline` from its ``timeout_ms`` field (falling
back to the server's ``default_timeout_ms``); engine and storage loops
poll it cooperatively, and expiry surfaces as an ``{"ok": false, "code":
"TIMEOUT"}`` response with the handler thread, read lock, and buffer-pool
pins all released.  Admission is a bounded two-lane queue
(``priority: "interactive" | "batch"``) over ``max_concurrent``
execution slots: batch waits behind interactive and is shed first, and
requests beyond the queue (or waiting past ``queue_wait_ms`` / their
deadline) are shed with code ``OVERLOAD`` plus a ``retry_after_ms``
pacing hint, which the client's capped, jittered retry backoff honors.
Admitted requests run inside a resource-governor budget scope; a query
that blows its row/byte budget dies with the non-retryable ``RESOURCE``
code (see :mod:`repro.governor`).

Array values cross the wire as ``{"@array": <nested lists>}``; proxies are
resolved server-side before serialization, so the client never needs
back-end access (the transfer-size economics chapter 7 measures).

Replication (see :mod:`repro.replication`): a server runs in the
``primary`` or ``replica`` role.  Replicas reject writes with
``READONLY``; primaries stream their WAL through ``wal_since`` (a
long-poll bounded by the request deadline) to follower
``ReplicationClient`` tails.  Every replicated exchange carries a
fencing *epoch*: the ``promote`` admin op bumps it, and a server that
sees a newer epoch on any request steps down to a replica and answers
``FENCED`` — a deposed primary can neither accept stale writes nor ship
a divergent stream.  A query may carry ``min_seq`` as a read barrier:
a node whose applied WAL sequence is behind answers ``LAGGING``.
"""

from __future__ import annotations

import json
import random
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Optional

from repro.algebra.cost import estimate_plan_cost
from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import (
    ConnectionClosedError,
    FencedError,
    ReadOnlyError,
    ReplicaLaggingError,
    RequestTimeoutError,
    SciSparqlError,
    ServerOverloadedError,
    StorageError,
    error_code,
    error_from_code,
)
from repro.governor import (
    BATCH, INTERACTIVE, AdmissionQueue, get_governor,
)
from repro.lifecycle import Deadline, deadline_scope
from repro import observability as obs
from repro.rdf.term import BlankNode, Literal, URI
from repro.replication import PRIMARY, REPLICA, ReplicationState
from repro.ssdm import SSDM, QueryResult


def serialize_value(value):
    """JSON-encode one result value."""
    if value is None:
        return None
    if isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, URI):
        return {"@uri": value.value}
    if isinstance(value, BlankNode):
        return {"@bnode": value.label}
    if isinstance(value, Literal):
        return {"@literal": value.lexical_form(),
                "datatype": value.datatype.value,
                "lang": value.lang}
    if isinstance(value, ArrayProxy):
        value = value.resolve()
        if not isinstance(value, NumericArray):
            return value
    if isinstance(value, NumericArray):
        return {"@array": value.to_nested_lists()}
    return {"@repr": repr(value)}


def deserialize_value(payload):
    if isinstance(payload, dict):
        if "@uri" in payload:
            return URI(payload["@uri"])
        if "@bnode" in payload:
            return BlankNode(payload["@bnode"])
        if "@literal" in payload:
            lang = payload.get("lang")
            if lang:
                # language-tagged string: reconstruct the tag (the
                # datatype is implied to be rdf:langString)
                return Literal(payload["@literal"], lang=lang)
            return Literal.from_lexical(
                payload["@literal"], URI(payload["datatype"])
            )
        if "@array" in payload:
            return NumericArray(payload["@array"])
        return payload
    return payload


class _WriteMutex:
    """Single-writer mutex ordering mutations by WAL append.

    MVCC snapshot reads (:mod:`repro.mvcc`) removed readers from the
    locking picture: an admitted query pins the immutable published
    dataset version and never touches this mutex, so reads cannot delay
    writes and writes cannot delay reads.  What remains is mutual
    exclusion between *mutators* — client updates, streamed replication
    records, and verify ``repair`` — each of which appends to the WAL
    and publishes a new version before releasing.  ``writing`` bounds
    the wait by the request deadline and surfaces expiry as a typed
    ``TIMEOUT``.
    """

    def __init__(self):
        self._lock = threading.Lock()

    def locked(self):
        return self._lock.locked()

    @contextmanager
    def writing(self, deadline=None):
        budget = _lock_budget(deadline)
        if budget is None:
            acquired = self._lock.acquire()
        else:
            acquired = self._lock.acquire(timeout=max(0.0, budget))
        if not acquired:
            raise RequestTimeoutError(
                "timed out waiting for the server's write mutex"
            )
        try:
            yield
        finally:
            self._lock.release()


def _lock_budget(deadline):
    """Seconds a lock acquisition may wait under ``deadline``."""
    if deadline is None:
        return None
    return deadline.remaining()


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                response = self.server.ssdm_dispatch(request)
            except SciSparqlError as error:
                response = _error_response(error)
            except Exception as error:
                response = {
                    "ok": False, "code": "INTERNAL", "error": str(error),
                    "retryable": False,
                }
            try:
                payload = json.dumps(response)
            except (TypeError, ValueError) as error:
                # a non-JSON-serializable value reached the response
                # (e.g. inside an {"@repr": ...} payload): never kill
                # the connection without an answer
                payload = json.dumps({
                    "ok": False, "code": "INTERNAL",
                    "error": "response not serializable: %s" % (error,),
                    "retryable": False,
                })
            try:
                self.wfile.write((payload + "\n").encode("utf-8"))
                self.wfile.flush()
            except OSError:
                return           # client went away mid-response


def _error_response(error):
    response = {
        "ok": False,
        "code": error_code(error),
        "error": str(error),
        "retryable": bool(getattr(error, "retryable", False)),
    }
    retry_after_ms = getattr(error, "retry_after_ms", None)
    if retry_after_ms is not None:
        response["retry_after_ms"] = int(retry_after_ms)
    return response


class SSDMServer(socketserver.ThreadingTCPServer):
    """Serves one SSDM instance on a TCP port.

    ``default_timeout_ms`` bounds every request that does not carry its
    own ``timeout_ms`` field (None = unbounded).  ``max_concurrent``
    caps simultaneously *executing* query/update/explain requests; up
    to ``max_queue`` further requests wait (bounded by ``queue_wait_ms``
    and their own deadline) in a two-lane admission queue — interactive
    before batch, batch shed first when the queue fills — and every
    shed is a typed ``OVERLOAD`` carrying a ``retry_after_ms`` pacing
    hint.  ``max_queue=0`` restores the old immediate binary shed.
    Queries may carry ``priority: "batch"``; interactive queries whose
    estimated plan cost (:func:`~repro.algebra.cost.estimate_plan_cost`)
    reaches ``batch_cost_threshold`` are demoted to the batch lane, so
    analytical scans cannot crowd point lookups out of the queue.
    Admitted requests execute inside a ``governor`` budget scope (the
    process-wide one by default): blowing the per-query row/byte budget
    aborts with the non-retryable ``RESOURCE`` code.  ``stats`` /
    ``health`` / ``metrics`` requests always pass, so monitoring works
    under load.

    >>> server = SSDMServer(SSDM(), port=0)   # 0 = ephemeral port
    >>> port = server.server_address[1]
    >>> server.start()            # background thread
    >>> # ... SSDMClient("127.0.0.1", port) ...
    >>> server.shutdown()
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, ssdm, host="127.0.0.1", port=0,
                 default_timeout_ms=None, max_concurrent=64,
                 role=PRIMARY, epoch=1, max_queue=16,
                 queue_wait_ms=1000.0, batch_cost_threshold=100_000.0,
                 governor=None):
        super().__init__((host, port), _Handler)
        self.ssdm = ssdm
        self._thread: Optional[threading.Thread] = None
        self._write_mutex = _WriteMutex()
        self.default_timeout_ms = default_timeout_ms
        self.max_concurrent = (
            None if max_concurrent is None else int(max_concurrent)
        )
        self.batch_cost_threshold = float(batch_cost_threshold)
        self.governor = governor if governor is not None else get_governor()
        ssdm.governor = self.governor
        self._queue = AdmissionQueue(
            max_active=self.max_concurrent, max_queue=max_queue,
            max_wait_ms=queue_wait_ms,
        )
        self._admission = threading.Lock()
        #: query text -> estimated plan cost (None = unpriceable);
        #: bounded LRU so admission never re-plans a repeated query
        self._cost_cache: "OrderedDict[str, Optional[float]]" = OrderedDict()
        #: Lifecycle counters, surfaced in the ``stats`` op.
        self._counters = {
            "requests": 0, "timeouts": 0, "shed": 0, "errors": 0,
            "resource_aborts": 0, "demoted_batch": 0, "snapshot_gone": 0,
        }
        # retained MVCC versions count toward the governor's memory
        # pressure signal, so long snapshot readers trigger degradation
        # (APR off, pool shrink) before anything is killed
        register = getattr(self.governor, "add_retained_source", None)
        mvcc = getattr(ssdm, "mvcc", None)
        if register is not None and mvcc is not None:
            register(mvcc)
        #: Replication identity (role + fencing epoch); shared with an
        #: attached :class:`~repro.replication.ReplicationClient` and
        #: surfaced through ``SSDM.stats()``.
        self.replication = ReplicationState(role=role, epoch=epoch)
        ssdm.replication = self.replication
        #: follower_id -> {"seq": acked seq, "epoch": follower epoch}
        self._followers = {}
        self._repl_client = None

    # -- replication wiring ------------------------------------------------------

    def attach_replication(self, host, port, **kwargs):
        """Tail ``host:port`` as this server's upstream primary.

        Builds a :class:`~repro.replication.ReplicationClient` sharing
        this server's replication state and write mutex (streamed
        deltas apply exclusively, like local updates would; snapshot
        readers are unaffected).  The caller starts/stops it;
        :meth:`stop` and ``promote`` stop it too.
        """
        from repro.replication import ReplicationClient

        client = ReplicationClient(
            self.ssdm, host, port, state=self.replication,
            write_guard=self._write_mutex.writing, **kwargs
        )
        self._repl_client = client
        return client

    # -- request dispatch --------------------------------------------------------

    def ssdm_dispatch(self, request):
        op = request.get("op")
        # stats / health / promote / metrics / slowlog bypass admission
        # control, so monitoring and failover keep working on a
        # saturated server
        if op == "stats":
            return {"ok": True, "stats": self._stats_payload()}
        if op == "health":
            return {"ok": True, "health": self._replication_payload()}
        if op == "promote":
            return self._op_promote()
        if op == "metrics":
            return {"ok": True, "metrics": obs.metrics().snapshot()}
        if op == "slowlog":
            return self._op_slowlog(request)
        if op not in ("query", "update", "explain", "verify", "wal_since"):
            return {"ok": False, "code": "BAD_REQUEST",
                    "error": "unknown op %r" % (op,), "retryable": False}
        deadline = self._deadline_for(request)
        priority = self._priority_for(op, request)
        if priority is None:
            return {"ok": False, "code": "BAD_REQUEST",
                    "error": "priority must be %r or %r, got %r"
                    % (INTERACTIVE, BATCH, request.get("priority")),
                    "retryable": False}
        with self._admission:
            self._counters["requests"] += 1
        try:
            self._queue.admit(priority, deadline)
        except ServerOverloadedError as error:
            with self._admission:
                self._counters["shed"] += 1
            return _error_response(error)
        registry = obs.metrics()
        registry.inc("server_requests_total")
        started = time.monotonic()
        try:
            with registry.timer("server_request_seconds"), \
                    deadline_scope(deadline), \
                    self.governor.scope(priority=priority):
                return self._dispatch_admitted(op, request, deadline)
        except SciSparqlError as error:
            code = error_code(error)
            with self._admission:
                if code in ("TIMEOUT", "CANCELLED"):
                    self._counters["timeouts"] += 1
                elif code == "RESOURCE":
                    self._counters["resource_aborts"] += 1
                elif code == "SNAPSHOT_GONE":
                    self._counters["snapshot_gone"] += 1
                else:
                    self._counters["errors"] += 1
            return _error_response(error)
        finally:
            self._queue.release(time.monotonic() - started)

    def _priority_for(self, op, request):
        """The admission lane for one request (None = invalid field).

        Everything defaults to the interactive lane — updates and WAL
        streaming are latency-sensitive — but a query whose estimated
        plan cost reaches ``batch_cost_threshold`` is demoted to batch,
        so self-declared priority cannot smuggle an analytical scan
        ahead of point lookups.
        """
        priority = request.get("priority") or INTERACTIVE
        if priority not in (INTERACTIVE, BATCH):
            return None
        if op == "query" and priority == INTERACTIVE:
            cost = self._estimate_cost(request.get("text", ""))
            if cost is not None and cost >= self.batch_cost_threshold:
                priority = BATCH
                with self._admission:
                    self._counters["demoted_batch"] += 1
                obs.metrics().inc("server_demoted_batch_total")
        return priority

    def _estimate_cost(self, text):
        """Cached :func:`estimate_plan_cost` for one query text.

        Pricing must never break a request: any planning failure (parse
        error, unsupported form) prices as None — execution will report
        the real error through the normal path.  The cache is not
        invalidated on update; estimates only steer lane choice, so a
        stale price costs queue position at worst.
        """
        if not text:
            return None
        with self._admission:
            if text in self._cost_cache:
                self._cost_cache.move_to_end(text)
                return self._cost_cache[text]
        try:
            # price against a pinned snapshot: planning reads graph
            # statistics, which must not race a concurrent writer's
            # overlay mutation
            with self.ssdm._read_snapshot():
                plan, _ = self.ssdm.plan(text)
                cost = float(
                    estimate_plan_cost(plan, self.ssdm.dataset.graph(None))
                )
        except Exception:
            cost = None
        with self._admission:
            self._cost_cache[text] = cost
            while len(self._cost_cache) > 512:
                self._cost_cache.popitem(last=False)
        return cost

    def _op_slowlog(self, request):
        """Serve (and optionally reconfigure or clear) the slow-query
        log.  ``threshold_ms`` / ``capacity`` adjust the log before the
        snapshot is taken; ``clear`` empties it afterwards."""
        log = obs.slow_query_log()
        if request.get("threshold_ms") is not None \
                or request.get("capacity") is not None:
            log.configure(
                capacity=request.get("capacity"),
                threshold_ms=request.get("threshold_ms"),
            )
        payload = log.snapshot()
        if request.get("clear"):
            log.clear()
        return {"ok": True, "slowlog": payload}

    def _dispatch_admitted(self, op, request, deadline):
        text = request.get("text", "")
        if op in ("update", "wal_since"):
            self._observe_request_epoch(request)
        if op == "wal_since":
            return self._op_wal_since(request, deadline)
        if op == "update" and not self.replication.is_primary():
            raise ReadOnlyError(
                "this server is a replica (epoch %d): writes must go to "
                "the primary" % self.replication.snapshot()["epoch"]
            )
        if op == "query":
            self._check_read_barrier(request)
        if op == "explain":
            from repro.client.results_format import explain_payload
            # lock-free: planning reads a pinned snapshot, so it
            # neither blocks on nor races a concurrent writer
            with self.ssdm._read_snapshot():
                payload = explain_payload(
                    self.ssdm, text,
                    objectlog=bool(request.get("objectlog")),
                    costs=bool(request.get("costs")),
                )
            return {"ok": True, **payload}
        if op == "verify":
            store = self.ssdm.array_store
            if store is None:
                return {"ok": True, "report": None}
            # repair moves chunks aside, so it serializes with other
            # mutators; a plain verify only reads and runs lock-free
            repair = bool(request.get("repair"))
            if repair:
                with self._write_mutex.writing(deadline):
                    report = store.repair()
            else:
                report = store.verify()
            return {"ok": True, "report": report}
        if op == "update":
            # the single-writer mutex: updates serialize against each
            # other (and replication applies); snapshot readers never
            # wait here
            with self._write_mutex.writing(deadline):
                result = self.ssdm.execute(text)
        else:
            # lock-free read: execute() pins an immutable MVCC snapshot
            # at admission; at_seq requests the exact published version
            # at a WAL sequence (LAGGING if ahead, SNAPSHOT_GONE if
            # evicted from the retention window)
            at_seq = request.get("at_seq")
            result = self.ssdm.execute(
                text, at_seq=None if at_seq is None else int(at_seq)
            )
        if op == "update":
            response = {"ok": True, "result": result,
                        "epoch": self.replication.snapshot()["epoch"]}
            if self.ssdm.journal is not None:
                # the WAL position this write is durable at — clients
                # use it as a read-your-writes barrier on replicas
                response["seq"] = self.ssdm.journal.last_seq
            return response
        # serialization stays under the deadline (it may resolve array
        # proxies); the snapshot was released by execute(), so a slow
        # transfer retains no version memory
        if isinstance(result, QueryResult):
            return {
                "ok": True,
                "columns": result.columns,
                "rows": [
                    [serialize_value(v) for v in row]
                    for row in result.rows
                ],
            }
        if isinstance(result, bool):
            return {"ok": True, "result": result}
        if isinstance(result, int):
            return {"ok": True, "result": result}
        # CONSTRUCT/DESCRIBE: ship NTriples text
        if hasattr(result, "to_ntriples"):
            return {"ok": True, "ntriples": result.to_ntriples()}
        return {"ok": True, "result": repr(result)}

    # -- replication ops ---------------------------------------------------------

    def _observe_request_epoch(self, request):
        """Fence this node against requests from a newer epoch.

        A request carrying a higher epoch proves a promotion happened
        elsewhere: a primary steps down (it must not accept writes or
        ship its now-divergent stream) and the request is refused with
        ``FENCED`` so the peer re-probes for the real primary.
        """
        epoch = request.get("epoch")
        if epoch is None:
            return
        if self.replication.observe_epoch(int(epoch)):
            if self._repl_client is not None:
                self._repl_client.stop(join=False)
            raise FencedError(
                "request epoch %d supersedes this node's; it has "
                "stepped down to a replica" % int(epoch)
            )

    def _check_read_barrier(self, request):
        min_seq = request.get("min_seq")
        if not min_seq:
            return
        # the barrier is against the *published* MVCC seq, not the raw
        # journal tail: a record appended but not yet published is not
        # visible to a snapshot read, so answering from last_seq alone
        # could satisfy the barrier without satisfying the read
        applied = self.ssdm.dataset.published_seq
        if applied < int(min_seq):
            raise ReplicaLaggingError(
                "read barrier min_seq=%d not reached: this node has "
                "applied seq %d" % (int(min_seq), applied)
            )

    def _op_wal_since(self, request, deadline):
        """Stream journal records past ``since`` (bounded long-poll).

        Scans the append-only log without the server lock — appends
        only ever extend the intact prefix, so a concurrent reader sees
        a consistent record sequence — and therefore never blocks
        writers while a follower waits for news.
        """
        journal = self.ssdm.journal
        if journal is None:
            raise StorageError(
                "this server has no WAL to stream: open its SSDM with "
                "SSDM.open(path)"
            )
        since = int(request.get("since", 0))
        max_records = max(1, int(request.get("max_records", 512)))
        state = self.replication.snapshot()
        if since > journal.last_seq:
            # the follower is ahead of this log: either we recovered to
            # an older state or we compacted — a full resync is needed
            return {"ok": True, "epoch": state["epoch"],
                    "last_seq": journal.last_seq,
                    "restart": True, "records": []}
        self._long_poll_for_records(journal, since, request, deadline)
        records = journal.records_since(since, limit=max_records)
        follower_id = request.get("follower_id")
        if follower_id:
            with self._admission:
                self._followers[str(follower_id)] = {
                    "acked_seq": since,
                    "epoch": int(request.get("epoch", 0)),
                }
        return {
            "ok": True,
            "epoch": state["epoch"],
            "last_seq": journal.last_seq,
            "restart": False,
            "records": [
                [seq, payload.decode("utf-8")] for seq, payload in records
            ],
        }

    @staticmethod
    def _long_poll_for_records(journal, since, request, deadline):
        """Wait (bounded by ``wait_ms`` and the deadline) for news."""
        wait_ms = float(request.get("wait_ms", 0) or 0)
        if wait_ms <= 0:
            return
        end = time.monotonic() + wait_ms / 1000.0
        while journal.last_seq <= since:
            left = end - time.monotonic()
            if left <= 0 or deadline.expired():
                return
            budget = deadline.remaining()
            if budget is not None:
                left = min(left, budget)
            time.sleep(min(0.01, max(left, 0.0)))

    def _op_promote(self):
        """Make this node the primary of a new epoch (admin op)."""
        if self._repl_client is not None:
            self._repl_client.stop(join=False)
        epoch = self.replication.promote()
        return {"ok": True, "role": PRIMARY, "epoch": epoch}

    def _replication_payload(self):
        journal = self.ssdm.journal
        wal_seq = journal.last_seq if journal is not None else None
        state = self.replication.snapshot()
        with self._admission:
            followers = {
                follower_id: dict(
                    info,
                    lag=max(0, (wal_seq or 0) - info["acked_seq"]),
                )
                for follower_id, info in self._followers.items()
            }
        payload = dict(state, wal_seq=wal_seq, followers=followers)
        payload["upstream"] = (
            self._repl_client.status() if self._repl_client is not None
            else None
        )
        return payload

    def _deadline_for(self, request):
        timeout_ms = request.get("timeout_ms", self.default_timeout_ms)
        if timeout_ms is None:
            return Deadline(None)
        try:
            timeout_ms = float(timeout_ms)
        except (TypeError, ValueError):
            raise SciSparqlError(
                "timeout_ms must be a number, got %r" % (timeout_ms,)
            )
        return Deadline.after_ms(timeout_ms)

    def _stats_payload(self):
        stats = self.ssdm.stats()
        with self._admission:
            counters = dict(self._counters)
        stats["server"] = dict(
            counters,
            active=self._queue.active,
            max_concurrent=self.max_concurrent,
            admission=self._queue.snapshot(),
        )
        stats["replication"] = self._replication_payload()
        return stats

    # -- process control ---------------------------------------------------------

    def start(self):
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        if self._repl_client is not None:
            self._repl_client.stop(join=False)
        self.shutdown()
        self.server_close()


class SSDMClient:
    """Blocking client for :class:`SSDMServer` with retry + reconnect.

    Server-reported errors surface as the typed exceptions of
    :mod:`repro.exceptions` (``TIMEOUT`` ->
    :class:`~repro.exceptions.RequestTimeoutError`, ``PARSE`` ->
    :class:`~repro.exceptions.ParseError`, ...).  Retryable failures —
    an ``OVERLOAD`` shed or a dropped connection — are retried up to
    ``retries`` times with exponential backoff (``backoff`` seconds
    doubling each attempt by default), re-establishing the connection
    first when it was lost.  When an ``OVERLOAD`` response carries the
    server's ``retry_after_ms`` pacing hint, the pause honors it (at
    least the hint, rather than a blind exponential guess); every pause
    is jittered +-20% and capped at ``max_backoff`` seconds so a bogus
    or huge hint can never stall a client.  Updates are retried only
    after an ``OVERLOAD`` (the request was never admitted); a
    connection lost mid-update is never replayed, because the server
    may already have applied it.
    """

    def __init__(self, host="127.0.0.1", port=0, timeout=30.0,
                 retries=2, backoff=0.05, backoff_factor=2.0,
                 max_backoff=2.0, faults=None):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff = float(max_backoff)
        self._jitter = random.Random()
        #: Network fault injection (drop/delay/partition per peer).
        self.faults = faults
        self._peer = "%s:%s" % (host, port)
        #: Bytes received from the server, for transfer-volume accounting.
        self.bytes_received = 0
        #: Retry attempts performed over this client's lifetime.
        self.retries_performed = 0
        #: WAL seq of the last acknowledged update (read-your-writes).
        self.last_write_seq = 0
        self._socket = None
        self._file = None
        self._connect()

    def _connect(self):
        self._socket = socket.create_connection(
            (self._host, self._port), self._timeout
        )
        self._file = self._socket.makefile("rwb")

    def close(self):
        if self._file is not None:
            self._file.close()
            self._socket.close()
            self._file = None
            self._socket = None

    def _reconnect(self):
        try:
            self.close()
        except OSError:
            self._file = None
            self._socket = None
        self._connect()

    def _pause_for(self, failure, delay):
        """Seconds to sleep before the next retry attempt.

        The base is the exponential-backoff ``delay``, raised to the
        server's ``retry_after_ms`` hint when the failure carried one;
        the result is jittered (de-synchronizing a thundering herd of
        shed clients) and hard-capped at ``max_backoff``.
        """
        pause = delay
        hint_ms = getattr(failure, "retry_after_ms", None)
        if hint_ms:
            pause = max(pause, float(hint_ms) / 1000.0)
        pause *= 0.8 + 0.4 * self._jitter.random()
        return min(pause, self.max_backoff)

    def _call(self, request, idempotent=True):
        delay = self.backoff
        failure = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.retries_performed += 1
                time.sleep(self._pause_for(failure, delay))
                delay = min(delay * self.backoff_factor, self.max_backoff)
            try:
                if self._file is None:
                    self._connect()
                return self._call_once(request)
            except ConnectionClosedError as error:
                failure = error
                try:
                    self._reconnect()
                except OSError as network:
                    failure = ConnectionClosedError(
                        "reconnect to %s:%s failed: %s"
                        % (self._host, self._port, network)
                    )
                if not idempotent:
                    # the lost request may have been applied server-side
                    raise failure
            except ServerOverloadedError as error:
                failure = error      # shed pre-execution: always safe
            except ReplicaLaggingError as error:
                if not idempotent:
                    raise
                failure = error      # the replica is catching up
            except SciSparqlError:
                raise                # typed server error: not retryable
        raise failure

    def call(self, request, idempotent=True):
        """Send one raw protocol request; returns the response dict.

        The building block the replication stream and the replica-set
        client use for ops without a dedicated helper.  Retry semantics
        follow ``idempotent`` exactly like :meth:`query` /
        :meth:`update`.
        """
        return self._call(request, idempotent=idempotent)

    def _call_once(self, request):
        if self.faults is not None:
            self.faults.on_network(self._peer)
        try:
            self._file.write((json.dumps(request) + "\n").encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        except OSError as error:
            raise ConnectionClosedError(
                "connection to the server lost: %s" % (error,)
            )
        if not line:
            raise ConnectionClosedError(
                "server closed the connection before responding"
            )
        self.bytes_received += len(line)
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            error = error_from_code(
                response.get("code", "INTERNAL"),
                "server error: %s" % response.get("error"),
            )
            if response.get("retry_after_ms") is not None:
                error.retry_after_ms = response["retry_after_ms"]
            raise error
        return response

    def query(self, text, timeout_ms=None, min_seq=None,
              read_your_writes=False, priority=None, at_seq=None):
        """Run a SELECT/ASK; returns QueryResult or bool.

        ``timeout_ms`` bounds the server-side execution; expiry raises
        :class:`~repro.exceptions.RequestTimeoutError`.  ``min_seq``
        (or ``read_your_writes=True``, which uses the seq of this
        client's last acknowledged update) installs a read barrier: a
        replica that has not applied that WAL position answers
        ``LAGGING`` (retryable — it is catching up).  ``at_seq`` asks
        for the *exact* MVCC version published at that WAL sequence: a
        seq the node has not reached answers ``LAGGING``, one that
        fell out of the bounded retention window answers
        ``SNAPSHOT_GONE`` (non-retryable — re-issue without ``at_seq``
        for the freshest version).  ``priority`` routes the request
        into the server's ``"interactive"`` (default) or ``"batch"``
        admission lane; batch is shed first under overload.
        """
        request = _request("query", text, timeout_ms)
        if read_your_writes:
            min_seq = max(min_seq or 0, self.last_write_seq)
        if min_seq:
            request["min_seq"] = int(min_seq)
        if at_seq is not None:
            request["at_seq"] = int(at_seq)
        if priority is not None:
            request["priority"] = priority
        response = self._call(request)
        if "columns" in response:
            rows = [
                tuple(deserialize_value(v) for v in row)
                for row in response["rows"]
            ]
            return QueryResult(response["columns"], rows)
        if "ntriples" in response:
            return response["ntriples"]
        return response.get("result")

    def update(self, text, timeout_ms=None, epoch=None):
        """Run an update; never replayed after a lost connection.

        ``epoch`` fences the write: a server that has been superseded
        by a newer epoch answers ``FENCED`` instead of accepting it.
        On success the server's WAL seq (when journaled) is recorded
        as ``last_write_seq`` for read-your-writes barriers.
        """
        request = _request("update", text, timeout_ms)
        if epoch is not None:
            request["epoch"] = int(epoch)
        response = self._call(request, idempotent=False)
        seq = response.get("seq")
        if seq:
            self.last_write_seq = max(self.last_write_seq, int(seq))
        return response.get("result")

    def health(self):
        """The server's replication health: role, epoch, seq, lag."""
        return self._call({"op": "health"})["health"]

    def promote(self):
        """Promote the server to primary of a new epoch; returns it."""
        return self._call({"op": "promote"})["epoch"]

    def wal_since(self, since, epoch=None, max_records=512, wait_ms=None,
                  follower_id=None):
        """Fetch journal records past ``since`` (one stream poll)."""
        request = {"op": "wal_since", "since": int(since),
                   "max_records": int(max_records)}
        if epoch is not None:
            request["epoch"] = int(epoch)
        if wait_ms is not None:
            request["wait_ms"] = wait_ms
        if follower_id is not None:
            request["follower_id"] = follower_id
        return self._call(request)

    def stats(self):
        """The server's storage, buffer-pool, and lifecycle counters."""
        return self._call({"op": "stats"})["stats"]

    def metrics(self):
        """The server's process-wide metrics registry snapshot."""
        return self._call({"op": "metrics"})["metrics"]

    def slowlog(self, threshold_ms=None, capacity=None, clear=False):
        """The server's slow-query log (worst traces, slowest first).

        ``threshold_ms`` / ``capacity`` reconfigure the log before the
        snapshot; ``clear=True`` empties it after taking the snapshot.
        """
        request = {"op": "slowlog"}
        if threshold_ms is not None:
            request["threshold_ms"] = threshold_ms
        if capacity is not None:
            request["capacity"] = capacity
        if clear:
            request["clear"] = True
        return self._call(request, idempotent=not clear)["slowlog"]

    def verify(self, repair=False, timeout_ms=None):
        """Run an integrity scan of the server's array store.

        Returns the verify/repair report dict, or None when the server
        has no array store.  With ``repair=True`` damaged chunks are
        quarantined (the request is not retried on connection loss, as
        a repair may have been applied server-side).
        """
        request = {"op": "verify", "repair": bool(repair)}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        response = self._call(request, idempotent=not repair)
        return response.get("report")

    def explain(self, text, objectlog=False, costs=False):
        """EXPLAIN a query server-side; returns {plan, stats}."""
        response = self._call({
            "op": "explain", "text": text,
            "objectlog": objectlog, "costs": costs,
        })
        return {"plan": response["plan"], "stats": response["stats"]}


def _request(op, text, timeout_ms):
    request = {"op": op, "text": text}
    if timeout_ms is not None:
        request["timeout_ms"] = timeout_ms
    return request
