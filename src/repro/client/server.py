"""A minimal SSDM query server and client.

SSDM can run stand-alone, client-server, or peer-to-peer (section 5.1);
this module provides the client-server mode over a line-delimited JSON
protocol on TCP:

    request:  {"op": "query",  "text": "<SciSPARQL>"}
    request:  {"op": "update", "text": "<SciSPARQL update>"}
    request:  {"op": "stats"}
    request:  {"op": "explain", "text": "<SciSPARQL>"}
    response: {"ok": true, "columns": [...], "rows": [[...], ...]}
              {"ok": true, "result": <bool-or-int>}
              {"ok": true, "stats": {...}} / {"ok": true, "plan": "..."}
              {"ok": false, "error": "..."}

Queries run concurrently (sharing the process-wide chunk buffer pool, so
parallel requests deduplicate their fetches); updates take the server's
write lock and run exclusively.

Array values cross the wire as ``{"@array": <nested lists>}``; proxies are
resolved server-side before serialization, so the client never needs
back-end access (the transfer-size economics chapter 7 measures).
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from contextlib import contextmanager
from typing import Optional

from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import SciSparqlError
from repro.rdf.term import BlankNode, Literal, URI
from repro.ssdm import SSDM, QueryResult


def serialize_value(value):
    """JSON-encode one result value."""
    if value is None:
        return None
    if isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, URI):
        return {"@uri": value.value}
    if isinstance(value, BlankNode):
        return {"@bnode": value.label}
    if isinstance(value, Literal):
        return {"@literal": value.lexical_form(),
                "datatype": value.datatype.value,
                "lang": value.lang}
    if isinstance(value, ArrayProxy):
        value = value.resolve()
        if not isinstance(value, NumericArray):
            return value
    if isinstance(value, NumericArray):
        return {"@array": value.to_nested_lists()}
    return {"@repr": repr(value)}


def deserialize_value(payload):
    if isinstance(payload, dict):
        if "@uri" in payload:
            return URI(payload["@uri"])
        if "@bnode" in payload:
            return BlankNode(payload["@bnode"])
        if "@literal" in payload:
            return Literal.from_lexical(
                payload["@literal"], URI(payload["datatype"])
            )
        if "@array" in payload:
            return NumericArray(payload["@array"])
        return payload
    return payload


class _ReadWriteLock:
    """Many concurrent readers (queries) or one writer (updates)."""

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writing = False

    def acquire_read(self):
        with self._condition:
            while self._writing:
                self._condition.wait()
            self._readers += 1

    def release_read(self):
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self):
        with self._condition:
            while self._writing or self._readers:
                self._condition.wait()
            self._writing = True

    def release_write(self):
        with self._condition:
            self._writing = False
            self._condition.notify_all()

    @contextmanager
    def reading(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                response = self.server.ssdm_dispatch(request)
            except Exception as error:
                response = {"ok": False, "error": str(error)}
            self.wfile.write(
                (json.dumps(response) + "\n").encode("utf-8")
            )
            self.wfile.flush()


class SSDMServer(socketserver.ThreadingTCPServer):
    """Serves one SSDM instance on a TCP port.

    >>> server = SSDMServer(SSDM(), port=0)   # 0 = ephemeral port
    >>> port = server.server_address[1]
    >>> server.start()            # background thread
    >>> # ... SSDMClient("127.0.0.1", port) ...
    >>> server.shutdown()
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, ssdm, host="127.0.0.1", port=0):
        super().__init__((host, port), _Handler)
        self.ssdm = ssdm
        self._thread: Optional[threading.Thread] = None
        self._lock = _ReadWriteLock()

    def ssdm_dispatch(self, request):
        op = request.get("op")
        text = request.get("text", "")
        if op == "stats":
            return {"ok": True, "stats": self.ssdm.stats()}
        if op == "explain":
            from repro.client.results_format import explain_payload
            with self._lock.reading():
                payload = explain_payload(
                    self.ssdm, text,
                    objectlog=bool(request.get("objectlog")),
                    costs=bool(request.get("costs")),
                )
            return {"ok": True, **payload}
        if op not in ("query", "update"):
            return {"ok": False, "error": "unknown op %r" % (op,)}
        # queries share the graph read-only and may overlap — the buffer
        # pool deduplicates their chunk fetches; updates run exclusively
        guard = (
            self._lock.writing() if op == "update"
            else self._lock.reading()
        )
        with guard:
            result = self.ssdm.execute(text)
        if isinstance(result, QueryResult):
            return {
                "ok": True,
                "columns": result.columns,
                "rows": [
                    [serialize_value(v) for v in row]
                    for row in result.rows
                ],
            }
        if isinstance(result, bool):
            return {"ok": True, "result": result}
        if isinstance(result, int):
            return {"ok": True, "result": result}
        # CONSTRUCT/DESCRIBE: ship NTriples text
        if hasattr(result, "to_ntriples"):
            return {"ok": True, "ntriples": result.to_ntriples()}
        return {"ok": True, "result": repr(result)}

    def start(self):
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self.shutdown()
        self.server_close()


class SSDMClient:
    """Blocking client for :class:`SSDMServer`."""

    def __init__(self, host="127.0.0.1", port=0, timeout=30.0):
        self._socket = socket.create_connection((host, port), timeout)
        self._file = self._socket.makefile("rwb")
        #: Bytes received from the server, for transfer-volume accounting.
        self.bytes_received = 0

    def close(self):
        self._file.close()
        self._socket.close()

    def _call(self, request):
        self._file.write((json.dumps(request) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        self.bytes_received += len(line)
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise SciSparqlError(
                "server error: %s" % response.get("error")
            )
        return response

    def query(self, text):
        """Run a SELECT/ASK; returns QueryResult or bool."""
        response = self._call({"op": "query", "text": text})
        if "columns" in response:
            rows = [
                tuple(deserialize_value(v) for v in row)
                for row in response["rows"]
            ]
            return QueryResult(response["columns"], rows)
        if "ntriples" in response:
            return response["ntriples"]
        return response.get("result")

    def update(self, text):
        response = self._call({"op": "update", "text": text})
        return response.get("result")

    def stats(self):
        """The server's storage and buffer-pool counters."""
        return self._call({"op": "stats"})["stats"]

    def explain(self, text, objectlog=False, costs=False):
        """EXPLAIN a query server-side; returns {plan, stats}."""
        response = self._call({
            "op": "explain", "text": text,
            "objectlog": objectlog, "costs": costs,
        })
        return {"plan": response["plan"], "stats": response["stats"]}
