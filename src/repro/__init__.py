"""Scientific SPARQL (SciSPARQL / SSDM) — a faithful Python reproduction.

Reproduces "Scientific SPARQL: Semantic Web Queries over Scientific Data"
(Andrejev & Risch, ICDE Workshops 2012) and the surrounding SSDM system
from Andrejev's dissertation: the RDF-with-Arrays data model, the
SciSPARQL query language (SPARQL 1.1 + arrays, UDFs, closures,
second-order functions), the query processing pipeline, and scalable
external array storage with lazy proxy resolution.

Quick start::

    from repro import SSDM
    ssdm = SSDM()
    ssdm.load_turtle_text(
        '@prefix : <http://example.org/> . :m :val ((1 2) (3 4)) .'
    )
    print(ssdm.execute(
        'PREFIX : <http://example.org/> '
        'SELECT ?a[2,1] WHERE { ?s :val ?a }'
    ).rows)
"""

from repro.ssdm import SSDM, QueryResult
from repro.rdf import (
    URI, BlankNode, Literal, Graph, Dataset, Namespace,
    RDF, RDFS, XSD, FOAF, QB, OWL,
)
from repro.arrays import NumericArray, ArrayProxy, Span
from repro.storage import (
    MemoryArrayStore, FileArrayStore, SqlArrayStore,
    APRResolver, Strategy, ChunkCache,
    DatasetJournal, WriteAheadLog, FaultPlan, SimulatedCrash,
)
from repro.exceptions import (
    SciSparqlError, ParseError, QueryError, EvaluationError, StorageError,
    CorruptionError,
    RequestTimeoutError, RequestCancelledError, ServerOverloadedError,
    ConnectionClosedError, ResourceExhaustedError,
    ReadOnlyError, FencedError, ReplicaLaggingError,
)
from repro.governor import (
    ResourceGovernor, ResourceScope, CircuitBreaker, AdmissionQueue,
    current_scope, resource_scope, get_governor,
)
from repro.lifecycle import Deadline, current_deadline, deadline_scope
from repro.observability import (
    MetricsRegistry, QueryTrace, SlowQueryLog,
    metrics, set_tracing, slow_query_log,
)
from repro.replication import (
    ReplicationState, ReplicationClient, ReplicaSetClient, start_replica,
)

__version__ = "1.0.0"

__all__ = [
    "SSDM",
    "QueryResult",
    "URI",
    "BlankNode",
    "Literal",
    "Graph",
    "Dataset",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "FOAF",
    "QB",
    "OWL",
    "NumericArray",
    "ArrayProxy",
    "Span",
    "MemoryArrayStore",
    "FileArrayStore",
    "SqlArrayStore",
    "APRResolver",
    "Strategy",
    "ChunkCache",
    "DatasetJournal",
    "WriteAheadLog",
    "FaultPlan",
    "SimulatedCrash",
    "SciSparqlError",
    "ParseError",
    "QueryError",
    "EvaluationError",
    "StorageError",
    "CorruptionError",
    "RequestTimeoutError",
    "RequestCancelledError",
    "ServerOverloadedError",
    "ConnectionClosedError",
    "ResourceExhaustedError",
    "ResourceGovernor",
    "ResourceScope",
    "CircuitBreaker",
    "AdmissionQueue",
    "current_scope",
    "resource_scope",
    "get_governor",
    "ReadOnlyError",
    "FencedError",
    "ReplicaLaggingError",
    "ReplicationState",
    "ReplicationClient",
    "ReplicaSetClient",
    "start_replica",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "MetricsRegistry",
    "QueryTrace",
    "SlowQueryLog",
    "metrics",
    "set_tracing",
    "slow_query_log",
    "__version__",
]
