"""Exception hierarchy for the SciSPARQL / SSDM reproduction.

All library errors derive from :class:`SciSparqlError` so callers can catch
one base class.  Parse errors carry position information; query-evaluation
errors follow the SPARQL convention of being *suppressible* inside FILTER
expressions (an error there makes the filter fail rather than aborting the
whole query, see dissertation section 3.6 "Error Handling").

Request-lifecycle errors (timeout, cancellation, overload, lost
connection) deliberately do NOT derive from :class:`EvaluationError`, so
they are never suppressed by FILTER/BIND error semantics: an expired
deadline aborts the whole query no matter where the engine happens to be.

Every error class carries a wire ``code`` and a ``retryable`` flag; the
client/server protocol ships ``{"ok": false, "code": ..., "error": ...}``
and :func:`error_from_code` maps the code back to the matching typed
exception on the client side.
"""

from __future__ import annotations


class SciSparqlError(Exception):
    """Base class for all errors raised by this library."""

    #: Wire-protocol error code (see ``docs/LANGUAGE.md``).
    code = "INTERNAL"
    #: Whether a client may transparently retry the request.
    retryable = False


class ParseError(SciSparqlError):
    """Syntax error in a SciSPARQL query or an RDF serialization.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known.
    """

    code = "PARSE"

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column or 0)
        super().__init__(message)


class QueryError(SciSparqlError):
    """Semantic error detected while translating or optimizing a query."""

    code = "EVAL"


class EvaluationError(SciSparqlError):
    """Runtime error while evaluating an expression.

    Under SPARQL semantics these errors are usually caught by the engine:
    inside a FILTER they eliminate the candidate solution, and in a SELECT
    expression they produce an unbound value.
    """

    code = "EVAL"


class TypeMismatchError(EvaluationError):
    """Operands of an expression had incompatible runtime types."""


class ArrayBoundsError(EvaluationError):
    """An array subscript was outside the array's valid range."""


class StorageError(SciSparqlError):
    """Failure in an array-storage back-end (ASEI implementation)."""

    code = "STORAGE"


class CorruptionError(StorageError):
    """Stored data failed an integrity check (checksum / framing).

    Deliberately non-retryable: re-reading a torn chunk or a bit-flipped
    buffer yields the same bytes.  The ASEI read paths raise this
    *before* a corrupt buffer can reach the chunk buffer pool or a query
    result, so corruption surfaces as a typed error — never as wrong
    answers.  Recovery is an administrative action
    (:meth:`~repro.storage.asei.ArrayStore.repair`, or restoring from a
    replica), which is why clients must not transparently retry.
    """

    code = "CORRUPT"
    retryable = False


class UnknownFunctionError(EvaluationError):
    """A query referenced a function that has not been defined.

    Per SPARQL semantics an unknown function call is a (suppressible)
    expression error: inside a FILTER it eliminates the candidate
    solution rather than aborting the query.
    """


# -- request-lifecycle errors -------------------------------------------------------


class RequestCancelledError(SciSparqlError):
    """The request's cancellation token was triggered.

    Deliberately not an :class:`EvaluationError`: cancellation aborts the
    whole query instead of being suppressed by FILTER semantics.
    """

    code = "CANCELLED"


class RequestTimeoutError(RequestCancelledError):
    """The request ran past its deadline and was cooperatively aborted."""

    code = "TIMEOUT"


class ServerOverloadedError(SciSparqlError):
    """The server shed this request at admission (queue or slot limit).

    Always safe to retry: the request was rejected before any part of it
    executed.  ``retry_after_ms`` carries the server's pacing hint (an
    estimate of when a slot should free up) when one was computed; the
    client backoff honors it instead of blind exponential delays.
    """

    code = "OVERLOAD"
    retryable = True

    def __init__(self, message, retry_after_ms=None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ResourceExhaustedError(SciSparqlError):
    """The query blew through its per-query row/byte budget.

    Raised by the resource governor at a materialization point (idjoin
    result arrays, DISTINCT/GROUP BY hash state, ORDER BY buffers,
    buffer-pool fetches).  Deliberately non-retryable: the same query
    re-submitted would allocate the same state and die the same way —
    the fix is to rewrite the query (add LIMIT, tighten patterns) or to
    raise the budget, not to retry.
    """

    code = "RESOURCE"
    retryable = False


class ConnectionClosedError(SciSparqlError):
    """The server connection dropped before a response arrived.

    Retryable for idempotent requests (queries); an update interrupted
    mid-request may or may not have been applied, so the client refuses
    to retry it transparently.
    """

    code = "CONNECTION"
    retryable = True


# -- replication errors -------------------------------------------------------------


class ReadOnlyError(SciSparqlError):
    """A write was sent to a replica.

    Replicas apply the primary's WAL stream and must never accept
    direct writes — a write applied on a replica would diverge from the
    stream and be silently lost on resync.  The request is rejected
    before any part of it executes, so a replica-set client can safely
    re-route it to the primary; a single-endpoint client must not
    blind-retry (the same server keeps refusing until promoted).
    """

    code = "READONLY"
    retryable = False


class FencedError(SciSparqlError):
    """An epoch check failed: one side of the exchange is deposed.

    Raised server-side when a request carries a replication epoch newer
    than the server's own — the server is a stale primary (or a replica
    of one) whose stream/writes must be refused — and client-side by a
    :class:`~repro.replication.ReplicationClient` that refuses to apply
    a stream from a server whose epoch is older than its own.  Never
    blind-retried: the correct reaction is to re-probe the replica set
    for the current primary, which the replica-set client does.
    """

    code = "FENCED"
    retryable = False


class ReplicaLaggingError(SciSparqlError):
    """A read barrier (``min_seq``) exceeded the replica's applied seq.

    Retryable: the replica is behind but catching up, so the same read
    can succeed after a backoff — or immediately against another
    replica (or the primary), which is how the replica-set client
    implements read-your-writes.
    """

    code = "LAGGING"
    retryable = True


class SnapshotGoneError(SciSparqlError):
    """The MVCC snapshot this read was pinned to has been reclaimed.

    The snapshot manager bounds how many versions stay retained; when a
    long-running reader outlives the retention window (or an exact
    ``at_seq`` read asks for a version that is no longer retained), the
    read fails with this typed error instead of silently observing a
    newer graph state.  Deliberately non-retryable: re-running the same
    request acquires a *fresh* snapshot at the current seq, which is a
    semantic choice the caller must make, not a transparent retry.
    """

    code = "SNAPSHOT_GONE"
    retryable = False


# -- wire-protocol error code mapping ------------------------------------------------

_CODE_CLASSES = {
    "TIMEOUT": RequestTimeoutError,
    "CANCELLED": RequestCancelledError,
    "PARSE": ParseError,
    "EVAL": QueryError,
    "STORAGE": StorageError,
    "CORRUPT": CorruptionError,
    "OVERLOAD": ServerOverloadedError,
    "RESOURCE": ResourceExhaustedError,
    "CONNECTION": ConnectionClosedError,
    "READONLY": ReadOnlyError,
    "FENCED": FencedError,
    "LAGGING": ReplicaLaggingError,
    "SNAPSHOT_GONE": SnapshotGoneError,
}


def error_code(error):
    """The wire code for an exception (INTERNAL for foreign ones)."""
    if isinstance(error, SciSparqlError):
        return error.code
    return "INTERNAL"


def error_from_code(code, message):
    """Rebuild the typed exception for a server-reported error code.

    Unknown codes degrade to the :class:`SciSparqlError` base class so
    old clients keep working against newer servers.
    """
    cls = _CODE_CLASSES.get(code, SciSparqlError)
    return cls(message)
