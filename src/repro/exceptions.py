"""Exception hierarchy for the SciSPARQL / SSDM reproduction.

All library errors derive from :class:`SciSparqlError` so callers can catch
one base class.  Parse errors carry position information; query-evaluation
errors follow the SPARQL convention of being *suppressible* inside FILTER
expressions (an error there makes the filter fail rather than aborting the
whole query, see dissertation section 3.6 "Error Handling").
"""

from __future__ import annotations


class SciSparqlError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(SciSparqlError):
    """Syntax error in a SciSPARQL query or an RDF serialization.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column or 0)
        super().__init__(message)


class QueryError(SciSparqlError):
    """Semantic error detected while translating or optimizing a query."""


class EvaluationError(SciSparqlError):
    """Runtime error while evaluating an expression.

    Under SPARQL semantics these errors are usually caught by the engine:
    inside a FILTER they eliminate the candidate solution, and in a SELECT
    expression they produce an unbound value.
    """


class TypeMismatchError(EvaluationError):
    """Operands of an expression had incompatible runtime types."""


class ArrayBoundsError(EvaluationError):
    """An array subscript was outside the array's valid range."""


class StorageError(SciSparqlError):
    """Failure in an array-storage back-end (ASEI implementation)."""


class UnknownFunctionError(EvaluationError):
    """A query referenced a function that has not been defined.

    Per SPARQL semantics an unknown function call is a (suppressible)
    expression error: inside a FILTER it eliminates the candidate
    solution rather than aborting the query.
    """
