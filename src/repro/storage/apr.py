"""Array-proxy-resolve (APR): turn lazy proxies into resident arrays.

The APR operator sits at the boundary between the query engine and an ASEI
back-end.  Given one or a *bag* of proxies (dissertation section 6.2.4:
resolving bags lets accesses to the same stored array share round trips),
it plans which chunks each view touches, fetches them under one of four
retrieval strategies, and assembles the requested elements:

- :attr:`Strategy.SINGLE` — one request per chunk; the naive baseline.
- :attr:`Strategy.BUFFER` — chunk ids are accumulated into a buffer of
  ``buffer_size`` ids and fetched with batched (IN-list) requests.
- :attr:`Strategy.SPD` — the Sequence Pattern Detector factors the id
  stream into arithmetic ranges served by range requests, with leftovers
  batched.
- :attr:`Strategy.PREFETCH` — SPD planning plus a parallel fetch
  pipeline: while the engine consumes the chunks of run *i*, a small
  thread pool is already fetching runs *i+1..i+k* (``prefetch_depth``),
  all through the shared :class:`~repro.storage.bufferpool.BufferPool`
  with in-flight request deduplication.  The detector's pending run is
  additionally extrapolated (``speculate`` chunks) so a subsequent
  resolve over a continuing access pattern finds its chunks resident.

The aggregate variant (AAPR, :meth:`APRResolver.resolve_aggregate`)
computes whole-array aggregates chunk-at-a-time — or delegates them to the
back-end entirely — so a terabyte-scale array never needs to be resident.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.arrays.chunks import (
    assemble_from_chunks,
    chunks_of_runs,
    linear_indices_of_runs,
)
from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import StorageError
from repro import governor as gov
from repro.lifecycle import current_deadline, deadline_scope
from repro import observability as obs
from repro.storage.bufferpool import BufferPool, shared_pool
from repro.storage.cache import ChunkCache
from repro.storage.spd import RANGE, SINGLE, SequencePatternDetector

#: A contiguous SPD range is split into pipeline units of at most this
#: many chunks, so even a whole-array scan (one giant range) overlaps
#: fetching with consumption instead of degenerating to one request.
PIPELINE_UNIT_CHUNKS = 32

#: How long a resolver waits on another thread's in-flight fetch before
#: giving up; owners always complete or fail their claims, so this only
#: guards against catastrophic owner death.
INFLIGHT_WAIT_SECONDS = 60.0

_executor: Optional[ThreadPoolExecutor] = None
_executor_lock = threading.Lock()


def _shared_executor():
    """Lazy process-wide pool of fetch workers for the prefetch pipeline."""
    global _executor
    with _executor_lock:
        if _executor is None:
            _executor = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="apr-prefetch"
            )
        return _executor


class Strategy(enum.Enum):
    """APR retrieval strategies compared in Experiment 1 (section 6.3.2).

    PREFETCH extends SPD with the parallel chunk-fetch pipeline.
    """

    SINGLE = "single"
    BUFFER = "buffer"
    SPD = "spd"
    PREFETCH = "prefetch"


class APRResolver:
    """Plans and executes chunk retrieval for array proxies."""

    def __init__(self, store, strategy=Strategy.SPD, buffer_size=256,
                 cache=None, min_run=3, prefetch_depth=4, pool=None,
                 executor=None, speculate=8):
        if isinstance(strategy, str):
            strategy = Strategy(strategy.lower())
        self.store = store
        self.strategy = strategy
        self.buffer_size = int(buffer_size)
        if self.buffer_size < 1:
            raise StorageError("buffer_size must be positive")
        self.cache = cache
        self.min_run = min_run
        #: How many fetch units may be in flight ahead of consumption.
        self.prefetch_depth = max(1, int(prefetch_depth))
        #: How many chunks beyond the demanded stream to speculatively
        #: prefetch by extrapolating the SPD's pending run (0 disables).
        self.speculate = max(0, int(speculate))
        self.pool = pool
        self.executor = executor
        #: Statistics of the most recent :meth:`resolve` call.
        self.last_stats = None

    # -- public API -------------------------------------------------------------

    def resolve(self, proxies):
        """Resolve a bag of proxies; returns resident NumericArrays.

        Proxies referring to the same stored array share fetches: their
        chunk needs are united before any request is issued.
        """
        started = obs._clock()
        result = self._resolve(proxies)
        obs.observe_span("apr_resolve", obs._clock() - started,
                         arrays=len(result))
        return result

    def _resolve(self, proxies):
        proxies = list(proxies)
        deadline = current_deadline()
        if deadline is not None:
            deadline.check()
        for proxy in proxies:
            if not isinstance(proxy, ArrayProxy):
                raise StorageError("cannot resolve %r" % (proxy,))
            if proxy.store is not self.store:
                raise StorageError(
                    "proxy belongs to a different store: %r" % (proxy,)
                )
        # Raw counter reads, not locked snapshots: the deltas are
        # approximate under concurrency either way, and resolve is hot.
        stats = self.store.stats
        store_before = (stats.requests, stats.chunks_fetched,
                        stats.bytes_fetched)
        # Only snapshot the pool when this resolve can touch it: the
        # pipelined strategy always does, the others only through an
        # attached BufferPool-backed cache.
        if self.strategy is Strategy.PREFETCH:
            pool = self._pool()
        elif isinstance(self.cache, BufferPool):
            pool = self.cache
        else:
            pool = None
        pool_before = pool.stats() if pool is not None else None
        plans = []
        needs: Dict[object, List[int]] = {}
        for proxy in proxies:
            layout = self.store.meta(proxy.array_id).layout
            runs = list(proxy.iter_runs())
            chunk_ids = chunks_of_runs(runs, layout.elements_per_chunk)
            plans.append((proxy, layout, runs, chunk_ids))
            bucket = needs.setdefault(proxy.array_id, [])
            bucket.extend(chunk_ids)
        fetched: Dict[object, Dict[int, np.ndarray]] = {}
        for array_id, chunk_ids in needs.items():
            fetched[array_id] = self._fetch(array_id, chunk_ids)
        scope = gov.current_scope()
        results = []
        for proxy, layout, runs, chunk_ids in plans:
            indices = linear_indices_of_runs(runs)
            flat = assemble_from_chunks(
                indices, fetched[proxy.array_id],
                layout.elements_per_chunk, proxy.dtype,
            )
            if scope is not None:
                scope.charge_bytes(int(flat.nbytes), "apr assembly")
            results.append(
                NumericArray(flat.reshape(proxy.shape)
                             if proxy.shape else flat.reshape(()))
            )
        self._record_stats(proxies, store_before, pool, pool_before)
        return results

    def resolve_aggregate(self, proxy, op):
        """AAPR: aggregate over a proxy without materializing the view.

        Whole-array views go to the back-end when it supports delegated
        aggregates; otherwise (and for partial views) chunks stream through
        a running reducer.
        """
        if op not in ("sum", "avg", "min", "max", "count"):
            raise StorageError("unknown aggregate %r" % (op,))
        if op == "count":
            return proxy.element_count
        if proxy.is_whole_array() and self.store.supports_aggregates:
            return self.store.aggregate(proxy.array_id, op)
        layout = self.store.meta(proxy.array_id).layout
        runs = list(proxy.iter_runs())
        total = 0.0
        count = 0
        low = None
        high = None
        epc = layout.elements_per_chunk
        # stream the needed chunks in batches bounded by the buffer size
        chunk_ids = chunks_of_runs(runs, epc)
        indices = linear_indices_of_runs(runs)
        order = np.argsort(indices // epc, kind="stable")
        sorted_indices = indices[order]
        position = 0
        deadline = current_deadline()
        for start in range(0, len(chunk_ids), self.buffer_size):
            if deadline is not None:
                deadline.check()
            batch = chunk_ids[start:start + self.buffer_size]
            chunks = self._fetch(proxy.array_id, batch)
            batch_set = set(batch)
            # consume every element index living in this batch of chunks
            while position < len(sorted_indices):
                index = sorted_indices[position]
                chunk_id = int(index // epc)
                if chunk_id not in batch_set:
                    break
                value = float(chunks[chunk_id][int(index - chunk_id * epc)])
                total += value
                count += 1
                low = value if low is None else min(low, value)
                high = value if high is None else max(high, value)
                position += 1
        if count == 0:
            raise StorageError("aggregate of an empty view")
        if op == "sum":
            return total
        if op == "avg":
            return total / count
        if op == "min":
            return low
        return high

    # -- fetch planning ------------------------------------------------------------

    def _fetch(self, array_id, chunk_ids):
        """Fetch chunk ids (first-touch order) under the configured
        strategy, going through the cache when one is attached."""
        unique = list(dict.fromkeys(chunk_ids))
        if self.strategy is Strategy.PREFETCH:
            return self._fetch_pipelined(array_id, unique)
        chunks: Dict[int, np.ndarray] = {}
        missing = []
        if self.cache is not None:
            for chunk_id in unique:
                hit = self.cache.get(array_id, chunk_id)
                if hit is None:
                    missing.append(chunk_id)
                else:
                    chunks[chunk_id] = hit
        else:
            missing = unique
        if missing:
            if self.strategy is Strategy.SINGLE:
                fetched = self._fetch_single(array_id, missing)
            elif self.strategy is Strategy.BUFFER:
                fetched = self._fetch_buffered(array_id, missing)
            else:
                fetched = self._fetch_spd(array_id, missing)
            if self.cache is not None:
                for chunk_id, data in fetched.items():
                    self.cache.put(array_id, chunk_id, data)
            chunks.update(fetched)
        return chunks

    def _fetch_single(self, array_id, chunk_ids):
        return {
            chunk_id: self.store.get_chunk(array_id, chunk_id)
            for chunk_id in chunk_ids
        }

    def _fetch_buffered(self, array_id, chunk_ids):
        result = {}
        for start in range(0, len(chunk_ids), self.buffer_size):
            batch = chunk_ids[start:start + self.buffer_size]
            result.update(self.store.get_chunks(array_id, batch))
        return result

    def _fetch_spd(self, array_id, chunk_ids):
        detector = SequencePatternDetector(min_run=self.min_run)
        emissions = []
        for chunk_id in chunk_ids:
            emissions.extend(detector.feed(chunk_id))
        emissions.extend(detector.flush())
        ranges = [(e[1], e[2], e[3]) for e in emissions if e[0] == RANGE]
        singles = [e[1] for e in emissions if e[0] == SINGLE]
        result = {}
        if ranges:
            result.update(self.store.get_chunk_ranges(array_id, ranges))
        if singles:
            result.update(self._fetch_buffered(array_id, singles))
        return result

    # -- the prefetch pipeline -----------------------------------------------------

    def _pool(self):
        """The buffer pool this resolver fetches through."""
        if self.pool is not None:
            return self.pool
        if isinstance(self.cache, BufferPool):
            return self.cache
        store_pool = getattr(self.store, "buffer_pool", None)
        if store_pool is not None:
            return store_pool
        return shared_pool()

    def _pool_key(self, array_id):
        pool_key = getattr(self.store, "pool_key", None)
        return pool_key(array_id) if pool_key is not None else array_id

    def _plan_units(self, chunk_ids):
        """Factor owned ids into pipeline fetch units via the SPD.

        Returns (units, predicted): each unit is ``(range_or_None, ids)``
        — ranges are split into sub-ranges of at most
        :data:`PIPELINE_UNIT_CHUNKS` chunks so large scans still overlap;
        leftover singles are batched by ``buffer_size``.  ``predicted``
        extrapolates the detector's pending run for speculation.
        """
        detector = SequencePatternDetector(min_run=self.min_run)
        emissions = []
        for chunk_id in chunk_ids:
            emissions.extend(detector.feed(chunk_id))
        predicted = detector.predict(self.speculate)
        emissions.extend(detector.flush())
        units = []
        singles = []
        for emission in emissions:
            if emission[0] == RANGE:
                first, last, step = emission[1], emission[2], emission[3]
                ids = list(range(first, last + 1, step))
                for start in range(0, len(ids), PIPELINE_UNIT_CHUNKS):
                    part = ids[start:start + PIPELINE_UNIT_CHUNKS]
                    units.append(((part[0], part[-1], step), part))
            else:
                singles.append(emission[1])
        for start in range(0, len(singles), self.buffer_size):
            batch = singles[start:start + self.buffer_size]
            units.append((None, batch))
        return units, predicted

    def _submit_unit(self, executor, array_id, unit):
        id_range, ids = unit
        if id_range is not None:
            return self.store.get_chunk_ranges_async(
                array_id, [id_range], executor=executor
            )
        return self.store.get_chunks_async(array_id, ids, executor=executor)

    def _fetch_pipelined(self, array_id, unique):
        """PREFETCH: SPD-planned units fetched through a sliding window
        of ``prefetch_depth`` in-flight requests, deduplicated and cached
        in the shared buffer pool.

        Claims partition the demanded ids into resident (pool hits), owned
        (this resolver fetches and publishes them) and waiting (another
        thread is fetching them right now).  All owned units are published
        before waiting on foreign fetches, so concurrent resolvers with
        crossing needs cannot deadlock.
        """
        pool = self._pool()
        key = self._pool_key(array_id)
        deadline = current_deadline()
        cached, owned, waiting = pool.claim(key, unique)
        chunks: Dict[int, np.ndarray] = dict(cached)
        if not owned and not waiting:
            # Warm pool: everything resident, nothing to pipeline.  The
            # returned dict already references the buffers, so no pin is
            # needed to protect them from eviction.
            return chunks
        executor = self.executor if self.executor is not None \
            else _shared_executor()
        # pin the whole working set so early chunks survive until assembly
        pool.pin(key, unique)
        published = set()
        try:
            units, predicted = self._plan_units(owned)
            window = deque()
            for unit in units:
                if deadline is not None:
                    deadline.check()
                while len(window) >= self.prefetch_depth:
                    self._complete_unit(
                        window.popleft(), pool, key, chunks, published
                    )
                window.append((unit, self._submit_unit(
                    executor, array_id, unit
                )))
            while window:
                self._complete_unit(
                    window.popleft(), pool, key, chunks, published
                )
            if predicted and self.speculate:
                self._speculate(
                    pool, key, executor, array_id, predicted, set(unique)
                )
            for chunk_id, fetch in waiting.items():
                timeout = INFLIGHT_WAIT_SECONDS
                if deadline is not None:
                    deadline.check()
                    left = deadline.remaining()
                    if left is not None:
                        # wake shortly after our own deadline: the owner
                        # may be budget-free, but we are not
                        timeout = min(timeout, left + 0.05)
                try:
                    chunks[chunk_id] = pool.wait(fetch, timeout=timeout)
                except TimeoutError:
                    if deadline is not None:
                        deadline.check()   # ours expired -> TIMEOUT
                    raise                  # owner really is stuck
        finally:
            unpublished = [cid for cid in owned if cid not in published]
            if unpublished:
                pool.fail(
                    key, unpublished,
                    StorageError(
                        "chunk fetch aborted for array %r" % (array_id,)
                    ),
                )
            pool.unpin(key, unique)
        return chunks

    def _complete_unit(self, entry, pool, key, chunks, published):
        unit, future = entry
        try:
            fetched = future.result()
        except Exception as error:
            # propagate the real failure to any waiters on these ids
            pool.fail(key, unit[1], error)
            published.update(unit[1])
            raise
        pool.publish(key, fetched)
        chunks.update(fetched)
        published.update(fetched)
        # charge the fetched (and now pinned) bytes on the query thread;
        # a blown budget unwinds through _fetch_pipelined's finally,
        # failing unpublished claims and releasing every pin
        scope = gov.current_scope()
        if scope is not None:
            scope.charge_bytes(
                sum(int(chunk.nbytes) for chunk in fetched.values()),
                "apr pinned fetch",
            )

    def _speculate(self, pool, key, executor, array_id, predicted, demanded):
        """Fire-and-forget fetch of SPD-extrapolated chunks.

        Claimed with ``record=False`` (not demand lookups) and published
        with ``prefetched=True`` so the pool can account prefetch-hits
        and wasted prefetches.  Never waited on.
        """
        if not gov.get_governor().speculation_allowed():
            # degrade before killing: under memory pressure the system
            # stops spending pool space on speculative reads first
            return
        chunk_count = self.store.meta(array_id).layout.chunk_count
        wanted = [
            cid for cid in predicted
            if 0 <= cid < chunk_count and cid not in demanded
        ]
        if not wanted:
            return
        _, owned, _ = pool.claim(key, wanted, record=False)
        if not owned:
            return
        # Speculation outlives the demanding request, so it must not
        # inherit its deadline (a speculative fetch failing with one
        # request's TIMEOUT would poison waiters from other requests)
        # nor its trace (spans landing after the trace is sealed).
        with deadline_scope(None), obs.activate(None):
            future = self.store.get_chunks_async(
                array_id, owned, executor=executor
            )

        def _deliver(done):
            try:
                pool.publish(key, done.result(), prefetched=True)
            except Exception as error:
                pool.fail(key, owned, error)

        future.add_done_callback(_deliver)

    # -- per-resolve statistics ------------------------------------------------------

    def _record_stats(self, proxies, store_before, pool, pool_before):
        """Publish the deltas this resolve produced (approximate when
        other threads fetch concurrently)."""
        store_stats = self.store.stats
        requests_before, chunks_before, bytes_before = store_before
        stats = {
            "strategy": self.strategy.value,
            "proxies": len(proxies),
            "requests": store_stats.requests - requests_before,
            "chunks_fetched": store_stats.chunks_fetched - chunks_before,
            "bytes_fetched": store_stats.bytes_fetched - bytes_before,
        }
        if pool is not None and pool_before is not None:
            pool_after = pool.stats()
            for name in ("hits", "misses", "prefetch_hits",
                         "inflight_waits"):
                stats["pool_" + name] = pool_after[name] - pool_before[name]
            lookups = stats["pool_hits"] + stats["pool_misses"]
            stats["cache_hit_ratio"] = (
                stats["pool_hits"] / lookups if lookups else 0.0
            )
        else:
            stats["cache_hit_ratio"] = 0.0
        self.last_stats = stats
        self.store.last_resolve_stats = stats
