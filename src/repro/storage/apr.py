"""Array-proxy-resolve (APR): turn lazy proxies into resident arrays.

The APR operator sits at the boundary between the query engine and an ASEI
back-end.  Given one or a *bag* of proxies (dissertation section 6.2.4:
resolving bags lets accesses to the same stored array share round trips),
it plans which chunks each view touches, fetches them under one of three
retrieval strategies, and assembles the requested elements:

- :attr:`Strategy.SINGLE` — one request per chunk; the naive baseline.
- :attr:`Strategy.BUFFER` — chunk ids are accumulated into a buffer of
  ``buffer_size`` ids and fetched with batched (IN-list) requests.
- :attr:`Strategy.SPD` — the Sequence Pattern Detector factors the id
  stream into arithmetic ranges served by range requests, with leftovers
  batched.

The aggregate variant (AAPR, :meth:`APRResolver.resolve_aggregate`)
computes whole-array aggregates chunk-at-a-time — or delegates them to the
back-end entirely — so a terabyte-scale array never needs to be resident.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.arrays.chunks import (
    assemble_from_chunks,
    chunks_of_runs,
    linear_indices_of_runs,
)
from repro.arrays.nma import NumericArray
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import StorageError
from repro.storage.cache import ChunkCache
from repro.storage.spd import RANGE, SINGLE, SequencePatternDetector


class Strategy(enum.Enum):
    """APR retrieval strategies compared in Experiment 1 (section 6.3.2)."""

    SINGLE = "single"
    BUFFER = "buffer"
    SPD = "spd"


class APRResolver:
    """Plans and executes chunk retrieval for array proxies."""

    def __init__(self, store, strategy=Strategy.SPD, buffer_size=256,
                 cache=None, min_run=3):
        if isinstance(strategy, str):
            strategy = Strategy(strategy.lower())
        self.store = store
        self.strategy = strategy
        self.buffer_size = int(buffer_size)
        if self.buffer_size < 1:
            raise StorageError("buffer_size must be positive")
        self.cache = cache
        self.min_run = min_run

    # -- public API -------------------------------------------------------------

    def resolve(self, proxies):
        """Resolve a bag of proxies; returns resident NumericArrays.

        Proxies referring to the same stored array share fetches: their
        chunk needs are united before any request is issued.
        """
        proxies = list(proxies)
        for proxy in proxies:
            if not isinstance(proxy, ArrayProxy):
                raise StorageError("cannot resolve %r" % (proxy,))
            if proxy.store is not self.store:
                raise StorageError(
                    "proxy belongs to a different store: %r" % (proxy,)
                )
        plans = []
        needs: Dict[object, List[int]] = {}
        for proxy in proxies:
            layout = self.store.meta(proxy.array_id).layout
            runs = list(proxy.iter_runs())
            chunk_ids = chunks_of_runs(runs, layout.elements_per_chunk)
            plans.append((proxy, layout, runs, chunk_ids))
            bucket = needs.setdefault(proxy.array_id, [])
            bucket.extend(chunk_ids)
        fetched: Dict[object, Dict[int, np.ndarray]] = {}
        for array_id, chunk_ids in needs.items():
            fetched[array_id] = self._fetch(array_id, chunk_ids)
        results = []
        for proxy, layout, runs, chunk_ids in plans:
            indices = linear_indices_of_runs(runs)
            flat = assemble_from_chunks(
                indices, fetched[proxy.array_id],
                layout.elements_per_chunk, proxy.dtype,
            )
            results.append(
                NumericArray(flat.reshape(proxy.shape)
                             if proxy.shape else flat.reshape(()))
            )
        return results

    def resolve_aggregate(self, proxy, op):
        """AAPR: aggregate over a proxy without materializing the view.

        Whole-array views go to the back-end when it supports delegated
        aggregates; otherwise (and for partial views) chunks stream through
        a running reducer.
        """
        if op not in ("sum", "avg", "min", "max", "count"):
            raise StorageError("unknown aggregate %r" % (op,))
        if op == "count":
            return proxy.element_count
        if proxy.is_whole_array() and self.store.supports_aggregates:
            return self.store.aggregate(proxy.array_id, op)
        layout = self.store.meta(proxy.array_id).layout
        runs = list(proxy.iter_runs())
        total = 0.0
        count = 0
        low = None
        high = None
        epc = layout.elements_per_chunk
        # stream the needed chunks in batches bounded by the buffer size
        chunk_ids = chunks_of_runs(runs, epc)
        indices = linear_indices_of_runs(runs)
        order = np.argsort(indices // epc, kind="stable")
        sorted_indices = indices[order]
        position = 0
        for start in range(0, len(chunk_ids), self.buffer_size):
            batch = chunk_ids[start:start + self.buffer_size]
            chunks = self._fetch(proxy.array_id, batch)
            batch_set = set(batch)
            # consume every element index living in this batch of chunks
            while position < len(sorted_indices):
                index = sorted_indices[position]
                chunk_id = int(index // epc)
                if chunk_id not in batch_set:
                    break
                value = float(chunks[chunk_id][int(index - chunk_id * epc)])
                total += value
                count += 1
                low = value if low is None else min(low, value)
                high = value if high is None else max(high, value)
                position += 1
        if count == 0:
            raise StorageError("aggregate of an empty view")
        if op == "sum":
            return total
        if op == "avg":
            return total / count
        if op == "min":
            return low
        return high

    # -- fetch planning ------------------------------------------------------------

    def _fetch(self, array_id, chunk_ids):
        """Fetch chunk ids (first-touch order) under the configured
        strategy, going through the cache when one is attached."""
        unique = list(dict.fromkeys(chunk_ids))
        chunks: Dict[int, np.ndarray] = {}
        missing = []
        if self.cache is not None:
            for chunk_id in unique:
                hit = self.cache.get(array_id, chunk_id)
                if hit is None:
                    missing.append(chunk_id)
                else:
                    chunks[chunk_id] = hit
        else:
            missing = unique
        if missing:
            if self.strategy is Strategy.SINGLE:
                fetched = self._fetch_single(array_id, missing)
            elif self.strategy is Strategy.BUFFER:
                fetched = self._fetch_buffered(array_id, missing)
            else:
                fetched = self._fetch_spd(array_id, missing)
            if self.cache is not None:
                for chunk_id, data in fetched.items():
                    self.cache.put(array_id, chunk_id, data)
            chunks.update(fetched)
        return chunks

    def _fetch_single(self, array_id, chunk_ids):
        return {
            chunk_id: self.store.get_chunk(array_id, chunk_id)
            for chunk_id in chunk_ids
        }

    def _fetch_buffered(self, array_id, chunk_ids):
        result = {}
        for start in range(0, len(chunk_ids), self.buffer_size):
            batch = chunk_ids[start:start + self.buffer_size]
            result.update(self.store.get_chunks(array_id, batch))
        return result

    def _fetch_spd(self, array_id, chunk_ids):
        detector = SequencePatternDetector(min_run=self.min_run)
        emissions = []
        for chunk_id in chunk_ids:
            emissions.extend(detector.feed(chunk_id))
        emissions.extend(detector.flush())
        ranges = [(e[1], e[2], e[3]) for e in emissions if e[0] == RANGE]
        singles = [e[1] for e in emissions if e[0] == SINGLE]
        result = {}
        if ranges:
            result.update(self.store.get_chunk_ranges(array_id, ranges))
        if singles:
            result.update(self._fetch_buffered(array_id, singles))
        return result
