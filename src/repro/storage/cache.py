"""LRU cache of fetched chunks — thin alias over the buffer pool.

Historically this module held ``ChunkCache``, a single-threaded LRU map
one APR resolver could attach privately.  It is now a subclass of the
process-wide :class:`~repro.storage.bufferpool.BufferPool`, which keeps
the old surface (``get``/``put``/``invalidate``/``hits``/``misses``)
while fixing two long-standing defects:

- a single chunk larger than ``max_bytes`` is *rejected* (and counted)
  instead of being admitted and permanently blowing the byte budget;
- entries are keyed by a two-level dict (``array_id -> {chunk_id: buf}``)
  so per-array invalidation is O(chunks of that array), not O(pool size).

New code should use :class:`~repro.storage.bufferpool.BufferPool`
directly (usually the process-wide instance from ``shared_pool()``).
"""

from __future__ import annotations

from repro.storage.bufferpool import BufferPool


class ChunkCache(BufferPool):
    """Byte-bounded LRU map of (array_id, chunk_id) -> chunk buffer."""

    def __init__(self, max_bytes=16 * 1024 * 1024):
        super().__init__(max_bytes=max_bytes)
