"""LRU cache of fetched chunks, shared across APR invocations.

Models the chunk buffer SSDM keeps between array accesses (dissertation
section 6.2), so repeated queries over overlapping views do not re-fetch
from the back-end.  Bounded by total bytes; eviction is least-recently-used.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np


class ChunkCache:
    """Byte-bounded LRU map of (array_id, chunk_id) -> chunk buffer."""

    def __init__(self, max_bytes=16 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Tuple[object, int], np.ndarray]" = (
            OrderedDict()
        )
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    @property
    def current_bytes(self):
        return self._bytes

    def get(self, array_id, chunk_id):
        key = (array_id, chunk_id)
        chunk = self._entries.get(key)
        if chunk is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return chunk

    def put(self, array_id, chunk_id, chunk):
        key = (array_id, chunk_id)
        if key in self._entries:
            self._bytes -= self._entries[key].nbytes
            self._entries.move_to_end(key)
        self._entries[key] = chunk
        self._bytes += chunk.nbytes
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes

    def invalidate(self, array_id=None):
        """Drop cached chunks of one array, or everything."""
        if array_id is None:
            self._entries.clear()
            self._bytes = 0
            return
        doomed = [key for key in self._entries if key[0] == array_id]
        for key in doomed:
            self._bytes -= self._entries[key].nbytes
            del self._entries[key]

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "bytes": self._bytes,
        }
