"""Relational ASEI back-end on SQLite.

Reproduces the paper's relational storage schema (section 6.2.1): one table
of array metadata and one table of chunks stored as BLOBs, keyed by
(array id, chunk id).  The three retrieval shapes map to SQL exactly as in
the paper's strategies:

- SINGLE: ``SELECT data FROM chunks WHERE array_id=? AND chunk_id=?``
- BUFFER: ``... WHERE array_id=? AND chunk_id IN (?, ?, ...)``
- SPD:    ``... WHERE array_id=? AND chunk_id BETWEEN ? AND ?
           AND (chunk_id - ?) % ? = 0``

The paper used a commercial RDBMS over JDBC; SQLite preserves the relevant
economics (per-statement overhead vs. batched / range scans over a
clustered primary key).
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Dict, List, Tuple

import numpy as np

from repro.arrays.chunks import ChunkLayout
from repro.arrays.nma import ELEMENT_TYPES
from repro.exceptions import StorageError
from repro.storage.asei import ArrayMeta, ArrayStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS arrays (
    array_id      INTEGER PRIMARY KEY,
    element_type  TEXT NOT NULL,
    shape         TEXT NOT NULL,
    element_count INTEGER NOT NULL,
    chunk_bytes   INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS chunks (
    array_id INTEGER NOT NULL,
    chunk_id INTEGER NOT NULL,
    data     BLOB NOT NULL,
    PRIMARY KEY (array_id, chunk_id)
) WITHOUT ROWID;
"""


class SqlArrayStore(ArrayStore):
    """Chunked BLOB storage in SQLite (":memory:" or a file path)."""

    supports_batch = True
    supports_ranges = True
    supports_aggregates = True
    #: reads share one connection but are serialized by ``_db_lock``,
    #: so concurrent prefetch workers and server threads are safe
    thread_safe = True

    #: SQLite's bound-parameter limit caps IN-list length; large buffers
    #: are split transparently.
    MAX_IN_LIST = 500

    def __init__(self, database=":memory:", chunk_bytes=None, **kwargs):
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        super().__init__(**kwargs)
        self.database = database
        # one shared connection crossing threads: every statement runs
        # under _db_lock (prefetch workers + TCP server threads)
        self._connection = sqlite3.connect(
            database, check_same_thread=False
        )
        self._db_lock = threading.Lock()
        self._connection.executescript(_SCHEMA)
        self._recover_ids()

    def close(self):
        self._connection.close()

    def _recover_ids(self):
        row = self._connection.execute(
            "SELECT COALESCE(MAX(array_id), 0) FROM arrays"
        ).fetchone()
        self._next_id = row[0] + 1

    # -- metadata persistence --------------------------------------------------

    def _register_meta(self, meta):
        with self._db_lock:
            self._connection.execute(
                "INSERT INTO arrays (array_id, element_type, shape,"
                " element_count, chunk_bytes) VALUES (?, ?, ?, ?, ?)",
                (
                    meta.array_id,
                    meta.element_type,
                    ",".join(str(e) for e in meta.shape),
                    meta.layout.element_count,
                    meta.layout.chunk_bytes,
                ),
            )
            self._connection.commit()

    def _load_meta(self, array_id):
        with self._db_lock:
            row = self._connection.execute(
                "SELECT element_type, shape, element_count, chunk_bytes"
                " FROM arrays WHERE array_id=?",
                (array_id,),
            ).fetchone()
        if row is None:
            return None
        element_type, shape_text, element_count, chunk_bytes = row
        dtype = ELEMENT_TYPES[element_type]
        layout = ChunkLayout(element_count, dtype.itemsize, chunk_bytes)
        shape = tuple(int(e) for e in shape_text.split(",") if e)
        return ArrayMeta(array_id, element_type, shape, layout)

    # -- chunk IO -----------------------------------------------------------------

    def _write_chunk(self, array_id, chunk_id, data):
        with self._db_lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO chunks (array_id, chunk_id, data)"
                " VALUES (?, ?, ?)",
                (array_id, chunk_id, np.ascontiguousarray(data).tobytes()),
            )

    def _decode(self, array_id, blob):
        dtype = ELEMENT_TYPES[self.meta(array_id).element_type]
        return np.frombuffer(blob, dtype=dtype)

    def _read_chunk(self, array_id, chunk_id):
        self.meta(array_id)  # resolve metadata before taking the lock
        with self._db_lock:
            row = self._connection.execute(
                "SELECT data FROM chunks WHERE array_id=? AND chunk_id=?",
                (array_id, chunk_id),
            ).fetchone()
        if row is None:
            raise StorageError(
                "missing chunk %r of array %r" % (chunk_id, array_id)
            )
        return self._decode(array_id, row[0])

    def _read_chunks(self, array_id, chunk_ids):
        self.meta(array_id)
        result = {}
        unique = sorted(set(chunk_ids))
        for start in range(0, len(unique), self.MAX_IN_LIST):
            batch = unique[start:start + self.MAX_IN_LIST]
            placeholders = ",".join("?" * len(batch))
            with self._db_lock:
                rows = self._connection.execute(
                    "SELECT chunk_id, data FROM chunks"
                    " WHERE array_id=? AND chunk_id IN (%s)" % placeholders,
                    [array_id] + batch,
                ).fetchall()
            for chunk_id, blob in rows:
                result[chunk_id] = self._decode(array_id, blob)
        missing = set(unique) - set(result)
        if missing:
            raise StorageError(
                "missing chunks %r of array %r" % (sorted(missing), array_id)
            )
        return result

    def _read_chunk_ranges(self, array_id, ranges):
        self.meta(array_id)
        result = {}
        for first, last, step in ranges:
            with self._db_lock:
                if step == 1:
                    rows = self._connection.execute(
                        "SELECT chunk_id, data FROM chunks"
                        " WHERE array_id=? AND chunk_id BETWEEN ? AND ?",
                        (array_id, first, last),
                    ).fetchall()
                else:
                    rows = self._connection.execute(
                        "SELECT chunk_id, data FROM chunks"
                        " WHERE array_id=? AND chunk_id BETWEEN ? AND ?"
                        " AND (chunk_id - ?) % ? = 0",
                        (array_id, first, last, first, step),
                    ).fetchall()
            for chunk_id, blob in rows:
                result[chunk_id] = self._decode(array_id, blob)
        return result

    # -- delegated aggregates ----------------------------------------------------

    def aggregate(self, array_id, op):
        """Server-side whole-array aggregate over the chunk BLOBs.

        Models the paper's delegation of common operations to a capable
        back-end: only the scalar result crosses the interface.
        """
        if op not in ("sum", "avg", "min", "max"):
            raise StorageError("unknown aggregate %r" % (op,))
        meta = self.meta(array_id)
        dtype = ELEMENT_TYPES[meta.element_type]
        with self._db_lock:
            rows = self._connection.execute(
                "SELECT data FROM chunks WHERE array_id=?"
                " ORDER BY chunk_id",
                (array_id,),
            ).fetchall()
        total = 0.0
        count = 0
        low = None
        high = None
        for (blob,) in rows:
            piece = np.frombuffer(blob, dtype=dtype)
            if piece.size == 0:
                continue
            total += float(np.sum(piece))
            count += piece.size
            piece_min = float(np.min(piece))
            piece_max = float(np.max(piece))
            low = piece_min if low is None else min(low, piece_min)
            high = piece_max if high is None else max(high, piece_max)
        self.stats.count(requests=1, aggregates_delegated=1)
        if count == 0:
            raise StorageError("aggregate of empty array %r" % (array_id,))
        if op == "sum":
            return total
        if op == "avg":
            return total / count
        if op == "min":
            return low
        return high
