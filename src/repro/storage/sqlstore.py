"""Relational ASEI back-end on SQLite.

Reproduces the paper's relational storage schema (section 6.2.1): one table
of array metadata and one table of chunks stored as BLOBs, keyed by
(array id, chunk id).  The three retrieval shapes map to SQL exactly as in
the paper's strategies:

- SINGLE: ``SELECT data FROM chunks WHERE array_id=? AND chunk_id=?``
- BUFFER: ``... WHERE array_id=? AND chunk_id IN (?, ?, ...)``
- SPD:    ``... WHERE array_id=? AND chunk_id BETWEEN ? AND ?
           AND (chunk_id - ?) % ? = 0``

The paper used a commercial RDBMS over JDBC; SQLite preserves the relevant
economics (per-statement overhead vs. batched / range scans over a
clustered primary key).

Durability: file-backed databases run with ``journal_mode=WAL`` (a crash
never tears a committed transaction) and a ``busy_timeout`` so a second
process contending for the file waits instead of failing instantly.  The
``chunks`` table carries a per-chunk CRC column verified on every fetch —
a mismatching BLOB raises a typed
:class:`~repro.exceptions.CorruptionError` instead of yielding wrong
bytes — and a multi-chunk ``put`` runs inside one explicit transaction,
so a half-written array is never visible.  ``repair()`` moves damaged
rows into a ``quarantined_chunks`` table.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
from typing import Dict, List, Tuple

import numpy as np

from repro.arrays.chunks import ChunkLayout
from repro.arrays.nma import ELEMENT_TYPES
from repro.exceptions import CorruptionError, StorageError
from repro.storage.asei import ArrayMeta, ArrayStore
from repro.storage.durability import payload_crc
from repro.storage.faults import SimulatedCrash

_SCHEMA = """
CREATE TABLE IF NOT EXISTS arrays (
    array_id      INTEGER PRIMARY KEY,
    element_type  TEXT NOT NULL,
    shape         TEXT NOT NULL,
    element_count INTEGER NOT NULL,
    chunk_bytes   INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS chunks (
    array_id INTEGER NOT NULL,
    chunk_id INTEGER NOT NULL,
    data     BLOB NOT NULL,
    checksum INTEGER,
    PRIMARY KEY (array_id, chunk_id)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS quarantined_chunks (
    array_id INTEGER NOT NULL,
    chunk_id INTEGER NOT NULL,
    data     BLOB NOT NULL,
    checksum INTEGER,
    PRIMARY KEY (array_id, chunk_id)
) WITHOUT ROWID;
"""


class SqlArrayStore(ArrayStore):
    """Chunked BLOB storage in SQLite (":memory:" or a file path)."""

    supports_batch = True
    supports_ranges = True
    supports_aggregates = True
    #: reads share one connection but are serialized by ``_db_lock``,
    #: so concurrent prefetch workers and server threads are safe
    thread_safe = True

    #: SQLite's bound-parameter limit caps IN-list length; large buffers
    #: are split transparently.
    MAX_IN_LIST = 500

    def __init__(self, database=":memory:", chunk_bytes=None,
                 busy_timeout_ms=5000, **kwargs):
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        super().__init__(**kwargs)
        self.database = database
        # one shared connection crossing threads: every statement runs
        # under _db_lock (prefetch workers + TCP server threads); the
        # lock is re-entrant so an explicit put-transaction can span
        # the per-statement acquisitions of _write_chunk/_register_meta
        self._connection = sqlite3.connect(
            database, check_same_thread=False
        )
        self._db_lock = threading.RLock()
        # WAL survives crashes without torn pages and lets readers in
        # other connections proceed during a write; a :memory: database
        # reports "memory" here, which is fine — it has no crash story
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            "PRAGMA busy_timeout=%d" % int(busy_timeout_ms)
        )
        self._connection.executescript(_SCHEMA)
        self._migrate_checksum_column()
        self._recover_ids()

    def _migrate_checksum_column(self):
        """Add the checksum column to databases from before it existed
        (their rows read back with checksum NULL = unverified)."""
        columns = [
            row[1] for row in self._connection.execute(
                "PRAGMA table_info(chunks)"
            ).fetchall()
        ]
        if "checksum" not in columns:
            self._connection.execute(
                "ALTER TABLE chunks ADD COLUMN checksum INTEGER"
            )
            self._connection.commit()

    def close(self):
        self._connection.close()

    def _recover_ids(self):
        row = self._connection.execute(
            "SELECT COALESCE(MAX(array_id), 0) FROM arrays"
        ).fetchone()
        self._next_id = row[0] + 1

    # -- metadata persistence --------------------------------------------------

    def _register_meta(self, meta):
        with self._db_lock:
            self._connection.execute(
                "INSERT INTO arrays (array_id, element_type, shape,"
                " element_count, chunk_bytes) VALUES (?, ?, ?, ?, ?)",
                (
                    meta.array_id,
                    meta.element_type,
                    ",".join(str(e) for e in meta.shape),
                    meta.layout.element_count,
                    meta.layout.chunk_bytes,
                ),
            )
            self._connection.commit()

    def _load_meta(self, array_id):
        with self._db_lock:
            row = self._connection.execute(
                "SELECT element_type, shape, element_count, chunk_bytes"
                " FROM arrays WHERE array_id=?",
                (array_id,),
            ).fetchone()
        if row is None:
            return None
        element_type, shape_text, element_count, chunk_bytes = row
        dtype = ELEMENT_TYPES[element_type]
        layout = ChunkLayout(element_count, dtype.itemsize, chunk_bytes)
        shape = tuple(int(e) for e in shape_text.split(",") if e)
        return ArrayMeta(array_id, element_type, shape, layout)

    def _all_array_ids(self):
        with self._db_lock:
            rows = self._connection.execute(
                "SELECT array_id FROM arrays"
            ).fetchall()
        ids = set(self._meta)
        ids.update(row[0] for row in rows)
        return sorted(ids, key=str)

    # -- atomic multi-chunk put ---------------------------------------------------

    @contextlib.contextmanager
    def _put_transaction(self, meta):
        """All chunk writes + metadata of one put commit atomically.

        The re-entrant ``_db_lock`` is held for the whole transaction so
        concurrent readers on the shared connection never observe (or
        interleave statements into) a half-written array.
        """
        with self._db_lock:
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                yield
            except BaseException:
                self._connection.rollback()
                raise
            else:
                self._connection.commit()

    # -- chunk IO -----------------------------------------------------------------

    def _write_chunk(self, array_id, chunk_id, data):
        payload = np.ascontiguousarray(data).tobytes()
        # checksum the pristine payload; injected faults may tear the
        # BLOB that is actually stored, which the next read detects
        checksum = payload_crc(payload)
        payload, crash_after = self._fault_write_bytes(payload)
        with self._db_lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO chunks"
                " (array_id, chunk_id, data, checksum) VALUES (?, ?, ?, ?)",
                (array_id, chunk_id, payload, checksum),
            )
        if crash_after:
            raise SimulatedCrash(
                "injected crash after torn write of chunk %d of array %r"
                % (chunk_id, array_id)
            )

    def _decode(self, array_id, chunk_id, blob, checksum):
        blob = self._fault_read_bytes(blob)
        if (
            self.verify_checksums
            and checksum is not None
            and payload_crc(blob) != checksum
        ):
            raise CorruptionError(
                "chunk %r of array %r failed its checksum"
                % (chunk_id, array_id)
            )
        dtype = ELEMENT_TYPES[self.meta(array_id).element_type]
        return np.frombuffer(blob, dtype=dtype)

    def _read_chunk(self, array_id, chunk_id):
        self.meta(array_id)  # resolve metadata before taking the lock
        with self._db_lock:
            row = self._connection.execute(
                "SELECT data, checksum FROM chunks"
                " WHERE array_id=? AND chunk_id=?",
                (array_id, chunk_id),
            ).fetchone()
        if row is None:
            raise StorageError(
                "missing chunk %r of array %r" % (chunk_id, array_id)
            )
        return self._decode(array_id, chunk_id, row[0], row[1])

    def _read_chunks(self, array_id, chunk_ids):
        self.meta(array_id)
        result = {}
        unique = sorted(set(chunk_ids))
        for start in range(0, len(unique), self.MAX_IN_LIST):
            batch = unique[start:start + self.MAX_IN_LIST]
            placeholders = ",".join("?" * len(batch))
            with self._db_lock:
                rows = self._connection.execute(
                    "SELECT chunk_id, data, checksum FROM chunks"
                    " WHERE array_id=? AND chunk_id IN (%s)" % placeholders,
                    [array_id] + batch,
                ).fetchall()
            for chunk_id, blob, checksum in rows:
                result[chunk_id] = self._decode(
                    array_id, chunk_id, blob, checksum
                )
        missing = set(unique) - set(result)
        if missing:
            raise StorageError(
                "missing chunks %r of array %r" % (sorted(missing), array_id)
            )
        return result

    def _read_chunk_ranges(self, array_id, ranges):
        self.meta(array_id)
        result = {}
        for first, last, step in ranges:
            with self._db_lock:
                if step == 1:
                    rows = self._connection.execute(
                        "SELECT chunk_id, data, checksum FROM chunks"
                        " WHERE array_id=? AND chunk_id BETWEEN ? AND ?",
                        (array_id, first, last),
                    ).fetchall()
                else:
                    rows = self._connection.execute(
                        "SELECT chunk_id, data, checksum FROM chunks"
                        " WHERE array_id=? AND chunk_id BETWEEN ? AND ?"
                        " AND (chunk_id - ?) % ? = 0",
                        (array_id, first, last, first, step),
                    ).fetchall()
            for chunk_id, blob, checksum in rows:
                result[chunk_id] = self._decode(
                    array_id, chunk_id, blob, checksum
                )
        return result

    # -- quarantine ---------------------------------------------------------------

    def _quarantine_chunk(self, array_id, chunk_id):
        """Move one damaged row aside; later reads get a clean missing-
        chunk StorageError instead of re-fetching bad bytes."""
        with self._db_lock:
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                moved = self._connection.execute(
                    "INSERT OR REPLACE INTO quarantined_chunks"
                    " SELECT * FROM chunks"
                    "  WHERE array_id=? AND chunk_id=?",
                    (array_id, chunk_id),
                ).rowcount
                self._connection.execute(
                    "DELETE FROM chunks WHERE array_id=? AND chunk_id=?",
                    (array_id, chunk_id),
                )
            except BaseException:
                self._connection.rollback()
                raise
            else:
                self._connection.commit()
        return bool(moved)

    # -- delegated aggregates ----------------------------------------------------

    def aggregate(self, array_id, op):
        """Server-side whole-array aggregate over the chunk BLOBs.

        Models the paper's delegation of common operations to a capable
        back-end: only the scalar result crosses the interface.
        """
        if op not in ("sum", "avg", "min", "max"):
            raise StorageError("unknown aggregate %r" % (op,))
        self.meta(array_id)
        with self._db_lock:
            rows = self._connection.execute(
                "SELECT chunk_id, data, checksum FROM chunks"
                " WHERE array_id=? ORDER BY chunk_id",
                (array_id,),
            ).fetchall()
        total = 0.0
        count = 0
        low = None
        high = None
        for chunk_id, blob, checksum in rows:
            piece = self._decode(array_id, chunk_id, blob, checksum)
            if piece.size == 0:
                continue
            total += float(np.sum(piece))
            count += piece.size
            piece_min = float(np.min(piece))
            piece_max = float(np.max(piece))
            low = piece_min if low is None else min(low, piece_min)
            high = piece_max if high is None else max(high, piece_max)
        self.stats.count(requests=1, aggregates_delegated=1)
        if count == 0:
            raise StorageError("aggregate of empty array %r" % (array_id,))
        if op == "sum":
            return total
        if op == "avg":
            return total / count
        if op == "min":
            return low
        return high
