"""In-memory ASEI back-end.

Used for unit tests and as the baseline "no external storage" case: every
request is a dictionary lookup, so differences between retrieval strategies
reduce to pure bookkeeping overhead — useful for isolating strategy cost
from transport cost.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import StorageError
from repro.storage.asei import ArrayStore


class MemoryArrayStore(ArrayStore):
    """Chunks held in a process-local dictionary."""

    supports_batch = True
    supports_ranges = True
    supports_aggregates = True
    #: dict reads are safe under concurrent prefetch workers
    thread_safe = True

    def __init__(self, chunk_bytes=None, **kwargs):
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        super().__init__(**kwargs)
        self._chunks: Dict[Tuple[object, int], np.ndarray] = {}

    def _write_chunk(self, array_id, chunk_id, data):
        self._chunks[(array_id, chunk_id)] = np.array(data)

    def _read_chunk(self, array_id, chunk_id):
        try:
            return self._chunks[(array_id, chunk_id)]
        except KeyError:
            raise StorageError(
                "missing chunk %r of array %r" % (chunk_id, array_id)
            )

    def _read_chunks(self, array_id, chunk_ids):
        return {cid: self._read_chunk(array_id, cid) for cid in chunk_ids}

    def _read_chunk_ranges(self, array_id, ranges):
        result = {}
        for first, last, step in ranges:
            for chunk_id in range(first, last + 1, step):
                result[chunk_id] = self._read_chunk(array_id, chunk_id)
        return result

    def aggregate(self, array_id, op):
        meta = self.meta(array_id)
        pieces = [
            self._read_chunk(array_id, chunk_id)
            for chunk_id in range(meta.layout.chunk_count)
        ]
        self.stats.count(requests=1, aggregates_delegated=1)
        flat = np.concatenate(pieces) if pieces else np.empty(0)
        if flat.size == 0:
            raise StorageError("aggregate of empty array %r" % (array_id,))
        if op == "sum":
            return float(np.sum(flat))
        if op == "avg":
            return float(np.mean(flat))
        if op == "min":
            return float(np.min(flat))
        if op == "max":
            return float(np.max(flat))
        raise StorageError("unknown aggregate %r" % (op,))
