"""Process-wide, thread-safe buffer pool of fetched array chunks.

Generalizes the old per-resolver :class:`~repro.storage.cache.ChunkCache`
into the chunk buffer SSDM shares between *all* array accesses
(dissertation section 6.2): one byte-bounded LRU pool serves every ASEI
back-end, every APR resolver, and every concurrent workbench request.

Three capabilities distinguish it from a plain LRU map:

- **Pinning** — APR pins the chunks of a view for the duration of a
  resolve, so chunks fetched early are not evicted before assembly.
- **In-flight deduplication** — concurrent queries that need the same
  ``(array, chunk)`` never double-fetch: the first caller *claims* the
  chunk and others wait on its :class:`InFlightFetch`.
- **Instrumentation** — counters (hits, misses, prefetch-hits,
  wasted-prefetches, in-flight-waits, rejected, evictions, bytes in/out)
  surfaced through ``SSDM.stats()`` and the server's ``stats`` op, with
  the invariant ``hits + misses == lookups``.

Entries are keyed by a two-level dict ``array_key -> {chunk_id: buf}``
so per-array invalidation and pinning are O(chunks of that array), not
O(pool size).  ``array_key`` is any hashable value; stores namespace
their array ids with a per-instance token (``ArrayStore.pool_key``) so
one process-wide pool can serve many stores without id collisions.

Chunks larger than the pool's byte budget are rejected outright (and
counted) instead of being admitted and permanently blowing the budget.

Corrupt chunks never enter the pool: the checksummed store read paths
verify fetched bytes *before* publishing them (a mismatch raises
:class:`~repro.exceptions.CorruptionError` instead of returning data),
so a cached chunk is always one that passed verification.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import governor as gov
from repro import observability as obs

#: Default pool budget: generous enough for the benchmark working sets,
#: small enough to exercise eviction under real workloads.
DEFAULT_POOL_BYTES = 64 * 1024 * 1024


def _observe_pool(hits, misses):
    """Report demand lookups to the active trace and the metrics.

    Called *outside* the pool lock so instrumentation never extends the
    critical section every store in the process contends on.
    """
    if not hits and not misses:
        return
    obs.tick("pool_hit", hits=hits, misses=misses)
    registry = obs.metrics()
    if hits:
        registry.inc("pool_hits_total", hits)
    if misses:
        registry.inc("pool_misses_total", misses)


class InFlightFetch:
    """A chunk fetch owned by one thread that others may wait on."""

    __slots__ = ("event", "value", "error", "stale")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error = None
        self.stale = False


class BufferPool:
    """Byte-bounded, thread-safe LRU pool of chunk buffers."""

    def __init__(self, max_bytes=DEFAULT_POOL_BYTES):
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        #: two-level map: array_key -> {chunk_id: buffer}
        self._arrays: Dict[object, Dict[int, object]] = {}
        #: global LRU order; values are the entry's byte size
        self._lru: "OrderedDict[Tuple[object, int], int]" = OrderedDict()
        self._pins: Dict[Tuple[object, int], int] = {}
        self._prefetched: Set[Tuple[object, int]] = set()
        self._inflight: Dict[Tuple[object, int], InFlightFetch] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.prefetch_hits = 0
        self.wasted_prefetches = 0
        self.inflight_waits = 0
        self.rejected = 0
        self.evictions = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def __len__(self):
        with self._lock:
            return len(self._lru)

    @property
    def current_bytes(self):
        with self._lock:
            return self._bytes

    # -- lookups -----------------------------------------------------------------

    def get(self, array_key, chunk_id):
        """One cached chunk, or None; counts a hit or a miss."""
        with self._lock:
            chunk = self._get_locked(array_key, chunk_id)
        hit = chunk is not None
        _observe_pool(1 if hit else 0, 0 if hit else 1)
        return chunk

    def _get_locked(self, array_key, chunk_id):
        bucket = self._arrays.get(array_key)
        chunk = None if bucket is None else bucket.get(chunk_id)
        if chunk is None:
            self.misses += 1
            return None
        key = (array_key, chunk_id)
        self._lru.move_to_end(key)
        self.hits += 1
        self.bytes_out += self._lru[key]
        if key in self._prefetched:
            self._prefetched.discard(key)
            self.prefetch_hits += 1
        return chunk

    def claim(self, array_key, chunk_ids, record=True):
        """Partition needed chunks into (cached, owned, waiting).

        ``cached`` maps chunk id -> buffer for resident chunks (counted
        as hits); ``owned`` lists ids this caller must fetch — they are
        registered in-flight and MUST be completed with :meth:`publish`
        or :meth:`fail`; ``waiting`` maps ids being fetched by another
        thread to the :class:`InFlightFetch` to :meth:`wait` on.

        ``record=False`` skips hit/miss accounting (used for
        speculative prefetch probes, which are not demand lookups).
        """
        cached: Dict[int, object] = {}
        owned: List[int] = []
        waiting: Dict[int, InFlightFetch] = {}
        with self._lock:
            bucket = self._arrays.get(array_key)
            for chunk_id in chunk_ids:
                chunk = None if bucket is None else bucket.get(chunk_id)
                if chunk is not None:
                    if record:
                        key = (array_key, chunk_id)
                        self._lru.move_to_end(key)
                        self.hits += 1
                        self.bytes_out += self._lru[key]
                        if key in self._prefetched:
                            self._prefetched.discard(key)
                            self.prefetch_hits += 1
                    cached[chunk_id] = chunk
                    continue
                if record:
                    self.misses += 1
                key = (array_key, chunk_id)
                fetch = self._inflight.get(key)
                if fetch is not None:
                    waiting[chunk_id] = fetch
                    if record:
                        self.inflight_waits += 1
                else:
                    self._inflight[key] = InFlightFetch()
                    owned.append(chunk_id)
        if record:
            _observe_pool(len(cached), len(owned) + len(waiting))
        return cached, owned, waiting

    @staticmethod
    def wait(fetch, timeout=None):
        """Block until another thread's fetch completes; returns the
        chunk buffer (raises the owner's error if the fetch failed)."""
        if not fetch.event.wait(timeout):
            raise TimeoutError("in-flight chunk fetch timed out")
        if fetch.error is not None:
            raise fetch.error
        return fetch.value

    # -- insertion ----------------------------------------------------------------

    def put(self, array_key, chunk_id, chunk, prefetched=False):
        """Admit one chunk; returns False if it was rejected (oversized).

        ``prefetched`` marks the entry as speculatively fetched: its
        first demand hit counts as a prefetch-hit, and eviction or
        invalidation before any hit counts as a wasted prefetch.
        """
        with self._lock:
            return self._put_locked(array_key, chunk_id, chunk, prefetched)

    def _put_locked(self, array_key, chunk_id, chunk, prefetched):
        nbytes = int(getattr(chunk, "nbytes", 0) or len(chunk))
        if nbytes > self.max_bytes:
            # an oversized chunk would permanently blow the byte budget
            self.rejected += 1
            return False
        key = (array_key, chunk_id)
        if key in self._lru:
            self._bytes -= self._lru[key]
            self._lru.move_to_end(key)
        self._arrays.setdefault(array_key, {})[chunk_id] = chunk
        self._lru[key] = nbytes
        self._bytes += nbytes
        self.bytes_in += nbytes
        if prefetched:
            self._prefetched.add(key)
        else:
            self._prefetched.discard(key)
        self._evict_locked()
        return True

    def publish(self, array_key, chunks, prefetched=False):
        """Deliver fetched chunks: admit them and wake any waiters.

        ``chunks`` maps chunk id -> buffer, as returned by the ASEI
        batch/range readers.  In-flight registrations for these ids are
        completed; ids invalidated while the fetch was in flight are
        delivered to waiters but not admitted to the pool.
        """
        with self._lock:
            for chunk_id, chunk in chunks.items():
                key = (array_key, chunk_id)
                fetch = self._inflight.pop(key, None)
                stale = fetch is not None and fetch.stale
                if not stale:
                    self._put_locked(array_key, chunk_id, chunk, prefetched)
                if fetch is not None:
                    fetch.value = chunk
                    fetch.event.set()

    def fail(self, array_key, chunk_ids, error):
        """Abort in-flight fetches, propagating ``error`` to waiters."""
        with self._lock:
            for chunk_id in chunk_ids:
                fetch = self._inflight.pop((array_key, chunk_id), None)
                if fetch is not None:
                    fetch.error = error
                    fetch.event.set()

    # -- pinning ------------------------------------------------------------------

    def pin(self, array_key, chunk_ids):
        """Protect chunks from eviction (counted; pins nest)."""
        with self._lock:
            for chunk_id in chunk_ids:
                key = (array_key, chunk_id)
                self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, array_key, chunk_ids):
        with self._lock:
            for chunk_id in chunk_ids:
                key = (array_key, chunk_id)
                count = self._pins.get(key, 0) - 1
                if count <= 0:
                    self._pins.pop(key, None)
                else:
                    self._pins[key] = count
            # apply any eviction deferred while the pins were held
            self._evict_locked()

    @contextmanager
    def pinned(self, array_key, chunk_ids):
        chunk_ids = list(chunk_ids)
        self.pin(array_key, chunk_ids)
        try:
            yield
        finally:
            self.unpin(array_key, chunk_ids)

    # -- eviction & invalidation ---------------------------------------------------

    def _evict_locked(self):
        # under governor pressure the pool evicts down to a shrunk soft
        # limit, yielding memory back before any query is killed; the
        # hard max_bytes admission rule in _put_locked is unchanged
        limit = gov.get_governor().pool_soft_limit(self.max_bytes)
        if self._bytes <= limit:
            return
        for key in list(self._lru):
            if self._bytes <= limit:
                break
            if self._pins.get(key):
                continue
            self._remove_locked(key, wasted=True)
            self.evictions += 1

    def _remove_locked(self, key, wasted):
        nbytes = self._lru.pop(key)
        array_key, chunk_id = key
        bucket = self._arrays.get(array_key)
        if bucket is not None:
            bucket.pop(chunk_id, None)
            if not bucket:
                self._arrays.pop(array_key, None)
        self._bytes -= nbytes
        if key in self._prefetched:
            self._prefetched.discard(key)
            if wasted:
                self.wasted_prefetches += 1

    def invalidate(self, array_key=None, chunk_id=None):
        """Drop one chunk, one array's chunks, or everything.

        Per-array invalidation walks only that array's bucket (O(chunks
        of the array)).  Fetches currently in flight for the target are
        marked stale so their results are not admitted after the fact.
        """
        with self._lock:
            if array_key is None:
                keys = list(self._lru)
            elif chunk_id is None:
                bucket = self._arrays.get(array_key, {})
                keys = [(array_key, cid) for cid in list(bucket)]
            else:
                keys = (
                    [(array_key, chunk_id)]
                    if chunk_id in self._arrays.get(array_key, {}) else []
                )
            for key in keys:
                self._remove_locked(key, wasted=True)
            for key, fetch in self._inflight.items():
                if array_key is None or key[0] == array_key:
                    if chunk_id is None or key[1] == chunk_id:
                        fetch.stale = True

    # -- reporting ----------------------------------------------------------------

    def stats(self):
        """Atomic snapshot of every counter plus occupancy."""
        with self._lock:
            return {
                "lookups": self.hits + self.misses,
                "hits": self.hits,
                "misses": self.misses,
                "prefetch_hits": self.prefetch_hits,
                "wasted_prefetches": self.wasted_prefetches,
                "inflight_waits": self.inflight_waits,
                "rejected": self.rejected,
                "evictions": self.evictions,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "entries": len(self._lru),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "pinned": len(self._pins),
                # bytes held down by pins right now; the pin-leak
                # regression tests assert this returns to zero after
                # every abort path (timeout, governor kill)
                "pinned_bytes": sum(
                    self._lru.get(key, 0) for key in self._pins
                ),
                "inflight": len(self._inflight),
            }

    def reset_counters(self):
        """Zero the traffic counters (occupancy is untouched)."""
        with self._lock:
            self.hits = self.misses = 0
            self.prefetch_hits = self.wasted_prefetches = 0
            self.inflight_waits = self.rejected = self.evictions = 0
            self.bytes_in = self.bytes_out = 0

    def __repr__(self):
        return "BufferPool(%r)" % (self.stats(),)


# -- the process-wide shared pool --------------------------------------------------

_shared: Optional[BufferPool] = None
_shared_lock = threading.Lock()


def shared_pool():
    """The process-wide buffer pool every store shares by default."""
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = BufferPool()
        return _shared


def set_shared_pool(pool):
    """Install a replacement shared pool; returns the previous one."""
    global _shared
    with _shared_lock:
        previous = _shared
        _shared = pool
        return previous
