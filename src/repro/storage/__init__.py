"""Array storage: the Array Storage Extensibility Interface and back-ends.

Chapter 6 of the dissertation: arrays too large (or too numerous) for main
memory are linearized, chunked, and stored in an external system behind the
*Array Storage Extensibility Interface* (ASEI).  Triple values then hold
:class:`~repro.arrays.ArrayProxy` descriptors, and the array-proxy-resolve
(APR) operator fetches exactly the chunks a query's view touches, using one
of four retrieval strategies:

- ``SINGLE``   — one back-end request per chunk;
- ``BUFFER``   — batch up to *buffer_size* chunk ids per request (IN-lists);
- ``SPD``      — run the Sequence Pattern Detector over the chunk-id stream
  and issue range requests for the arithmetic subsequences it finds;
- ``PREFETCH`` — SPD planning plus a parallel fetch pipeline through the
  process-wide, instrumented chunk :class:`BufferPool`.

Back-ends provided: in-memory (:class:`MemoryArrayStore`), binary files
(:class:`FileArrayStore`), and an RDBMS via SQLite
(:class:`SqlArrayStore`).

The durability layer (:mod:`repro.storage.durability`) adds a
write-ahead :class:`DatasetJournal` for the RDF image, checksummed chunk
reads in the persistent back-ends (corruption raises a typed ``CORRUPT``
error instead of returning wrong bytes), and ``verify()`` / ``repair()``
scans that quarantine damaged chunks.
"""

from repro.storage.asei import ArrayStore, StorageStats
from repro.storage.durability import (
    DatasetJournal,
    WriteAheadLog,
    atomic_write_bytes,
    payload_crc,
)
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.memory import MemoryArrayStore
from repro.storage.filestore import FileArrayStore
from repro.storage.sqlstore import SqlArrayStore
from repro.storage.sqlgraph import SqlTripleGraph
from repro.storage.apr import APRResolver, Strategy
from repro.storage.spd import SequencePatternDetector
from repro.storage.bufferpool import BufferPool, set_shared_pool, shared_pool
from repro.storage.cache import ChunkCache

__all__ = [
    "ArrayStore",
    "StorageStats",
    "DatasetJournal",
    "WriteAheadLog",
    "atomic_write_bytes",
    "payload_crc",
    "FaultPlan",
    "SimulatedCrash",
    "MemoryArrayStore",
    "FileArrayStore",
    "SqlArrayStore",
    "SqlTripleGraph",
    "APRResolver",
    "Strategy",
    "SequencePatternDetector",
    "BufferPool",
    "shared_pool",
    "set_shared_pool",
    "ChunkCache",
]
