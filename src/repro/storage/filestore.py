"""Binary-file ASEI back-end.

Models the paper's "arrays in binary files" storage choice (and the
Matlab-integration scenario where arrays live in native files): each array
is one flat binary file; a chunk read is a seek plus a fixed-size read.
Range requests over *consecutive* chunks collapse into a single contiguous
read — the file system's natural advantage the paper's comparison
highlights (section 2.5: "sequential access to chunks provides a
substantial performance boost over random access").

Durability layout (per array id N under the base directory):

- ``array_N.bin`` — the chunk data, written first and fsync'd before the
  array becomes visible;
- ``array_N.crc`` — the checksum sidecar: one big-endian ``uint32`` CRC
  per chunk, written atomically (temp + fsync + rename) after the data;
- ``array_N.json`` — shape/dtype metadata, written *last* and atomically,
  so a crash mid-``put`` leaves at worst an unreachable orphan — never a
  registered array with torn chunks.

Every read verifies the fetched bytes against the sidecar and raises a
typed :class:`~repro.exceptions.CorruptionError` on mismatch (including
short reads from a truncated file), so torn writes and bit rot surface as
``CORRUPT`` errors instead of wrong query results.  Stores written before
checksums existed (no ``.crc`` file) stay readable, unverified.
``repair()`` quarantines damaged arrays into a ``quarantine/`` subdir.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arrays.chunks import ChunkLayout
from repro.arrays.nma import ELEMENT_TYPES
from repro.exceptions import CorruptionError, StorageError
from repro.storage.asei import ArrayMeta, ArrayStore
from repro.storage.durability import (
    atomic_write_bytes, fsync_directory, payload_crc,
)
from repro.storage.faults import SimulatedCrash


class FileArrayStore(ArrayStore):
    """One flat binary file per array under a base directory."""

    supports_batch = True
    supports_ranges = True
    supports_aggregates = False
    #: every read opens its own file handle, so concurrent prefetch
    #: workers never share seek positions
    thread_safe = True

    QUARANTINE_DIR = "quarantine"

    def __init__(self, directory, chunk_bytes=None, **kwargs):
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        super().__init__(**kwargs)
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        #: chunk-checksum tables: array_id -> {chunk_id: crc}, or None
        #: for legacy arrays persisted without a sidecar
        self._crcs: Dict[int, Optional[Dict[int, int]]] = {}
        self._recover_ids()

    def _recover_ids(self):
        highest = 0
        for name in os.listdir(self.directory):
            if name.startswith("array_") and name.endswith(".json"):
                try:
                    highest = max(highest, int(name[6:-5]))
                except ValueError:
                    continue
        self._next_id = highest + 1

    def _data_path(self, array_id):
        return os.path.join(self.directory, "array_%d.bin" % array_id)

    def _meta_path(self, array_id):
        return os.path.join(self.directory, "array_%d.json" % array_id)

    def _crc_path(self, array_id):
        return os.path.join(self.directory, "array_%d.crc" % array_id)

    # -- persistence of metadata ------------------------------------------------

    def _register_meta(self, meta):
        payload = json.dumps(
            {
                "element_type": meta.element_type,
                "shape": list(meta.shape),
                "element_count": meta.layout.element_count,
                "chunk_bytes": meta.layout.chunk_bytes,
            }
        ).encode("utf-8")
        # temp file + fsync + rename: a reader (or a reopened store)
        # sees either no metadata or complete metadata, never a torn
        # JSON document
        atomic_write_bytes(self._meta_path(meta.array_id), payload)

    def _load_meta(self, array_id):
        path = self._meta_path(array_id)
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            raw = json.load(handle)
        dtype = ELEMENT_TYPES[raw["element_type"]]
        layout = ChunkLayout(
            raw["element_count"], dtype.itemsize, raw["chunk_bytes"]
        )
        return ArrayMeta(array_id, raw["element_type"], raw["shape"], layout)

    def _all_array_ids(self):
        ids = set(self._meta)
        for name in os.listdir(self.directory):
            if name.startswith("array_") and name.endswith(".json"):
                try:
                    ids.add(int(name[6:-5]))
                except ValueError:
                    continue
        return sorted(ids, key=str)

    # -- checksum sidecar --------------------------------------------------------

    def _crc_table(self, array_id):
        """The chunk-checksum table of one array, or None (legacy)."""
        if array_id in self._crcs:
            return self._crcs[array_id]
        path = self._crc_path(array_id)
        if not os.path.exists(path):
            self._crcs[array_id] = None
            return None
        with open(path, "rb") as handle:
            raw = handle.read()
        count = len(raw) // 4
        values = struct.unpack(">%dI" % count, raw[: count * 4])
        table = dict(enumerate(values))
        self._crcs[array_id] = table
        return table

    def _store_crc_table(self, array_id, table):
        """Persist a checksum table atomically and cache it."""
        count = (max(table) + 1) if table else 0
        values = [table.get(index, 0) for index in range(count)]
        atomic_write_bytes(
            self._crc_path(array_id), struct.pack(">%dI" % count, *values)
        )
        self._crcs[array_id] = dict(table)

    def _verified(self, array_id, chunk_id, raw, expected_bytes):
        """Short-read + checksum verification of one chunk's bytes."""
        raw = self._fault_read_bytes(raw)
        if len(raw) < expected_bytes:
            raise CorruptionError(
                "short read of chunk %d of array %r: %d of %d bytes "
                "(file truncated by a torn write?)"
                % (chunk_id, array_id, len(raw), expected_bytes)
            )
        if self.verify_checksums:
            table = self._crc_table(array_id)
            if table is not None:
                expected = table.get(chunk_id)
                if expected is None or payload_crc(raw) != expected:
                    raise CorruptionError(
                        "chunk %d of array %r failed its checksum"
                        % (chunk_id, array_id)
                    )
        return raw

    # -- chunk IO -----------------------------------------------------------------

    def _write_chunk(self, array_id, chunk_id, data):
        layout = self.meta(array_id).layout
        path = self._data_path(array_id)
        payload = np.ascontiguousarray(data).tobytes()
        # checksum the pristine payload; fault injection may tear the
        # bytes that actually hit the disk, which the next read detects
        table = self._crcs.setdefault(array_id, {})
        if table is None:
            table = self._crcs[array_id] = {}
        table[chunk_id] = payload_crc(payload)
        payload, crash_after = self._fault_write_bytes(payload)
        mode = "r+b" if os.path.exists(path) else "wb"
        with open(path, mode) as handle:
            handle.seek(chunk_id * layout.chunk_bytes)
            handle.write(payload)
        if crash_after:
            raise SimulatedCrash(
                "injected crash after torn write of chunk %d of array %r"
                % (chunk_id, array_id)
            )

    def _flush_chunks(self, meta):
        """Durability ordering of a put: fsync data, then checksums.

        Metadata registration (which makes the array visible) follows in
        the base class, so the sequence on disk is always
        data -> checksums -> metadata.
        """
        path = self._data_path(meta.array_id)
        if os.path.exists(path):
            with open(path, "r+b") as handle:
                os.fsync(handle.fileno())
        table = self._crcs.get(meta.array_id) or {}
        self._store_crc_table(meta.array_id, table)
        fsync_directory(self.directory)

    def _read_chunk(self, array_id, chunk_id):
        meta = self.meta(array_id)
        layout = meta.layout
        count = layout.chunk_extent(chunk_id)
        if count == 0:
            raise StorageError(
                "chunk %d outside array %r" % (chunk_id, array_id)
            )
        dtype = ELEMENT_TYPES[meta.element_type]
        try:
            with open(self._data_path(array_id), "rb") as handle:
                handle.seek(chunk_id * layout.chunk_bytes)
                raw = handle.read(count * dtype.itemsize)
        except FileNotFoundError:
            raise StorageError(
                "missing data file of array %r" % (array_id,)
            )
        raw = self._verified(array_id, chunk_id, raw, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype)

    def _read_chunks(self, array_id, chunk_ids):
        meta = self.meta(array_id)
        layout = meta.layout
        dtype = ELEMENT_TYPES[meta.element_type]
        result = {}
        try:
            handle = open(self._data_path(array_id), "rb")
        except FileNotFoundError:
            raise StorageError(
                "missing data file of array %r" % (array_id,)
            )
        with handle:
            for chunk_id in sorted(set(chunk_ids)):
                count = layout.chunk_extent(chunk_id)
                if count == 0:
                    raise StorageError(
                        "chunk %d outside array %r" % (chunk_id, array_id)
                    )
                handle.seek(chunk_id * layout.chunk_bytes)
                raw = handle.read(count * dtype.itemsize)
                raw = self._verified(
                    array_id, chunk_id, raw, count * dtype.itemsize
                )
                result[chunk_id] = np.frombuffer(raw, dtype=dtype)
        return result

    def _read_chunk_ranges(self, array_id, ranges):
        meta = self.meta(array_id)
        layout = meta.layout
        dtype = ELEMENT_TYPES[meta.element_type]
        result = {}
        try:
            handle = open(self._data_path(array_id), "rb")
        except FileNotFoundError:
            raise StorageError(
                "missing data file of array %r" % (array_id,)
            )
        with handle:
            for first, last, step in ranges:
                if step == 1:
                    # contiguous range: a single large sequential read
                    handle.seek(first * layout.chunk_bytes)
                    span_chunks = last - first + 1
                    tail_extent = layout.chunk_extent(last)
                    if tail_extent == 0:
                        raise StorageError(
                            "chunk %d outside array %r" % (last, array_id)
                        )
                    nbytes = (
                        (span_chunks - 1) * layout.chunk_bytes
                        + tail_extent * dtype.itemsize
                    )
                    raw = handle.read(nbytes)
                    for index in range(span_chunks):
                        chunk_id = first + index
                        count = layout.chunk_extent(chunk_id)
                        start = index * layout.chunk_bytes
                        piece = raw[start:start + count * dtype.itemsize]
                        piece = self._verified(
                            array_id, chunk_id, piece,
                            count * dtype.itemsize,
                        )
                        result[chunk_id] = np.frombuffer(piece, dtype=dtype)
                else:
                    for chunk_id in range(first, last + 1, step):
                        count = layout.chunk_extent(chunk_id)
                        handle.seek(chunk_id * layout.chunk_bytes)
                        raw = handle.read(count * dtype.itemsize)
                        raw = self._verified(
                            array_id, chunk_id, raw,
                            count * dtype.itemsize,
                        )
                        result[chunk_id] = np.frombuffer(raw, dtype=dtype)
        return result

    # -- quarantine ---------------------------------------------------------------

    def _quarantine_chunk(self, array_id, chunk_id):
        """Quarantine the whole damaged array (one flat file per array:
        individual chunks cannot be excised).  Files move into
        ``quarantine/``; the array's id then reads as *missing*."""
        quarantine = os.path.join(self.directory, self.QUARANTINE_DIR)
        moved = False
        for path in (
            self._data_path(array_id),
            self._crc_path(array_id),
            self._meta_path(array_id),
        ):
            if not os.path.exists(path):
                continue
            os.makedirs(quarantine, exist_ok=True)
            os.replace(
                path, os.path.join(quarantine, os.path.basename(path))
            )
            moved = True
        if moved:
            self._meta.pop(array_id, None)
            self._crcs.pop(array_id, None)
            fsync_directory(self.directory)
        return moved
