"""Binary-file ASEI back-end.

Models the paper's "arrays in binary files" storage choice (and the
Matlab-integration scenario where arrays live in native files): each array
is one flat binary file; a chunk read is a seek plus a fixed-size read.
Range requests over *consecutive* chunks collapse into a single contiguous
read — the file system's natural advantage the paper's comparison
highlights (section 2.5: "sequential access to chunks provides a
substantial performance boost over random access").

A small JSON sidecar per array persists shape and dtype so a store can be
reopened on the same directory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

import numpy as np

from repro.arrays.chunks import ChunkLayout
from repro.arrays.nma import ELEMENT_TYPES
from repro.exceptions import StorageError
from repro.storage.asei import ArrayMeta, ArrayStore


class FileArrayStore(ArrayStore):
    """One flat binary file per array under a base directory."""

    supports_batch = True
    supports_ranges = True
    supports_aggregates = False
    #: every read opens its own file handle, so concurrent prefetch
    #: workers never share seek positions
    thread_safe = True

    def __init__(self, directory, chunk_bytes=None, **kwargs):
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        super().__init__(**kwargs)
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._recover_ids()

    def _recover_ids(self):
        highest = 0
        for name in os.listdir(self.directory):
            if name.startswith("array_") and name.endswith(".json"):
                try:
                    highest = max(highest, int(name[6:-5]))
                except ValueError:
                    continue
        self._next_id = highest + 1

    def _data_path(self, array_id):
        return os.path.join(self.directory, "array_%d.bin" % array_id)

    def _meta_path(self, array_id):
        return os.path.join(self.directory, "array_%d.json" % array_id)

    # -- persistence of metadata ------------------------------------------------

    def _register_meta(self, meta):
        with open(self._meta_path(meta.array_id), "w") as handle:
            json.dump(
                {
                    "element_type": meta.element_type,
                    "shape": list(meta.shape),
                    "element_count": meta.layout.element_count,
                    "chunk_bytes": meta.layout.chunk_bytes,
                },
                handle,
            )

    def _load_meta(self, array_id):
        path = self._meta_path(array_id)
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            raw = json.load(handle)
        dtype = ELEMENT_TYPES[raw["element_type"]]
        layout = ChunkLayout(
            raw["element_count"], dtype.itemsize, raw["chunk_bytes"]
        )
        return ArrayMeta(array_id, raw["element_type"], raw["shape"], layout)

    # -- chunk IO -----------------------------------------------------------------

    def _write_chunk(self, array_id, chunk_id, data):
        layout = self.meta(array_id).layout
        path = self._data_path(array_id)
        mode = "r+b" if os.path.exists(path) else "wb"
        with open(path, mode) as handle:
            handle.seek(chunk_id * layout.chunk_bytes)
            handle.write(np.ascontiguousarray(data).tobytes())

    def _read_chunk(self, array_id, chunk_id):
        meta = self.meta(array_id)
        layout = meta.layout
        count = layout.chunk_extent(chunk_id)
        if count == 0:
            raise StorageError(
                "chunk %d outside array %r" % (chunk_id, array_id)
            )
        dtype = ELEMENT_TYPES[meta.element_type]
        with open(self._data_path(array_id), "rb") as handle:
            handle.seek(chunk_id * layout.chunk_bytes)
            raw = handle.read(count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype)

    def _read_chunks(self, array_id, chunk_ids):
        meta = self.meta(array_id)
        layout = meta.layout
        dtype = ELEMENT_TYPES[meta.element_type]
        result = {}
        with open(self._data_path(array_id), "rb") as handle:
            for chunk_id in sorted(set(chunk_ids)):
                count = layout.chunk_extent(chunk_id)
                if count == 0:
                    raise StorageError(
                        "chunk %d outside array %r" % (chunk_id, array_id)
                    )
                handle.seek(chunk_id * layout.chunk_bytes)
                raw = handle.read(count * dtype.itemsize)
                result[chunk_id] = np.frombuffer(raw, dtype=dtype)
        return result

    def _read_chunk_ranges(self, array_id, ranges):
        meta = self.meta(array_id)
        layout = meta.layout
        dtype = ELEMENT_TYPES[meta.element_type]
        result = {}
        with open(self._data_path(array_id), "rb") as handle:
            for first, last, step in ranges:
                if step == 1:
                    # contiguous range: a single large sequential read
                    handle.seek(first * layout.chunk_bytes)
                    span_chunks = last - first + 1
                    tail_extent = layout.chunk_extent(last)
                    if tail_extent == 0:
                        raise StorageError(
                            "chunk %d outside array %r" % (last, array_id)
                        )
                    nbytes = (
                        (span_chunks - 1) * layout.chunk_bytes
                        + tail_extent * dtype.itemsize
                    )
                    raw = handle.read(nbytes)
                    for index in range(span_chunks):
                        chunk_id = first + index
                        count = layout.chunk_extent(chunk_id)
                        start = index * layout.chunk_bytes
                        result[chunk_id] = np.frombuffer(
                            raw, dtype=dtype,
                            count=count,
                            offset=start,
                        )
                else:
                    for chunk_id in range(first, last + 1, step):
                        count = layout.chunk_extent(chunk_id)
                        handle.seek(chunk_id * layout.chunk_bytes)
                        raw = handle.read(count * dtype.itemsize)
                        result[chunk_id] = np.frombuffer(raw, dtype=dtype)
        return result
