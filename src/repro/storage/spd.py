"""The Sequence Pattern Detector (SPD) algorithm.

Dissertation section 6.2.5: instead of designing array tiles so access
patterns become regular, SSDM *discovers regularity at query run time*.
The detector consumes the stream of chunk ids an array view is about to
touch and greedily factors it into maximal arithmetic subsequences; each
subsequence of length >= ``min_run`` becomes one range request (a single
SQL range query), everything else is emitted as single chunk ids (which the
APR layer then batches).

The detector is streaming: ``feed`` may be called once per chunk id and
emits completed patterns as soon as they are known; ``flush`` drains the
tail.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

#: Emission kinds.
SINGLE = "single"
RANGE = "range"


class SequencePatternDetector:
    """Greedy streaming detection of arithmetic chunk-id sequences.

    >>> spd = SequencePatternDetector(min_run=3)
    >>> emissions = []
    >>> for cid in [0, 2, 4, 6, 11, 13]:
    ...     emissions.extend(spd.feed(cid))
    >>> emissions.extend(spd.flush())
    >>> emissions
    [('range', 0, 6, 2), ('single', 11), ('single', 13)]
    """

    def __init__(self, min_run=3):
        if min_run < 2:
            raise ValueError("min_run must be at least 2")
        self.min_run = min_run
        self._pending: List[int] = []
        self._step: Optional[int] = None

    def feed(self, chunk_id):
        """Consume one chunk id; returns a list of completed emissions."""
        out = []
        pending = self._pending
        if not pending:
            pending.append(chunk_id)
            return out
        if self._step is None:
            step = chunk_id - pending[-1]
            if step > 0:
                self._step = step
                pending.append(chunk_id)
            else:
                # non-increasing: cannot extend an upward run
                out.append((SINGLE, pending.pop()))
                pending.append(chunk_id)
            return out
        if chunk_id == pending[-1] + self._step:
            pending.append(chunk_id)
            return out
        # the run broke; emit what we have
        out.extend(self._close())
        return out + self.feed(chunk_id)

    def flush(self):
        """Drain and emit whatever remains buffered."""
        out = self._close(final=True)
        return out

    def predict(self, count):
        """Extrapolate the next ``count`` chunk ids of the current run.

        Prefetching uses this to fetch *ahead* of the demand stream: if
        the detector holds a confirmed arithmetic run (length >=
        ``min_run``), the ids that would extend it are the best guess
        for what a query touching a regular view needs next.  Returns
        ``[]`` when no run is established — predicting from noise would
        only produce wasted prefetches.

        Must be called before :meth:`flush`, which drains the run.
        """
        pending = self._pending
        if (count <= 0 or self._step is None
                or len(pending) < self.min_run):
            return []
        last = pending[-1]
        step = self._step
        return [last + step * (i + 1) for i in range(count)]

    def _close(self, final=False):
        pending = self._pending
        out = []
        if len(pending) >= self.min_run:
            out.append((RANGE, pending[0], pending[-1], self._step))
            self._pending = []
            self._step = None
        elif final:
            out.extend((SINGLE, cid) for cid in pending)
            self._pending = []
            self._step = None
        else:
            # keep the last element: it may seed the next run
            out.extend((SINGLE, cid) for cid in pending[:-1])
            self._pending = pending[-1:]
            self._step = None
        return out


def detect_patterns(chunk_ids, min_run=3):
    """Factor a finite chunk-id sequence into SPD emissions."""
    detector = SequencePatternDetector(min_run=min_run)
    out = []
    for chunk_id in chunk_ids:
        out.extend(detector.feed(chunk_id))
    out.extend(detector.flush())
    return out
