"""Durability layer: write-ahead journal and crash recovery for SSDM.

The paper's SSDM keeps the RDF graph in main memory and ships massive
numeric arrays to external ASEI back-ends (section 6.2).  The array
back-ends are durable by construction (files, an RDBMS); the RDF image
is not.  This module closes that gap with a classical write-ahead log:

- Every SPARQL update appends one **CRC-framed, fsync'd, monotonically
  sequenced record** describing its *computed delta* (not the update
  text — a ``DELETE/INSERT WHERE`` is logged as the concrete triples it
  removed and added, so replay never re-evaluates a query against a
  different graph state).
- Triples inside a record use an **N-Triples-based line encoding**:
  RDF terms serialize through their standard ``n3()`` forms; resident
  arrays embed their elements as a typed literal, while externally
  stored arrays are **referenced by store id** — the chunks themselves
  are durable in the ASEI back-end and never duplicated into the log.
- :meth:`DatasetJournal.replay` rebuilds a dataset by applying every
  intact record in sequence and **truncates the log at the first torn
  or CRC-failing record**, so a crash mid-append converges to the
  pre-update state and a crash after the fsync'd append converges to
  the post-update state — never anything in between.
- :meth:`DatasetJournal.snapshot` compacts the log: the current dataset
  is rewritten as a fresh record sequence (clear + per-graph inserts)
  into a temp file that atomically replaces the log.  Snapshot and WAL
  share one format and one replay path.

Record framing (all integers big-endian)::

    +-------+---------+-----------+--------+-----------------+
    | magic |   seq   |  length   |  crc   |     payload     |
    | 2 B   |  8 B    |   4 B     |  4 B   |   length bytes  |
    +-------+---------+-----------+--------+-----------------+

``crc`` covers ``seq || length || payload``.  The checksum is zlib's
CRC-32 — the one CRC the Python standard library computes at C speed;
CRC-32C (Castagnoli) would need either an external package or a
per-byte Python loop on every chunk read (see ``payload_crc``).
"""

from __future__ import annotations

import io
import json
import os
import re
import struct
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.arrays.nma import ELEMENT_TYPES, NumericArray, dtype_code
from repro.arrays.proxy import ArrayProxy
from repro.exceptions import CorruptionError, StorageError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.term import BlankNode, Literal, URI
from repro import observability as obs

#: Datatype URIs marking array values in the journal's N-Triples lines.
ARRAY_DATATYPE = "urn:x-repro:array"
PROXY_DATATYPE = "urn:x-repro:array-proxy"

_MAGIC = b"WJ"
_HEADER = struct.Struct(">2sQII")      # magic, seq, length, crc
#: Upper bound on one record's payload (a defense against interpreting
#: garbage bytes as a gigantic length and stalling recovery).
MAX_RECORD_BYTES = 1 << 30


def payload_crc(data, crc=0):
    """The 32-bit checksum used for WAL frames and chunk sidecars.

    zlib's CRC-32: detection strength comparable to CRC-32C for the
    single-bit-flip and torn-tail corruptions this layer guards
    against, and computed in C by the standard library.
    """
    return zlib.crc32(data, crc) & 0xFFFFFFFF


def fsync_directory(path):
    """fsync a directory so a rename/create inside it is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return            # platform without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data, fsync=True):
    """Write a file atomically: temp file in the same dir, fsync, rename.

    Readers never observe a half-written file — they see either the old
    content or the new, which is the invariant every metadata file of
    the durability layer relies on.
    """
    directory = os.path.dirname(os.path.abspath(path))
    temp = "%s.tmp.%d" % (path, os.getpid())
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(temp, path)
    if fsync:
        fsync_directory(directory)


class WriteAheadLog:
    """Append-only, CRC-framed, fsync'd record log on one file.

    ``faults`` (a :class:`~repro.storage.faults.FaultPlan`) lets tests
    tear an append mid-write and crash at either side of it.
    """

    def __init__(self, path, faults=None, fsync=True):
        self.path = str(path)
        self.faults = faults
        self.fsync = bool(fsync)
        self._handle = None
        self._next_seq = 1
        self.records_appended = 0
        self.bytes_appended = 0
        self.truncated_bytes = 0

    # -- appending ---------------------------------------------------------------

    def _open_for_append(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, payload):
        """Durably append one record; returns its sequence number.

        The frame is written and fsync'd before returning, so a caller
        that mutates state only *after* ``append`` returns upholds the
        write-ahead invariant.
        """
        if not isinstance(payload, bytes):
            payload = payload.encode("utf-8")
        if len(payload) > MAX_RECORD_BYTES:
            raise StorageError(
                "WAL record of %d bytes exceeds the %d byte limit"
                % (len(payload), MAX_RECORD_BYTES)
            )
        seq = self._next_seq
        frame = self._frame(seq, payload)
        crash_after = False
        if self.faults is not None:
            frame, crash_after = self.faults.mangle_write(frame)
        started = obs._clock()
        handle = self._open_for_append()
        handle.write(frame)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        elapsed = obs._clock() - started
        obs.observe_span("wal_append", elapsed,
                         records=1, bytes=len(frame))
        registry = obs.metrics()
        registry.inc("wal_appends_total")
        registry.inc("wal_bytes_appended_total", len(frame))
        registry.observe("wal_append_seconds", elapsed)
        if crash_after:
            from repro.storage.faults import SimulatedCrash
            raise SimulatedCrash(
                "injected crash after torn WAL append (seq %d)" % seq
            )
        self._next_seq = seq + 1
        self.records_appended += 1
        self.bytes_appended += len(frame)
        return seq

    @property
    def next_seq(self):
        """Sequence number the next :meth:`append` will use."""
        return self._next_seq

    @property
    def last_seq(self):
        """Highest sequence number durably appended (0 = empty log)."""
        return self._next_seq - 1

    @staticmethod
    def _frame(seq, payload):
        body = struct.pack(">QI", seq, len(payload)) + payload
        header = _HEADER.pack(
            _MAGIC, seq, len(payload), payload_crc(body)
        )
        return header + payload

    # -- scanning / recovery -----------------------------------------------------

    def scan(self):
        """Yield ``(seq, payload, end_offset)`` for every intact record.

        Stops — without raising — at the first torn frame, CRC failure,
        bad magic, or non-monotonic sequence number: everything from
        that point on is unreachable garbage left by a crash.
        """
        if not os.path.exists(self.path):
            return
        last_seq = 0
        with open(self.path, "rb") as handle:
            offset = 0
            while True:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return                      # clean EOF or torn header
                magic, seq, length, crc = _HEADER.unpack(header)
                if magic != _MAGIC or seq <= last_seq \
                        or length > MAX_RECORD_BYTES:
                    return
                payload = handle.read(length)
                if len(payload) < length:
                    return                      # torn payload
                body = struct.pack(">QI", seq, length) + payload
                if payload_crc(body) != crc:
                    return                      # bit rot / torn tail
                offset += _HEADER.size + length
                last_seq = seq
                yield seq, payload, offset

    def recover(self):
        """Replay-scan the log, truncating after the last intact record.

        Returns the list of ``(seq, payload)`` pairs that survived;
        subsequent appends continue the sequence.
        """
        records = []
        good_offset = 0
        for seq, payload, end in self.scan():
            records.append((seq, payload))
            good_offset = end
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        if size > good_offset:
            self.truncated_bytes += size - good_offset
            with open(self.path, "r+b") as handle:
                handle.truncate(good_offset)
                handle.flush()
                os.fsync(handle.fileno())
        self._next_seq = (records[-1][0] + 1) if records else 1
        return records

    def rewrite(self, payloads):
        """Atomically replace the log with a fresh record sequence.

        Used by snapshot compaction: the new frames are written to a
        temp file, fsync'd, and renamed over the log, so a crash during
        compaction leaves the *old* log intact.
        """
        self.close()
        buffer = io.BytesIO()
        seq = 0
        for payload in payloads:
            if not isinstance(payload, bytes):
                payload = payload.encode("utf-8")
            seq += 1
            buffer.write(self._frame(seq, payload))
        atomic_write_bytes(self.path, buffer.getvalue(), fsync=self.fsync)
        self._next_seq = seq + 1
        return seq

    def reset(self):
        """Empty the log (a follower resynchronizing from scratch)."""
        self.close()
        if os.path.exists(self.path):
            with open(self.path, "r+b") as handle:
                handle.truncate(0)
                handle.flush()
                os.fsync(handle.fileno())
        self._next_seq = 1

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def stats(self):
        return {
            "path": self.path,
            "next_seq": self._next_seq,
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "truncated_bytes": self.truncated_bytes,
        }


# -- N-Triples-based triple codec ---------------------------------------------------


def encode_term(term):
    """One journal token for an RDF term or array value.

    URIs, blank nodes, and literals use their N-Triples ``n3()`` forms;
    a resident :class:`NumericArray` embeds its elements as a typed
    literal, and an :class:`ArrayProxy` serializes its *descriptor only*
    — the store id plus view geometry — because the chunks are already
    durable behind the ASEI.
    """
    if isinstance(term, (URI, BlankNode, Literal)):
        return term.n3()
    if isinstance(term, ArrayProxy):
        descriptor = {
            "id": term.array_id,
            "et": term.element_type,
            "base": list(term.base_shape),
            "shape": list(term.shape),
            "strides": list(term.strides),
            "offset": term.offset,
        }
        return '"%s"^^<%s>' % (
            _escape(json.dumps(descriptor, sort_keys=True)), PROXY_DATATYPE
        )
    if isinstance(term, NumericArray):
        dense = np.ascontiguousarray(term.to_numpy())
        body = {
            "dtype": dtype_code(dense.dtype),
            "shape": list(dense.shape),
            "data": dense.reshape(-1).tolist(),
        }
        return '"%s"^^<%s>' % (
            _escape(json.dumps(body, sort_keys=True)), ARRAY_DATATYPE
        )
    raise StorageError("cannot journal term %r" % (term,))


def encode_triple(subject, prop, value):
    """One N-Triples-style journal line for a triple."""
    return "%s %s %s ." % (
        encode_term(subject), encode_term(prop), encode_term(value)
    )


def decode_term(token, array_store=None):
    """Parse one journal term token (the dictionary-record codec).

    Accepts exactly what :func:`encode_term` emits for a single term;
    trailing garbage is corruption.
    """
    parser = _LineParser(token)
    term = parser.term(array_store)
    parser._skip_spaces()
    if parser.pos != len(token):
        parser._fail("trailing garbage after term")
    return term


def decode_triple(line, array_store=None):
    """Parse one journal line back into a ``(subject, prop, value)``.

    ``array_store`` resolves proxy references; a line referencing an
    external array without a store configured is a hard error — guessing
    would corrupt query results silently.
    """
    parser = _LineParser(line)
    subject = parser.term(array_store)
    prop = parser.term(array_store)
    value = parser.term(array_store)
    parser.end()
    return subject, prop, value


def _escape(text):
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n", "r": "\r", "t": "\t"}

_BLANK_LABEL = re.compile(r"^b(\d+)$")


def _note_blank_label(label):
    """Keep the process-wide blank-node counter ahead of replayed labels.

    Without this, a recovered graph holding ``_:b7`` from a previous
    process could collide with a fresh anonymous node minted as ``b7``
    by this one — silently unifying two distinct nodes.
    """
    match = _BLANK_LABEL.match(label)
    if match:
        value = int(match.group(1))
        if value > BlankNode._counter:
            BlankNode._counter = value


class _LineParser:
    """Recursive-descent reader for one journal triple line."""

    def __init__(self, line):
        self.line = line
        self.pos = 0

    def _skip_spaces(self):
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def _fail(self, why):
        raise CorruptionError(
            "bad journal triple line (%s) at column %d: %r"
            % (why, self.pos + 1, self.line)
        )

    def term(self, array_store=None):
        self._skip_spaces()
        if self.pos >= len(self.line):
            self._fail("unexpected end of line")
        ch = self.line[self.pos]
        if ch == "<":
            return URI(self._angle())
        if ch == "_":
            return self._blank()
        if ch == '"':
            return self._literal(array_store)
        self._fail("unexpected character %r" % ch)

    def _angle(self):
        end = self.line.find(">", self.pos)
        if end < 0:
            self._fail("unterminated <...>")
        text = self.line[self.pos + 1:end]
        self.pos = end + 1
        return text

    def _blank(self):
        if not self.line.startswith("_:", self.pos):
            self._fail("bad blank node")
        end = self.pos + 2
        while end < len(self.line) and self.line[end] not in " \t":
            end += 1
        label = self.line[self.pos + 2:end]
        if not label:
            self._fail("empty blank node label")
        self.pos = end
        _note_blank_label(label)
        return BlankNode(label)

    def _quoted(self):
        assert self.line[self.pos] == '"'
        out = []
        i = self.pos + 1
        while i < len(self.line):
            ch = self.line[i]
            if ch == "\\":
                if i + 1 >= len(self.line):
                    self._fail("dangling escape")
                replacement = _UNESCAPE.get(self.line[i + 1])
                if replacement is None:
                    self._fail("unknown escape \\%s" % self.line[i + 1])
                out.append(replacement)
                i += 2
                continue
            if ch == '"':
                self.pos = i + 1
                return "".join(out)
            out.append(ch)
            i += 1
        self._fail("unterminated string literal")

    def _literal(self, array_store):
        lexical = self._quoted()
        if self.line.startswith("@", self.pos):
            end = self.pos + 1
            while end < len(self.line) and self.line[end] not in " \t":
                end += 1
            lang = self.line[self.pos + 1:end]
            if not lang:
                self._fail("empty language tag")
            self.pos = end
            return Literal(lexical, lang=lang)
        if self.line.startswith("^^<", self.pos):
            self.pos += 2
            datatype = self._angle()
            if datatype == ARRAY_DATATYPE:
                return _decode_array(lexical)
            if datatype == PROXY_DATATYPE:
                return _decode_proxy(lexical, array_store)
            try:
                return Literal.from_lexical(lexical, URI(datatype))
            except ValueError as error:
                self._fail("bad literal: %s" % error)
        return Literal(lexical)

    def end(self):
        self._skip_spaces()
        if not self.line.startswith(".", self.pos):
            self._fail("missing terminating dot")
        self.pos += 1
        self._skip_spaces()
        if self.pos != len(self.line):
            self._fail("trailing garbage")


def _decode_array(lexical):
    try:
        body = json.loads(lexical)
        dtype = ELEMENT_TYPES[body["dtype"]]
        data = np.asarray(body["data"], dtype=dtype).reshape(body["shape"])
    except (ValueError, KeyError, TypeError) as error:
        raise CorruptionError("bad journal array payload: %s" % (error,))
    return NumericArray(data)


def _decode_proxy(lexical, array_store):
    try:
        descriptor = json.loads(lexical)
        array_id = descriptor["id"]
        element_type = descriptor["et"]
        base = tuple(descriptor["base"])
        shape = tuple(descriptor["shape"])
        strides = tuple(descriptor["strides"])
        offset = int(descriptor["offset"])
    except (ValueError, KeyError, TypeError) as error:
        raise CorruptionError("bad journal proxy payload: %s" % (error,))
    if array_store is None:
        raise StorageError(
            "journal references external array %r but the journal was "
            "opened without an array_store" % (array_id,)
        )
    return ArrayProxy(
        array_store, array_id, element_type, base,
        shape=shape, strides=strides, offset=offset,
    )


# -- the dataset journal -------------------------------------------------------------

#: Journal payload format version.
_FORMAT = 1

#: Graph-name token meaning "every graph" (CLEAR ALL).
ALL_GRAPHS = "ALL"


class DatasetJournal:
    """WAL-journaled persistence of one RDF dataset.

    ``directory`` holds the log (``wal.log``); it is created on demand.
    ``array_store`` resolves array references during replay and should
    be the same (persistent) store the owning SSDM externalizes arrays
    into.  ``faults`` threads a :class:`~repro.storage.faults.FaultPlan`
    into the append path for crash testing.
    """

    LOG_NAME = "wal.log"

    def __init__(self, directory, array_store=None, faults=None, fsync=True):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.array_store = array_store
        self.faults = faults
        self.wal = WriteAheadLog(
            os.path.join(self.directory, self.LOG_NAME),
            faults=faults, fsync=fsync,
        )
        self.records_replayed = 0
        self.triples_replayed = 0
        self.snapshots_taken = 0

    # -- logging updates ---------------------------------------------------------

    def log_update(self, kind, graph=None, insert=(), delete=(),
                   dictionary=None):
        """Durably journal one update delta *before* it is applied.

        ``kind`` is ``insert`` / ``delete`` / ``modify`` / ``clear``;
        ``graph`` is None (default graph), a :class:`URI`, or
        ``"ALL"`` for CLEAR ALL; ``insert`` / ``delete`` are iterables
        of ``(subject, prop, value)`` with array values already
        externalized (so proxies carry their final store ids).

        ``dictionary`` is the dataset's :class:`TermDictionary` (or
        None for dictionary-less callers).  Fresh terms among the
        inserted triples are *previewed* — tentatively assigned the
        next dense IDs — and the ``(id, term)`` pairs ride inside the
        record; the assignments commit into the in-memory dictionary
        only after the append returns, so a torn append leaves the
        dictionary exactly as the durable log implies.  Replay and
        replication :meth:`TermDictionary.bind` the same pairs and
        therefore reconstruct a byte-identical ID space.
        """
        entries = ()
        if dictionary is not None and insert:
            entries = dictionary.preview(
                component for triple in insert for component in triple
            )
        payload = self._record(kind, graph, insert, delete, entries)
        if self.faults is not None:
            self.faults.crash_point("before_wal")
        seq = self.wal.append(payload)
        if entries:
            dictionary.commit(entries)
        if self.faults is not None:
            self.faults.crash_point("after_wal")
        return seq

    @staticmethod
    def _record(kind, graph, insert, delete, dict_entries=()):
        record = {"v": _FORMAT, "kind": kind, "graph": _encode_graph(graph)}
        if insert:
            record["insert"] = [encode_triple(*t) for t in insert]
        if delete:
            record["delete"] = [encode_triple(*t) for t in delete]
        if dict_entries:
            record["dict"] = [
                [tid, encode_term(term)] for tid, term in dict_entries
            ]
        return json.dumps(record, sort_keys=True).encode("utf-8")

    # -- replication stream ------------------------------------------------------

    @property
    def last_seq(self):
        """Highest sequence number durably logged (0 = empty log)."""
        return self.wal.last_seq

    def records_since(self, seq, limit=None):
        """Intact ``(seq, payload)`` records with sequence > ``seq``.

        This is the primary side of WAL shipping: a follower asks for
        everything past its applied position.  The scan re-reads the
        log file, which is safe concurrently with appends — appended
        frames only ever extend the intact prefix.
        """
        out = []
        for record_seq, payload, _ in self.wal.scan():
            if record_seq <= seq:
                continue
            out.append((record_seq, payload))
            if limit is not None and len(out) >= limit:
                break
        return out

    def append_replicated(self, seq, payload):
        """Durably append one streamed record on a follower.

        The follower's log must stay a byte-level twin of the
        primary's record sequence, so a gap or replayed duplicate is a
        hard error — the replication client reacts by resynchronizing
        from scratch instead of diverging silently.
        """
        if seq != self.wal.next_seq:
            raise StorageError(
                "replication stream gap: got seq %d, local log expects %d"
                % (seq, self.wal.next_seq)
            )
        return self.wal.append(payload)

    def apply_record(self, dataset, payload, seq=None):
        """Apply one journal record (local or streamed) to ``dataset``.

        The single replay path shared by crash recovery and
        replication: deltas decode through the N-Triples codec, deleted
        or cleared array values drop their buffer-pool entries, and the
        mutation happens triple-by-triple exactly as the original
        update logged it.  ``seq`` stamps the MVCC version published at
        the record boundary (so replica reads see exact-seq snapshots).
        """
        writing = getattr(dataset, "writing", None)
        if writing is None:
            self._apply(dataset, payload)
            return
        with writing(seq if seq is not None else self.last_seq):
            self._apply(dataset, payload)

    def reset(self):
        """Empty the journal (follower full resync)."""
        self.wal.reset()

    # -- recovery ----------------------------------------------------------------

    def replay(self, dataset):
        """Rebuild ``dataset`` from the log; returns records applied.

        The log is truncated after the last intact record (see
        :meth:`WriteAheadLog.recover`), so a torn append disappears and
        subsequent updates extend a clean log.
        """
        count = 0
        for seq, payload in self.wal.recover():
            self._apply(dataset, payload)
            count += 1
        self.records_replayed += count
        # one version for the whole recovered state (per-record
        # publication during replay would only churn retired overlays)
        publish = getattr(dataset, "publish", None)
        if publish is not None:
            publish(self.last_seq)
        return count

    def _apply(self, dataset, payload):
        try:
            record = json.loads(payload.decode("utf-8"))
            kind = record["kind"]
            graph_name = record.get("graph")
        except (ValueError, KeyError) as error:
            raise CorruptionError(
                "undecodable journal record: %s" % (error,)
            )
        inserts = [
            decode_triple(line, self.array_store)
            for line in record.get("insert", ())
        ]
        deletes = [
            decode_triple(line, self.array_store)
            for line in record.get("delete", ())
        ]
        entries = record.get("dict", ())
        if entries:
            dictionary = getattr(dataset, "term_dictionary", None)
            if dictionary is not None:
                # replay the primary's exact assignments *before* the
                # triples land, so graph.add interns nothing on its own
                # and the ID space stays byte-identical; a disagreeing
                # bind raises CorruptionError instead of diverging
                for tid, token in entries:
                    dictionary.bind(
                        decode_term(token, self.array_store), int(tid)
                    )
        if kind == "clear":
            self._apply_clear(dataset, graph_name)
        elif kind in ("insert", "delete", "modify"):
            graph = dataset.graph(_decode_graph(graph_name))
            for triple in deletes:
                if graph.remove(*triple):
                    _invalidate_pooled(triple[2])
            for triple in inserts:
                graph.add(*triple)
        else:
            raise CorruptionError(
                "unknown journal record kind %r" % (kind,)
            )
        self.triples_replayed += len(inserts) + len(deletes)

    @staticmethod
    def _apply_clear(dataset, graph_name):
        if graph_name == ALL_GRAPHS:
            graphs = [dataset.default_graph]
            graphs.extend(dataset.named_graphs().values())
        else:
            graph = dataset.graph(_decode_graph(graph_name), create=False)
            graphs = [] if graph is None else [graph]
        for graph in graphs:
            for triple in list(graph.triples()):
                _invalidate_pooled(triple.value)
            graph.clear()

    # -- snapshot / compaction ----------------------------------------------------

    def snapshot(self, dataset):
        """Compact the log to the dataset's current state.

        The snapshot *is* a log: one CLEAR ALL record followed by one
        insert record per non-empty graph, atomically renamed over
        ``wal.log``.  Recovery stays a single code path, and a crash
        during compaction leaves the previous log untouched.

        Snapshotting is also when the term dictionary compacts: a
        scratch dictionary interns only the *live* terms (in snapshot
        record order, so replaying the new log reproduces it exactly),
        each insert record carries its fresh assignments, and once the
        rewrite is durable the dataset remaps its indexes onto the
        compacted ID space — dropping IDs whose terms were deleted.
        """
        scratch = TermDictionary()
        payloads = [self._record("clear", ALL_GRAPHS, (), ())]
        graphs = [(None, dataset.default_graph)]
        graphs.extend(
            (name, graph) for name, graph in
            sorted(dataset.named_graphs().items(),
                   key=lambda item: item[0].value)
        )
        for name, graph in graphs:
            triples = list(graph.triples())
            if not triples:
                continue
            entries = scratch.preview(
                component for triple in triples for component in triple
            )
            scratch.commit(entries)
            payloads.append(
                self._record("insert", name, triples, (), entries)
            )
        last_seq = self.wal.rewrite(payloads)
        compact = getattr(dataset, "compact_dictionary", None)
        if compact is not None:
            compact(scratch)
        # the WAL seq just regressed (the rewritten log restarts at 1);
        # publishing here lets the snapshot manager invalidate every
        # live snapshot whose version belongs to the old history
        publish = getattr(dataset, "publish", None)
        if publish is not None:
            publish(last_seq)
        self.snapshots_taken += 1
        return last_seq

    def close(self):
        self.wal.close()

    def stats(self):
        return dict(
            self.wal.stats(),
            records_replayed=self.records_replayed,
            triples_replayed=self.triples_replayed,
            snapshots_taken=self.snapshots_taken,
        )


def _invalidate_pooled(value):
    """Drop buffer-pool entries of an array value leaving the dataset.

    A streamed delete (or clear) severs the replica's reference to the
    array; pooled chunks under a recycled id must never be served, same
    as on the primary's direct update path.
    """
    if isinstance(value, ArrayProxy):
        invalidate = getattr(value.store, "invalidate_cached", None)
        if invalidate is not None:
            invalidate(value.array_id)


def _encode_graph(graph):
    if graph is None or graph == ALL_GRAPHS:
        return graph
    if isinstance(graph, URI):
        return graph.value
    if isinstance(graph, str):
        return graph
    raise StorageError("cannot journal graph name %r" % (graph,))


def _decode_graph(graph_name):
    if graph_name is None:
        return None
    return URI(graph_name)
